//! Randomized tests of the WaZI index invariants across crates: structural
//! consistency, dominance monotonicity of the leaf list, safety of the
//! look-ahead pointers, and correctness under mixed updates. Each property
//! is exercised over a deterministic stream of seeds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wazi_core::{DensityMode, SpatialIndex, ZIndexBuilder, ZIndexConfig};
use wazi_geom::{Point, Rect};
use wazi_storage::ExecStats;
use wazi_workload::{generate_dataset_with_seed, generate_queries_with_seed, Region};

fn build_wazi(
    points: Vec<Point>,
    queries: &[Rect],
    leaf: usize,
    kappa: usize,
) -> wazi_core::ZIndex {
    ZIndexBuilder::wazi()
        .with_config(
            ZIndexConfig::wazi()
                .with_leaf_capacity(leaf)
                .with_kappa(kappa),
        )
        .build(points, queries)
}

/// Construction invariants hold for any seed, leaf capacity and region.
#[test]
fn construction_invariants() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for case in 0..12 {
        let seed = rng.gen_range(0u64..1_000);
        let leaf = rng.gen_range(16usize..128);
        let region = Region::ALL[case % Region::ALL.len()];
        let points = generate_dataset_with_seed(region, 3_000, seed);
        let queries = generate_queries_with_seed(region, 150, 0.0005, seed ^ 1);
        let index = build_wazi(points.clone(), &queries, leaf, 8);
        assert_eq!(index.len(), points.len());
        index
            .verify_structure()
            .unwrap_or_else(|e| panic!("seed {seed} leaf {leaf}: structure: {e}"));
        index
            .verify_lookahead_invariant()
            .unwrap_or_else(|e| panic!("seed {seed} leaf {leaf}: lookahead: {e}"));
    }
}

/// The workload-aware index never returns wrong answers, no matter how the
/// evaluation workload relates to the training workload.
#[test]
fn queries_outside_the_training_distribution_are_exact() {
    for seed in [0u64, 57, 133, 401, 499] {
        let points = generate_dataset_with_seed(Region::Iberia, 2_000, seed);
        let train = generate_queries_with_seed(Region::Iberia, 100, 0.0005, seed);
        let index = build_wazi(points.clone(), &train, 32, 8);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let mut stats = ExecStats::default();
        for _ in 0..20 {
            let a = Point::new(rng.gen(), rng.gen());
            let b = Point::new(rng.gen(), rng.gen());
            let query = Rect::from_corners(a, b);
            let mut got = index.range_query(&query, &mut stats);
            got.sort_by(|p, q| p.lex_cmp(q));
            let mut expected: Vec<Point> = points
                .iter()
                .copied()
                .filter(|p| query.contains(p))
                .collect();
            expected.sort_by(|p, q| p.lex_cmp(q));
            assert_eq!(got, expected, "seed {seed}");
        }
    }
}

/// Mixed insert/delete sequences preserve exact query answers and the index
/// invariants, with and without look-ahead maintenance.
#[test]
fn mixed_updates_preserve_correctness() {
    for (seed, maintain) in [(3u64, false), (59, true), (111, false), (187, true)] {
        let points = generate_dataset_with_seed(Region::NewYork, 1_500, seed);
        let train = generate_queries_with_seed(Region::NewYork, 80, 0.001, seed);
        let mut index = build_wazi(points.clone(), &train, 32, 4);
        let mut shadow = points;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);

        for step in 0..300 {
            if rng.gen_bool(0.7) || shadow.is_empty() {
                let p = Point::new(rng.gen(), rng.gen());
                index.insert(p).expect("insert");
                shadow.push(p);
            } else {
                let victim = shadow.swap_remove(rng.gen_range(0..shadow.len()));
                let removed = index.delete(&victim).expect("delete");
                assert!(removed, "seed {seed}: existing point must be deletable");
            }
            if maintain && step % 100 == 99 {
                index.maintain();
            }
        }
        assert_eq!(index.len(), shadow.len());
        index
            .verify_structure()
            .unwrap_or_else(|e| panic!("seed {seed}: structure: {e}"));
        index
            .verify_lookahead_invariant()
            .unwrap_or_else(|e| panic!("seed {seed}: lookahead: {e}"));

        let mut stats = ExecStats::default();
        for query in train.iter().take(10) {
            let mut got = index.range_query(query, &mut stats);
            got.sort_by(|p, q| p.lex_cmp(q));
            let mut expected: Vec<Point> = shadow
                .iter()
                .copied()
                .filter(|p| query.contains(p))
                .collect();
            expected.sort_by(|p, q| p.lex_cmp(q));
            assert_eq!(got, expected, "seed {seed}");
        }
    }
}

/// The exact-counting and RFDE-estimating builders both produce valid
/// indexes whose retrieval cost on the training workload is within a small
/// factor of each other.
#[test]
fn density_modes_produce_comparable_layouts() {
    for seed in [0u64, 23, 71, 97] {
        let points = generate_dataset_with_seed(Region::Japan, 4_000, seed);
        let train = generate_queries_with_seed(Region::Japan, 150, 0.0005, seed);
        let rfde = build_wazi(points.clone(), &train, 64, 8);
        let exact = ZIndexBuilder::wazi()
            .with_config(
                ZIndexConfig::wazi()
                    .with_leaf_capacity(64)
                    .with_kappa(8)
                    .with_density(DensityMode::Exact),
            )
            .build(points, &train);
        let rfde_cost = rfde.measured_workload_cost(&train) as f64;
        let exact_cost = exact.measured_workload_cost(&train) as f64;
        assert!(
            rfde_cost <= exact_cost * 3.0 + 1_000.0,
            "seed {seed}: rfde {rfde_cost} vs exact {exact_cost}"
        );
        assert!(
            exact_cost <= rfde_cost * 3.0 + 1_000.0,
            "seed {seed}: exact {exact_cost} vs rfde {rfde_cost}"
        );
    }
}

#[test]
fn skipping_never_changes_results_only_work() {
    let points = generate_dataset_with_seed(Region::CaliNev, 8_000, 3);
    let train = generate_queries_with_seed(Region::CaliNev, 400, 0.0003, 4);
    let eval = generate_queries_with_seed(Region::CaliNev, 400, 0.0003, 5);
    let with_skip = build_wazi(points.clone(), &train, 64, 16);
    let without_skip = ZIndexBuilder::new(
        ZIndexConfig::wazi_without_skipping()
            .with_leaf_capacity(64)
            .with_kappa(16),
        wazi_core::BuildStrategy::Adaptive,
    )
    .build(points, &train);

    let mut skip_stats = ExecStats::default();
    let mut plain_stats = ExecStats::default();
    for q in &eval {
        let a = with_skip.range_query(q, &mut skip_stats);
        let b = without_skip.range_query(q, &mut plain_stats);
        assert_eq!(a.len(), b.len());
    }
    assert_eq!(skip_stats.results, plain_stats.results);
    assert!(skip_stats.leaves_skipped > 0);
}
