//! Cross-crate integration test: every index of the evaluation suite must
//! return exactly the same answers for the same workloads, since they all
//! index the same data. This is the end-to-end guarantee the whole benchmark
//! harness relies on — latency comparisons are only meaningful if the
//! indexes agree on correctness.

use proptest::prelude::*;
use wazi_bench::{build_index, IndexKind};
use wazi_geom::{Point, Rect};
use wazi_storage::ExecStats;
use wazi_workload::{
    generate_dataset, generate_queries, sample_point_queries, Region, SELECTIVITIES,
};

fn sorted(mut points: Vec<Point>) -> Vec<Point> {
    points.sort_by(|a, b| a.lex_cmp(b));
    points
}

#[test]
fn all_indexes_agree_with_brute_force_on_every_region() {
    for region in Region::ALL {
        let points = generate_dataset(region, 6_000);
        let train = generate_queries(region, 200, SELECTIVITIES[1]);
        let eval = generate_queries(region, 60, SELECTIVITIES[2]);
        for kind in IndexKind::OVERVIEW
            .into_iter()
            .chain([IndexKind::WaziNoSkip, IndexKind::BaseSkip])
        {
            let built = build_index(kind, &points, &train, 128);
            let mut stats = ExecStats::default();
            for query in &eval {
                let got = sorted(built.index.range_query(query, &mut stats));
                let expected = sorted(
                    points
                        .iter()
                        .copied()
                        .filter(|p| query.contains(p))
                        .collect(),
                );
                assert_eq!(got, expected, "{kind} disagrees on {region}");
            }
        }
    }
}

#[test]
fn all_indexes_find_their_own_points_and_reject_missing_ones() {
    let region = Region::Japan;
    let points = generate_dataset(region, 4_000);
    let train = generate_queries(region, 100, SELECTIVITIES[1]);
    let probes = sample_point_queries(&points, 300, 5);
    for kind in IndexKind::OVERVIEW {
        let built = build_index(kind, &points, &train, 128);
        let mut stats = ExecStats::default();
        for probe in &probes {
            assert!(
                built.index.point_query(probe, &mut stats),
                "{kind} lost an indexed point"
            );
        }
        assert!(
            !built.index.point_query(&Point::new(1.5, -0.5), &mut stats),
            "{kind} claims to hold an out-of-space point"
        );
    }
}

#[test]
fn knn_agrees_across_indexes() {
    let region = Region::CaliNev;
    let points = generate_dataset(region, 3_000);
    let train = generate_queries(region, 100, SELECTIVITIES[1]);
    let mut expected = points.clone();
    let q = Point::new(0.31, 0.62);
    expected.sort_by(|a, b| a.distance_squared(&q).total_cmp(&b.distance_squared(&q)));
    expected.truncate(8);
    for kind in [IndexKind::Wazi, IndexKind::Base, IndexKind::Str, IndexKind::Flood] {
        let built = build_index(kind, &points, &train, 128);
        let mut stats = ExecStats::default();
        let got = built.index.knn(&q, 8, &mut stats);
        assert_eq!(got, expected, "{kind} kNN disagrees");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random rectangles on a fixed dataset: WaZI, Base and STR agree with
    /// brute force (and hence with each other).
    #[test]
    fn random_rectangles_are_answered_identically(
        x0 in 0.0f64..1.0, y0 in 0.0f64..1.0, w in 0.0f64..0.5, h in 0.0f64..0.5
    ) {
        let region = Region::NewYork;
        let points = generate_dataset(region, 3_000);
        let train = generate_queries(region, 100, SELECTIVITIES[1]);
        let query = Rect::from_coords(x0, y0, (x0 + w).min(1.0), (y0 + h).min(1.0));
        let expected = sorted(points.iter().copied().filter(|p| query.contains(p)).collect());
        for kind in [IndexKind::Wazi, IndexKind::Base, IndexKind::Str] {
            let built = build_index(kind, &points, &train, 128);
            let mut stats = ExecStats::default();
            let got = sorted(built.index.range_query(&query, &mut stats));
            prop_assert_eq!(&got, &expected, "{} disagrees", kind);
        }
    }
}
