//! Cross-crate integration test: every index of the evaluation suite must
//! return exactly the same answers for the same workloads, since they all
//! index the same data. This is the end-to-end guarantee the whole benchmark
//! harness relies on — latency comparisons are only meaningful if the
//! indexes agree on correctness.
//!
//! With the layered query-execution engine, "the same answers" spans three
//! execution modes: the materializing `range_query`, the counting
//! `range_count` and the streaming `range_for_each` must agree for every
//! index on every query. With the typed query-plan engine on top, the same
//! guarantee extends to batch execution: `execute_batch` must be output-
//! and counter-equivalent to the per-query loop on every index, whatever
//! scheduling strategy the engine picks internally.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wazi_bench::{build_index, IndexKind};
use wazi_core::{BatchStrategy, QueryEngine};
use wazi_geom::{Point, Rect};
use wazi_storage::ExecStats;
use wazi_workload::{
    generate_dataset, generate_mixed_batch, generate_overlapping_batch, generate_queries,
    sample_point_queries, Region, SELECTIVITIES,
};

fn sorted(mut points: Vec<Point>) -> Vec<Point> {
    points.sort_by(|a, b| a.lex_cmp(b));
    points
}

/// Every index kind of the evaluation, including the ablation variants.
fn all_kinds() -> impl Iterator<Item = IndexKind> {
    IndexKind::OVERVIEW
        .into_iter()
        .chain([IndexKind::WaziNoSkip, IndexKind::BaseSkip])
}

#[test]
fn all_indexes_agree_with_brute_force_on_every_region() {
    for region in Region::ALL {
        let points = generate_dataset(region, 6_000);
        let train = generate_queries(region, 200, SELECTIVITIES[1]);
        let eval = generate_queries(region, 60, SELECTIVITIES[2]);
        for kind in all_kinds() {
            let built = build_index(kind, &points, &train, 128);
            let mut stats = ExecStats::default();
            for query in &eval {
                let got = sorted(built.index.range_query(query, &mut stats));
                let expected = sorted(
                    points
                        .iter()
                        .copied()
                        .filter(|p| query.contains(p))
                        .collect(),
                );
                assert_eq!(got, expected, "{kind} disagrees on {region}");
            }
        }
    }
}

/// The engine-consistency property of the layered query executor: for every
/// index and every query, `range_count` equals the materialized result size,
/// and `range_for_each` visits exactly the same multiset of points — while
/// charging identical work counters, since all three modes share one scan
/// kernel per index.
#[test]
fn range_count_and_for_each_agree_with_range_query_for_every_index() {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let region = Region::NewYork;
    let points = generate_dataset(region, 5_000);
    let train = generate_queries(region, 150, SELECTIVITIES[1]);
    // Training-shaped queries, unseen queries, random rectangles and
    // degenerate boxes all exercise the same three paths.
    let mut queries = generate_queries(region, 30, SELECTIVITIES[2]);
    for _ in 0..30 {
        let a = Point::new(rng.gen(), rng.gen());
        let b = Point::new(rng.gen(), rng.gen());
        queries.push(Rect::from_corners(a, b));
    }
    queries.push(Rect::UNIT);
    queries.push(Rect::from_coords(0.5, 0.5, 0.5, 0.5));

    for kind in all_kinds() {
        let built = build_index(kind, &points, &train, 128);
        for query in &queries {
            let mut query_stats = ExecStats::default();
            let materialized = built.index.range_query(query, &mut query_stats);

            let mut count_stats = ExecStats::default();
            let count = built.index.range_count(query, &mut count_stats);

            let mut stream_stats = ExecStats::default();
            let mut streamed = Vec::new();
            built
                .index
                .range_for_each(query, &mut stream_stats, &mut |p| streamed.push(*p));

            assert_eq!(
                count,
                materialized.len() as u64,
                "{kind}: range_count disagrees with range_query on {query}"
            );
            assert_eq!(
                sorted(streamed),
                sorted(materialized),
                "{kind}: range_for_each visits a different multiset on {query}"
            );
            // All three modes share one scan kernel per index, so the work
            // counters of the paper's cost model must be identical.
            for (label, other) in [("count", &count_stats), ("for_each", &stream_stats)] {
                assert_eq!(
                    query_stats.points_scanned, other.points_scanned,
                    "{kind}/{label}: points_scanned differs on {query}"
                );
                assert_eq!(
                    query_stats.bbs_checked, other.bbs_checked,
                    "{kind}/{label}: bbs_checked differs on {query}"
                );
                assert_eq!(
                    query_stats.pages_scanned, other.pages_scanned,
                    "{kind}/{label}: pages_scanned differs on {query}"
                );
                assert_eq!(
                    query_stats.results, other.results,
                    "{kind}/{label}: results differs on {query}"
                );
            }
        }
    }
}

#[test]
fn all_indexes_find_their_own_points_and_reject_missing_ones() {
    let region = Region::Japan;
    let points = generate_dataset(region, 4_000);
    let train = generate_queries(region, 100, SELECTIVITIES[1]);
    let probes = sample_point_queries(&points, 300, 5);
    for kind in IndexKind::OVERVIEW {
        let built = build_index(kind, &points, &train, 128);
        let mut stats = ExecStats::default();
        for probe in &probes {
            assert!(
                built.index.point_query(probe, &mut stats),
                "{kind} lost an indexed point"
            );
        }
        assert!(
            !built.index.point_query(&Point::new(1.5, -0.5), &mut stats),
            "{kind} claims to hold an out-of-space point"
        );
    }
}

#[test]
fn knn_agrees_across_indexes() {
    let region = Region::CaliNev;
    let points = generate_dataset(region, 3_000);
    let train = generate_queries(region, 100, SELECTIVITIES[1]);
    let mut expected = points.clone();
    let q = Point::new(0.31, 0.62);
    expected.sort_by(|a, b| a.distance_squared(&q).total_cmp(&b.distance_squared(&q)));
    expected.truncate(8);
    for kind in [
        IndexKind::Wazi,
        IndexKind::Base,
        IndexKind::Str,
        IndexKind::Flood,
    ] {
        let built = build_index(kind, &points, &train, 128);
        let mut stats = ExecStats::default();
        let got = built.index.knn(&q, 8, &mut stats);
        assert_eq!(got, expected, "{kind} kNN disagrees");
    }
}

/// The kNN fallback sweep is clamped to each index's data bounds, so a query
/// point astronomically far from the data still terminates and stays exact.
#[test]
fn knn_from_far_outside_the_data_space_agrees_across_indexes() {
    let region = Region::Iberia;
    let points = generate_dataset(region, 2_000);
    let train = generate_queries(region, 80, SELECTIVITIES[1]);
    let q = Point::new(3.0e8, -7.0e8);
    let mut expected = points.clone();
    expected.sort_by(|a, b| a.distance_squared(&q).total_cmp(&b.distance_squared(&q)));
    expected.truncate(5);
    for kind in [
        IndexKind::Wazi,
        IndexKind::Base,
        IndexKind::Str,
        IndexKind::Cur,
        IndexKind::Flood,
        IndexKind::Quasii,
        IndexKind::Zpgm,
    ] {
        let built = build_index(kind, &points, &train, 128);
        let mut stats = ExecStats::default();
        let got = built.index.knn(&q, 5, &mut stats);
        assert_eq!(got, expected, "{kind} far-query kNN disagrees");
    }
}

/// The batch-equivalence guarantee of the query engine: for all seven
/// indexes, `execute_batch` over a mixed 200-query batch (range queries in
/// all three modes, point probes, kNN) returns byte-identical outputs and
/// identical merged `ExecStats` counters vs. the per-query `execute` loop.
#[test]
fn execute_batch_is_equivalent_to_the_per_query_loop_for_every_index() {
    let region = Region::NewYork;
    let points = generate_dataset(region, 5_000);
    let train = generate_queries(region, 150, SELECTIVITIES[1]);
    let batch = generate_mixed_batch(region, 200, SELECTIVITIES[2], 0xBEEF);
    assert_eq!(batch.len(), 200);

    for kind in all_kinds() {
        let built = build_index(kind, &points, &train, 128);
        let engine =
            QueryEngine::new(built.index.as_ref()).with_strategy(BatchStrategy::Sequential);
        let mut loop_outputs = Vec::with_capacity(batch.len());
        let mut loop_stats = ExecStats::default();
        for query in &batch {
            let report = engine.execute(query).expect("generated plans are valid");
            loop_stats.merge(&report.stats);
            loop_outputs.push(report.output);
        }

        let batch_report = engine.execute_batch(&batch).expect("batch executes");
        assert_eq!(batch_report.len(), batch.len(), "{kind}");
        assert_eq!(
            batch_report.fused_queries, 0,
            "{kind}: the sequential strategy fuses nothing"
        );
        for (i, (got, expected)) in batch_report.reports.iter().zip(&loop_outputs).enumerate() {
            assert_eq!(&got.output, expected, "{kind}: output {i} differs");
        }
        // Identical merged work counters (timings are wall-clock noise).
        let merged = batch_report.merged_stats();
        for (label, a, b) in [
            (
                "points_scanned",
                merged.points_scanned,
                loop_stats.points_scanned,
            ),
            (
                "pages_scanned",
                merged.pages_scanned,
                loop_stats.pages_scanned,
            ),
            ("bbs_checked", merged.bbs_checked, loop_stats.bbs_checked),
            (
                "nodes_visited",
                merged.nodes_visited,
                loop_stats.nodes_visited,
            ),
            (
                "leaves_skipped",
                merged.leaves_skipped,
                loop_stats.leaves_skipped,
            ),
            ("results", merged.results, loop_stats.results),
        ] {
            assert_eq!(a, b, "{kind}: merged {label} differs from the loop's");
        }

        // The fused strategy must change scheduling only, never answers.
        let fused = QueryEngine::new(built.index.as_ref())
            .with_strategy(BatchStrategy::Fused)
            .execute_batch(&batch)
            .expect("fused batch executes");
        for (i, (got, expected)) in fused.reports.iter().zip(&loop_outputs).enumerate() {
            assert_eq!(&got.output, expected, "{kind}: fused output {i} differs");
        }
        assert_eq!(
            fused.merged_stats().results,
            loop_stats.results,
            "{kind}: fused results counter differs"
        );

        // The engine's default is the cost-based Auto scheduler: whatever
        // it picks must also be a pure scheduling choice.
        let auto = QueryEngine::new(built.index.as_ref())
            .execute_batch(&batch)
            .expect("auto batch executes");
        for (i, (got, expected)) in auto.reports.iter().zip(&loop_outputs).enumerate() {
            assert_eq!(&got.output, expected, "{kind}: auto output {i} differs");
        }
        assert_eq!(
            auto.merged_stats().results,
            loop_stats.results,
            "{kind}: auto results counter differs"
        );
    }
}

/// The fused-work invariant across the whole suite: fusion shares physical
/// work, it never adds any. On every index that advertises a batch kernel,
/// the fused strategy must check at most as many bounding boxes as the
/// sequential loop on the same overlapping batch (each query keeps its own
/// skip cursor, so its walk replicates the sequential one), while scanning
/// no more pages and exactly the same points. Indexes without a kernel
/// trivially tie. Sharded runs are held to the *tighter* bar: owner-based
/// sharding executes every query's whole walk in the shard owning its
/// entry address, so `FusedParallel` bounding-box checks must **equal** the
/// single sweep's — and the sequential loop's — for every shard count.
#[test]
fn fused_bb_checks_never_exceed_sequential_on_any_index() {
    let region = Region::NewYork;
    let points = generate_dataset(region, 5_000);
    let train = generate_queries(region, 150, SELECTIVITIES[1]);
    let batch: Vec<_> = generate_queries(region, 120, SELECTIVITIES[3])
        .into_iter()
        .map(wazi_core::Query::range_count)
        .collect();
    let mut kernels_seen = 0;
    for kind in all_kinds() {
        let built = build_index(kind, &points, &train, 128);
        let sequential = QueryEngine::new(built.index.as_ref())
            .with_strategy(BatchStrategy::Sequential)
            .execute_batch(&batch)
            .expect("sequential batch executes");
        let fused = QueryEngine::new(built.index.as_ref())
            .with_strategy(BatchStrategy::Fused)
            .execute_batch(&batch)
            .expect("fused batch executes");
        kernels_seen += usize::from(built.index.range_batch_kernel().is_some());
        assert!(
            fused.bbs_checked() <= sequential.bbs_checked(),
            "{kind}: fused checks {} bounding boxes, sequential {}",
            fused.bbs_checked(),
            sequential.bbs_checked()
        );
        assert!(
            fused.merged_stats().pages_scanned <= sequential.merged_stats().pages_scanned,
            "{kind}: fused scans more pages than sequential"
        );
        assert_eq!(
            fused.merged_stats().points_scanned,
            sequential.merged_stats().points_scanned,
            "{kind}: fusion changed the points compared"
        );
        assert_eq!(
            fused.merged_stats().results,
            sequential.merged_stats().results,
            "{kind}: fusion changed the answers"
        );
        // Sharded runs: BB checks equal the single-sweep count exactly —
        // the cross-shard skip handoff costs nothing.
        for shards in [2usize, 4, 8] {
            let parallel = QueryEngine::new(built.index.as_ref())
                .with_strategy(BatchStrategy::FusedParallel { shards })
                .execute_batch(&batch)
                .expect("parallel batch executes");
            assert_eq!(
                parallel.bbs_checked(),
                sequential.bbs_checked(),
                "{kind}/{shards} shards: sharding changed the bounding-box count"
            );
            assert_eq!(
                parallel.merged_stats().leaves_skipped,
                sequential.merged_stats().leaves_skipped,
                "{kind}/{shards} shards: sharding changed the skip count"
            );
        }
    }
    assert_eq!(
        kernels_seen, 9,
        "every index kind fuses range batches now — the Z-index variants, Flood, \
         Zpgm's BIGMIN sweep and the tree baselines STR/CUR/QUASII"
    );
}

/// The parallel-determinism property of `BatchStrategy::FusedParallel`:
/// for every index and every shard count — including more shards than
/// queries and empty batches — parallel execution is output- and
/// counter-equivalent to the sequential loop, whatever the thread
/// interleaving: identical answers in input order, identical point
/// comparisons and result counts, never more page visits.
#[test]
fn fused_parallel_is_equivalent_to_sequential_for_every_index_and_shard_count() {
    let region = Region::NewYork;
    let points = generate_dataset(region, 5_000);
    let train = generate_queries(region, 150, SELECTIVITIES[1]);
    let batches: Vec<(&str, Vec<wazi_core::Query>)> = vec![
        ("empty", Vec::new()),
        (
            "smaller-than-shard-count",
            generate_overlapping_batch(region, 3, SELECTIVITIES[2], 5),
        ),
        (
            "overlapping-200",
            generate_overlapping_batch(region, 200, SELECTIVITIES[3], 11),
        ),
        (
            "mixed-120",
            generate_mixed_batch(region, 120, SELECTIVITIES[2], 0xD1CE),
        ),
    ];
    for kind in all_kinds() {
        let built = build_index(kind, &points, &train, 128);
        for (label, batch) in &batches {
            let sequential = QueryEngine::new(built.index.as_ref())
                .with_strategy(BatchStrategy::Sequential)
                .execute_batch(batch)
                .expect("sequential batch executes");
            for shards in [1usize, 2, 4, 8] {
                let parallel = QueryEngine::new(built.index.as_ref())
                    .with_strategy(BatchStrategy::FusedParallel { shards })
                    .execute_batch(batch)
                    .expect("parallel batch executes");
                assert_eq!(parallel.len(), sequential.len(), "{kind}/{label}/{shards}");
                for (i, (p, s)) in parallel.reports.iter().zip(&sequential.reports).enumerate() {
                    assert_eq!(
                        p.output, s.output,
                        "{kind}/{label}/{shards} shards: output {i} differs"
                    );
                }
                let p = parallel.merged_stats();
                let s = sequential.merged_stats();
                assert_eq!(
                    p.points_scanned, s.points_scanned,
                    "{kind}/{label}/{shards} shards: points_scanned differs"
                );
                assert_eq!(
                    p.results, s.results,
                    "{kind}/{label}/{shards} shards: results differ"
                );
                assert!(
                    p.pages_scanned <= s.pages_scanned,
                    "{kind}/{label}/{shards} shards: parallel scans more pages"
                );
                // Determinism across repeated parallel runs: thread
                // scheduling must never leak into outputs or counters.
                let again = QueryEngine::new(built.index.as_ref())
                    .with_strategy(BatchStrategy::FusedParallel { shards })
                    .execute_batch(batch)
                    .expect("parallel batch executes twice");
                for (a, b) in parallel.reports.iter().zip(&again.reports) {
                    assert_eq!(
                        a.output, b.output,
                        "{kind}/{label}/{shards}: nondeterminism"
                    );
                    assert_eq!(a.stats, {
                        let mut stats = b.stats;
                        stats.projection_ns = a.stats.projection_ns;
                        stats.scan_ns = a.stats.scan_ns;
                        stats
                    });
                }
            }
        }
    }
}

/// The mixed-batch fusion property: for **all nine index kinds**, fused,
/// fused-parallel and cost-based auto execution of a heterogeneous batch — ranges in all three
/// modes, point probes and kNN plans, spiced with the edge cases the fused
/// kernels must not trip over (k = 0, duplicate probe points, probes and
/// kNN centres outside `data_bounds`, k larger than the index) — produces
/// outputs and result counts identical to the sequential loop, and the
/// per-plan-type fused counters account for exactly the plans each kernel
/// took.
#[test]
fn fused_mixed_batches_match_sequential_for_every_index() {
    let region = Region::NewYork;
    let points = generate_dataset(region, 5_000);
    let train = generate_queries(region, 150, SELECTIVITIES[1]);
    let mut batch = generate_mixed_batch(region, 160, SELECTIVITIES[2], 0xF0CA);
    // Edge plans: trivial kNN, oversized k, duplicate probes (one an
    // indexed point, one a guaranteed miss), geometry outside the data
    // space. All finite, hence valid.
    let dup_hit = points[42];
    let dup_miss = Point::new(0.123_456_789, 0.987_654_321);
    batch.extend([
        wazi_core::Query::knn(Point::new(0.4, 0.4), 0),
        wazi_core::Query::knn(Point::new(0.6, 0.6), 10_000),
        wazi_core::Query::knn(Point::new(7.0, -3.0), 3),
        wazi_core::Query::point(dup_hit),
        wazi_core::Query::point(dup_hit),
        wazi_core::Query::point(dup_miss),
        wazi_core::Query::point(dup_miss),
        wazi_core::Query::point(Point::new(4.0, 4.0)),
        wazi_core::Query::range_count(Rect::from_coords(2.0, 2.0, 3.0, 3.0)),
    ]);
    let ranges = batch.iter().filter(|q| q.is_range()).count();
    let probes = batch
        .iter()
        .filter(|q| matches!(q, wazi_core::Query::Point(_)))
        .count();
    let knns = batch.len() - ranges - probes;

    for kind in all_kinds() {
        let built = build_index(kind, &points, &train, 128);
        let sequential = QueryEngine::new(built.index.as_ref())
            .with_strategy(BatchStrategy::Sequential)
            .execute_batch(&batch)
            .expect("sequential batch executes");
        assert_eq!(sequential.total_fused(), 0, "{kind}");
        assert_eq!(
            sequential.strategy_chosen.iter().count(),
            0,
            "{kind}: fixed strategies record no decisions"
        );
        let has_range_kernel = built.index.range_batch_kernel().is_some();
        let has_point_kernel = built.index.point_batch_kernel().is_some();
        for (label, strategy) in [
            ("fused", BatchStrategy::Fused),
            (
                "fused-parallel/2",
                BatchStrategy::FusedParallel { shards: 2 },
            ),
            (
                "fused-parallel/4",
                BatchStrategy::FusedParallel { shards: 4 },
            ),
            ("auto", BatchStrategy::Auto),
        ] {
            let report = QueryEngine::new(built.index.as_ref())
                .with_strategy(strategy)
                .execute_batch(&batch)
                .expect("fused batch executes");
            assert_eq!(report.len(), sequential.len(), "{kind}/{label}");
            for (i, (got, want)) in report.reports.iter().zip(&sequential.reports).enumerate() {
                assert_eq!(
                    got.output, want.output,
                    "{kind}/{label}: output {i} differs from sequential"
                );
            }
            assert_eq!(
                report.total_results(),
                sequential.total_results(),
                "{kind}/{label}: result counts diverge"
            );
            // Counter equality across the whole mix: every fused kernel —
            // range sweep, leaf-grouped probes, kNN rings — must replicate
            // each plan's solo walk exactly; only page visits may be
            // shared, never added.
            let fused_totals = report.merged_stats();
            let sequential_totals = sequential.merged_stats();
            for (counter, a, b) in [
                ("results", fused_totals.results, sequential_totals.results),
                (
                    "points_scanned",
                    fused_totals.points_scanned,
                    sequential_totals.points_scanned,
                ),
                (
                    "bbs_checked",
                    fused_totals.bbs_checked,
                    sequential_totals.bbs_checked,
                ),
                (
                    "nodes_visited",
                    fused_totals.nodes_visited,
                    sequential_totals.nodes_visited,
                ),
                (
                    "leaves_skipped",
                    fused_totals.leaves_skipped,
                    sequential_totals.leaves_skipped,
                ),
            ] {
                assert_eq!(a, b, "{kind}/{label}: merged {counter} diverges");
            }
            assert!(
                fused_totals.pages_scanned <= sequential_totals.pages_scanned,
                "{kind}/{label}: fusion added page visits"
            );
            if strategy == BatchStrategy::Auto {
                // Auto decides per partition, so fused counts depend on
                // what it chose — but the choice itself must be on record
                // wherever a kernel gave it one.
                if has_range_kernel {
                    assert!(
                        report.strategy_chosen.range.is_some(),
                        "{kind}/{label}: no range decision recorded"
                    );
                }
            } else {
                // The per-plan-type fused counters account for exactly the
                // partitions the index's kernels can take under a fixed
                // fused strategy.
                assert_eq!(
                    report.fused_queries,
                    if has_range_kernel { ranges } else { 0 },
                    "{kind}/{label}"
                );
                assert_eq!(
                    report.fused_points,
                    if has_point_kernel { probes } else { 0 },
                    "{kind}/{label}"
                );
                assert_eq!(
                    report.fused_knn,
                    if has_range_kernel { knns } else { 0 },
                    "{kind}/{label}"
                );
            }
        }
    }
}

/// The fused kernels must not trip over degenerate index shapes: an empty
/// index, a single-leaf tree (fewer points than one page) and an index of
/// all-duplicate points (one leaf MBR collapsed to a point; hot-key probes
/// all landing in one group). For every index kind and every strategy —
/// the cost-based Auto default included — outputs and work counters must
/// match the sequential loop on a batch spiced with plans that hit, miss
/// and straddle the degenerate geometry.
#[test]
fn fused_kernels_handle_degenerate_indexes() {
    let duplicate = Point::new(0.25, 0.75);
    let datasets: Vec<(&str, Vec<Point>)> = vec![
        ("empty", Vec::new()),
        (
            "single-leaf",
            vec![Point::new(0.4, 0.6), Point::new(0.42, 0.58)],
        ),
        ("all-duplicates", vec![duplicate; 300]),
    ];
    let train = generate_queries(Region::NewYork, 40, SELECTIVITIES[1]);
    let batch = vec![
        wazi_core::Query::range(Rect::from_coords(0.0, 0.0, 1.0, 1.0)),
        wazi_core::Query::range(Rect::from_coords(0.2, 0.5, 0.45, 0.8)),
        wazi_core::Query::range_count(Rect::from_coords(0.2, 0.5, 0.45, 0.8)),
        wazi_core::Query::range_count(Rect::from_coords(0.9, 0.9, 0.95, 0.95)),
        wazi_core::Query::range_count(Rect::from_coords(2.0, 2.0, 3.0, 3.0)),
        wazi_core::Query::point(duplicate),
        wazi_core::Query::point(duplicate),
        wazi_core::Query::point(Point::new(0.4, 0.6)),
        wazi_core::Query::point(Point::new(5.0, -5.0)),
        wazi_core::Query::knn(duplicate, 3),
        wazi_core::Query::knn(Point::new(0.5, 0.5), 2),
        wazi_core::Query::knn(Point::new(0.5, 0.5), 0),
    ];
    for (label, points) in &datasets {
        for kind in all_kinds() {
            let built = build_index(kind, points, &train, 32);
            let sequential = QueryEngine::new(built.index.as_ref())
                .with_strategy(BatchStrategy::Sequential)
                .execute_batch(&batch)
                .expect("sequential batch executes");
            for (strategy_label, strategy) in [
                ("fused", BatchStrategy::Fused),
                (
                    "fused-parallel/2",
                    BatchStrategy::FusedParallel { shards: 2 },
                ),
                (
                    "fused-parallel/4",
                    BatchStrategy::FusedParallel { shards: 4 },
                ),
                ("auto", BatchStrategy::Auto),
            ] {
                let report = QueryEngine::new(built.index.as_ref())
                    .with_strategy(strategy)
                    .execute_batch(&batch)
                    .expect("fused batch executes");
                for (i, (got, want)) in report.reports.iter().zip(&sequential.reports).enumerate() {
                    assert_eq!(
                        got.output, want.output,
                        "{kind}/{label}/{strategy_label}: output {i} differs"
                    );
                }
                let fused_totals = report.merged_stats();
                let sequential_totals = sequential.merged_stats();
                assert_eq!(
                    fused_totals.results, sequential_totals.results,
                    "{kind}/{label}/{strategy_label}: results diverge"
                );
                assert_eq!(
                    fused_totals.points_scanned, sequential_totals.points_scanned,
                    "{kind}/{label}/{strategy_label}: points_scanned diverges"
                );
                assert_eq!(
                    fused_totals.bbs_checked, sequential_totals.bbs_checked,
                    "{kind}/{label}/{strategy_label}: bbs_checked diverges"
                );
                assert!(
                    fused_totals.pages_scanned <= sequential_totals.pages_scanned,
                    "{kind}/{label}/{strategy_label}: fusion added page visits"
                );
            }
        }
    }
}

/// Random rectangles on a fixed dataset: WaZI, Base and STR agree with
/// brute force (and hence with each other).
#[test]
fn random_rectangles_are_answered_identically() {
    let mut rng = StdRng::seed_from_u64(16);
    let region = Region::NewYork;
    let points = generate_dataset(region, 3_000);
    let train = generate_queries(region, 100, SELECTIVITIES[1]);
    let indexes: Vec<_> = [IndexKind::Wazi, IndexKind::Base, IndexKind::Str]
        .into_iter()
        .map(|kind| build_index(kind, &points, &train, 128))
        .collect();
    for _ in 0..16 {
        let x0 = rng.gen::<f64>();
        let y0 = rng.gen::<f64>();
        let w = rng.gen_range(0.0f64..0.5);
        let h = rng.gen_range(0.0f64..0.5);
        let query = Rect::from_coords(x0, y0, (x0 + w).min(1.0), (y0 + h).min(1.0));
        let expected = sorted(
            points
                .iter()
                .copied()
                .filter(|p| query.contains(p))
                .collect(),
        );
        for built in &indexes {
            let mut stats = ExecStats::default();
            let got = sorted(built.index.range_query(&query, &mut stats));
            assert_eq!(got, expected, "{} disagrees", built.kind);
        }
    }
}
