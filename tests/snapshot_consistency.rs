//! Cross-crate integration test: epoch-pinned snapshots taken **mid
//! insert-stream** answer exactly like a frozen index built from the
//! points that were visible at snapshot time — for every index of the
//! evaluation overview and every batch strategy, including `Auto`.
//!
//! This is the pinned guarantee of the versioned engine extended across
//! the whole index suite: a snapshot never changes answers; writes only
//! change which snapshot you read. Each snapshot is compared against a
//! *bulk-built* frozen copy of its visible point set, so the test also
//! pins that incremental application (or the rebuild fallback, for
//! bulk-only indexes) converges to the same answers as building from
//! scratch:
//!
//! * range results as sorted-by-coordinate multisets (scan order may
//!   legitimately differ between an incrementally grown layout and a bulk
//!   build of the same points);
//! * counting and streaming range modes by exact count;
//! * point probes and kNN exactly (kNN output order is distance-sorted
//!   with deterministic tie-breaking, so it must match bit for bit).

use std::collections::VecDeque;

use wazi_bench::{build_index, build_versioned_index, IndexKind};
use wazi_core::{BatchStrategy, Query, QueryEngine, QueryOutput, Snapshot, SpatialIndex, WriteOp};
use wazi_geom::Point;
use wazi_workload::{
    generate_dataset, generate_dataset_with_seed, generate_mixed_batch, generate_queries, Region,
    SELECTIVITIES,
};

const REGION: Region = Region::NewYork;
const BASE_POINTS: usize = 2_500;
const STREAMED_POINTS: usize = 360;
const BURSTS: usize = 9;
const LEAF_CAPACITY: usize = 64;

/// The strategies every snapshot/frozen pair is compared under.
const STRATEGIES: [BatchStrategy; 4] = [
    BatchStrategy::Auto,
    BatchStrategy::Sequential,
    BatchStrategy::Fused,
    BatchStrategy::FusedParallel { shards: 4 },
];

fn sorted(mut points: Vec<Point>) -> Vec<Point> {
    points.sort_by(|a, b| a.lex_cmp(b));
    points
}

/// Compares two query outputs up to legitimate scan-order differences:
/// materialized range results as sorted multisets, everything else exactly.
fn assert_outputs_equivalent(label: &str, got: &QueryOutput, expected: &QueryOutput) {
    match (got, expected) {
        (QueryOutput::Points(a), QueryOutput::Points(b)) => {
            assert_eq!(
                sorted(a.clone()),
                sorted(b.clone()),
                "{label}: range multisets diverge"
            );
        }
        (a, b) => assert_eq!(a, b, "{label}: outputs diverge"),
    }
}

/// Streams `BURSTS` write bursts into a versioned `kind` index and pins a
/// snapshot (plus a copy of the exactly-visible point set) after every
/// burst — then keeps writing, so every pinned snapshot is genuinely
/// mid-stream: by the time it is queried, the live index has moved on.
fn stream_and_pin(kind: IndexKind) -> (Vec<(Snapshot, Vec<Point>)>, Vec<wazi_geom::Rect>) {
    let base = generate_dataset(REGION, BASE_POINTS);
    let train = generate_queries(REGION, 120, SELECTIVITIES[1]);
    let mut incoming: VecDeque<Point> =
        generate_dataset_with_seed(REGION, STREAMED_POINTS, REGION.seed() ^ 0x57_EA4D).into();
    let source = build_versioned_index(kind, &base, &train, LEAF_CAPACITY);

    let mut visible = base;
    let mut inserted_this_stream: Vec<Point> = Vec::new();
    let mut pinned = Vec::new();
    for burst in 0..BURSTS {
        let mut ops = Vec::new();
        for slot in 0..(STREAMED_POINTS / BURSTS) {
            // Every fourth op deletes an earlier streamed insert, so the
            // visible set both grows and shrinks while snapshots are held.
            if slot % 4 == 3 && !inserted_this_stream.is_empty() {
                let victim = inserted_this_stream.remove(burst % inserted_this_stream.len());
                ops.push(WriteOp::Delete(victim));
            } else if let Some(point) = incoming.pop_front() {
                inserted_this_stream.push(point);
                ops.push(WriteOp::Insert(point));
            }
        }
        ops.push(WriteOp::Maintain);
        // Mirror the ops onto the tracked visible set before applying.
        for op in &ops {
            match op {
                WriteOp::Insert(p) => visible.push(*p),
                WriteOp::Delete(p) => {
                    let at = visible
                        .iter()
                        .position(|q| q == p)
                        .expect("deletes target visible points");
                    visible.remove(at);
                }
                WriteOp::Maintain => {}
            }
        }
        let receipt = source
            .apply(&ops)
            .unwrap_or_else(|e| panic!("{kind}: burst {burst} failed: {e}"));
        assert_eq!(receipt.epoch, burst as u64 + 1, "{kind}");
        let snapshot = source.snapshot();
        assert_eq!(snapshot.epoch(), receipt.epoch, "{kind}");
        assert_eq!(snapshot.len(), visible.len(), "{kind}: visible-set drift");
        pinned.push((snapshot, visible.clone()));
    }
    (pinned, train)
}

/// The tentpole property, swept over every overview index: each mid-stream
/// snapshot answers a mixed range/point/kNN batch exactly like a frozen
/// index bulk-built from its visible points, under every strategy.
#[test]
fn mid_stream_snapshots_match_frozen_copies_for_every_overview_index() {
    for kind in IndexKind::OVERVIEW {
        let (pinned, train) = stream_and_pin(kind);
        assert_eq!(pinned.len(), BURSTS, "{kind}");
        // Compare a spread of snapshots (first, middle, last) — each one is
        // stale by the time it is queried except the latest.
        for (snapshot, visible) in [&pinned[0], &pinned[BURSTS / 2], &pinned[BURSTS - 1]] {
            let frozen = build_index(kind, visible, &train, LEAF_CAPACITY);
            let batch =
                generate_mixed_batch(REGION, 48, SELECTIVITIES[2], 0xB1_7E ^ snapshot.epoch());
            for strategy in STRATEGIES {
                let from_snapshot = QueryEngine::new(snapshot)
                    .with_strategy(strategy)
                    .execute_batch(&batch)
                    .unwrap_or_else(|e| panic!("{kind}: snapshot batch failed: {e}"));
                let from_frozen = QueryEngine::new(frozen.index.as_ref())
                    .with_strategy(strategy)
                    .execute_batch(&batch)
                    .unwrap_or_else(|e| panic!("{kind}: frozen batch failed: {e}"));
                for (i, (got, expected)) in from_snapshot
                    .reports
                    .iter()
                    .zip(&from_frozen.reports)
                    .enumerate()
                {
                    assert_outputs_equivalent(
                        &format!("{kind}/epoch {}/{strategy:?}/query {i}", snapshot.epoch()),
                        &got.output,
                        &expected.output,
                    );
                }
            }
        }
    }
}

/// The pinned guarantee stated directly: ask a snapshot, write more, ask
/// the *same* snapshot again — byte-identical reports, even though the
/// live index has visibly moved on.
#[test]
fn a_pinned_snapshot_never_changes_its_answers() {
    let base = generate_dataset(REGION, 2_000);
    let train = generate_queries(REGION, 100, SELECTIVITIES[1]);
    for kind in IndexKind::OVERVIEW {
        let source = build_versioned_index(kind, &base, &train, LEAF_CAPACITY);
        let snapshot = source.snapshot();
        let batch = generate_mixed_batch(REGION, 32, SELECTIVITIES[2], 0xF1_FE);
        let engine = QueryEngine::new(&snapshot);
        let before: Vec<QueryOutput> = batch
            .iter()
            .map(|q| engine.execute(q).expect("snapshot execution").output)
            .collect();
        let fresh: Vec<Point> = (0..40)
            .map(|i| Point::new(0.31 + i as f64 * 1e-3, 0.62 - i as f64 * 1e-3))
            .collect();
        let ops: Vec<WriteOp> = fresh.iter().copied().map(WriteOp::Insert).collect();
        source.apply(&ops).unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert_eq!(source.snapshot().len(), base.len() + fresh.len(), "{kind}");
        let after: Vec<QueryOutput> = batch
            .iter()
            .map(|q| engine.execute(q).expect("snapshot execution").output)
            .collect();
        assert_eq!(before, after, "{kind}: the pinned snapshot changed answers");
        assert_eq!(snapshot.len(), base.len(), "{kind}");
    }
}

/// Snapshots are immutable on the write surface too: incremental update
/// calls refuse with a typed error instead of silently mutating (or
/// panicking inside) a version other readers hold.
#[test]
fn snapshots_refuse_direct_writes() {
    let base = generate_dataset(REGION, 500);
    let train = generate_queries(REGION, 50, SELECTIVITIES[1]);
    let source = build_versioned_index(IndexKind::Wazi, &base, &train, LEAF_CAPACITY);
    let mut snapshot = source.snapshot();
    let err = snapshot.insert(Point::new(0.5, 0.5)).unwrap_err();
    assert!(err.to_string().contains("immutable snapshot"), "{err}");
    let err = snapshot.delete(&base[0]).unwrap_err();
    assert!(err.to_string().contains("immutable snapshot"), "{err}");
    // Refusal really was refusal: the live version is untouched.
    assert_eq!(source.snapshot().len(), base.len());
}

/// Version lifecycle under the stream: each publish supersedes the prior
/// version, and a superseded version is reclaimed exactly when its last
/// pinned snapshot drops.
#[test]
fn superseded_versions_retire_when_their_snapshots_drop() {
    let base = generate_dataset(REGION, 800);
    let train = generate_queries(REGION, 50, SELECTIVITIES[1]);
    let source = build_versioned_index(IndexKind::Wazi, &base, &train, LEAF_CAPACITY);
    let pinned = source.snapshot(); // pins epoch 0
    for i in 0..3 {
        source
            .apply(&[WriteOp::Insert(Point::new(0.1 + i as f64 * 0.2, 0.5))])
            .expect("insert");
    }
    let stats = source.version_stats();
    assert_eq!(stats.current_epoch, 3);
    assert_eq!(stats.snapshots_published, 3);
    // Epochs 1 and 2 had no outstanding snapshots, so they retired on
    // supersession; epoch 0 is still pinned.
    assert_eq!(stats.epochs_retired, 2);
    drop(pinned);
    assert_eq!(source.version_stats().epochs_retired, 3);
    // The live epoch is never counted retired while it is current.
    assert_eq!(source.version_stats().live_epochs(), 1);
}

/// The mixed batch generator feeds every plan type through the snapshot
/// path — guard against a regression that quietly drops a query kind from
/// the sweep above.
#[test]
fn the_consistency_batch_exercises_all_three_plan_kinds() {
    let batch = generate_mixed_batch(REGION, 48, SELECTIVITIES[2], 0xB1_7E ^ 1);
    let ranges = batch
        .iter()
        .filter(|q| matches!(q, Query::Range { .. }))
        .count();
    let points = batch
        .iter()
        .filter(|q| matches!(q, Query::Point(_)))
        .count();
    let knns = batch
        .iter()
        .filter(|q| matches!(q, Query::Knn { .. }))
        .count();
    assert!(ranges > 0 && points > 0 && knns > 0);
    assert_eq!(ranges + points + knns, batch.len());
}
