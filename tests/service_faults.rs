//! Chaos acceptance tests for the service's fault tolerance: under any
//! deterministic fault schedule, **no ticket is left behind** — every
//! accepted submission reaches exactly one terminal outcome (a response,
//! a deadline error, a panic error, or a worker-death error), non-faulty
//! queries still get answers bit-identical to solo execution, and the
//! worker pool recovers to serve traffic submitted after the faults.

use std::sync::Arc;
use std::time::{Duration, Instant};

use wazi_bench::{build_index, IndexKind};
use wazi_core::{Query, QueryEngine, QueryOutput, SpatialIndex};
use wazi_service::{Fault, FaultPlan, FullQueuePolicy, Service, ServiceError};
use wazi_workload::{
    generate_dataset, generate_mixed_batch, generate_queries, Region, SELECTIVITIES,
};

fn fixture(n_queries: usize) -> (Arc<dyn SpatialIndex>, Vec<Query>) {
    let region = Region::CaliNev;
    let points = generate_dataset(region, 4_000);
    let train = generate_queries(region, 120, SELECTIVITIES[1]);
    let batch = generate_mixed_batch(region, n_queries, SELECTIVITIES[2], 0xC4A0);
    let built = build_index(IndexKind::Wazi, &points, &train, 128);
    (Arc::from(built.index), batch)
}

/// The tentpole acceptance test, run over a matrix of seeded fault
/// schedules: kernel panics resolve to `ExecutionPanicked` for exactly the
/// faulty queries, every other query's output is bit-identical to a solo
/// `QueryEngine::execute`, zero tickets are stranded, and the pool keeps
/// answering after the schedule is exhausted.
#[test]
fn chaos_matrix_leaves_no_ticket_behind() {
    const N: usize = 160;
    let (index, queries) = fixture(N);
    let engine = QueryEngine::new(index.as_ref());
    let expected: Vec<QueryOutput> = queries
        .iter()
        .map(|q| engine.execute(q).expect("solo execution").output)
        .collect();

    for seed in [1u64, 7, 42] {
        let plan = Arc::new(FaultPlan::seeded(seed, N as u64, 9));
        let faulty: Vec<u64> = plan.kernel_panics();
        assert!(
            !faulty.is_empty(),
            "seed {seed}: schedule must panic somewhere"
        );

        let service = Service::builder(Arc::clone(&index))
            .window(Duration::from_micros(100), Duration::from_millis(2))
            .max_batch(32)
            .fault_plan(Arc::clone(&plan))
            .start();

        // Single-threaded submission so seq i == query i: the bit-identity
        // assertion needs to know which expected output belongs to which
        // ticket.
        let tickets: Vec<_> = queries
            .iter()
            .map(|q| {
                service
                    .submit(q.clone())
                    .expect("service accepts while running")
                    .ticket()
                    .expect("blocking policy never sheds")
            })
            .collect();

        let mut answered = 0u64;
        let mut panicked = Vec::new();
        for (i, ticket) in tickets.into_iter().enumerate() {
            // `wait` itself is the no-ticket-left-behind assertion: a
            // stranded ticket would hang the test, a severed one errors.
            match ticket.wait() {
                Ok(response) => {
                    assert_eq!(
                        response.report.output, expected[i],
                        "seed {seed}: query {i} diverged from solo execution"
                    );
                    answered += 1;
                }
                Err(ServiceError::ExecutionPanicked { message }) => {
                    assert!(
                        message.contains("injected kernel panic"),
                        "seed {seed}: query {i} unexpected payload: {message}"
                    );
                    panicked.push(i as u64);
                }
                Err(other) => panic!("seed {seed}: query {i} failed with {other}"),
            }
        }
        assert_eq!(
            panicked, faulty,
            "seed {seed}: exactly the planned queries must panic"
        );

        // The pool recovered: fresh traffic after the schedule still works.
        let probe = service
            .submit(queries[0].clone())
            .expect("service is still accepting")
            .ticket()
            .expect("queue has room");
        assert_eq!(
            probe.wait().expect("post-fault probe").report.output,
            expected[0],
            "seed {seed}: post-fault probe diverged"
        );

        let stats = service.shutdown();
        assert_eq!(stats.completed, answered + 1, "seed {seed}");
        assert_eq!(stats.panicked, faulty.len() as u64, "seed {seed}");
        assert!(stats.degraded_batches >= 1, "seed {seed}");
        assert_eq!(
            stats.worker_panics, 0,
            "seed {seed}: kernel panics never escape the boundary"
        );
        assert!(plan.injected() > 0, "seed {seed}: the schedule must fire");
    }
}

/// Satellite 1 + supervision: a worker killed outside the execution
/// boundary severs its drained batch's tickets — which resolve to the
/// descriptive `WorkerDied`, never hang — and the supervisor respawns the
/// worker so later traffic completes.
#[test]
fn killed_worker_is_respawned_and_its_tickets_resolve() {
    let (index, queries) = fixture(24);
    let plan = Arc::new(FaultPlan::new().with(0, Fault::WorkerKill));
    let service = Service::builder(Arc::clone(&index))
        .workers(1)
        .fixed_window(Duration::from_micros(100))
        .max_batch(4)
        .fault_plan(plan)
        .start();

    // First wave: seq 0 carries the kill. The batch it rides in dies with
    // the worker; its tickets resolve to WorkerDied, everyone else is
    // answered by the respawned worker.
    let first_wave: Vec<_> = queries[..8]
        .iter()
        .map(|q| service.submit(q.clone()).unwrap().ticket().unwrap())
        .collect();
    let mut died = 0;
    for (i, ticket) in first_wave.into_iter().enumerate() {
        match ticket.wait() {
            Ok(_) => {}
            Err(ServiceError::WorkerDied) => died += 1,
            Err(other) => panic!("query {i}: unexpected error {other}"),
        }
    }
    assert!(
        died >= 1,
        "the killed worker's batch must surface WorkerDied"
    );

    // The supervisor observes the exit asynchronously; give it a bounded
    // moment before asserting the restart.
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.stats().worker_restarts == 0 {
        assert!(Instant::now() < deadline, "supervisor never respawned");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Second wave: the respawned worker serves it fully.
    let second_wave: Vec<_> = queries[8..]
        .iter()
        .map(|q| service.submit(q.clone()).unwrap().ticket().unwrap())
        .collect();
    for (i, ticket) in second_wave.into_iter().enumerate() {
        ticket
            .wait()
            .unwrap_or_else(|e| panic!("post-respawn query {i} failed: {e}"));
    }

    let stats = service.shutdown();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.worker_restarts, 1);
    assert_eq!(
        stats.completed + died,
        24,
        "every ticket reached exactly one terminal outcome"
    );
}

/// Satellite 3: shutdown racing blocked submitters on a full Block-policy
/// queue — no hang, every accepted query is drained, and every blocked
/// submitter is unblocked with a terminal outcome (`Closed`).
#[test]
fn shutdown_under_load_unblocks_every_submitter() {
    const SUBMITTERS: usize = 8;
    let (index, queries) = fixture(32);
    // Capacity below max_batch and a 30s window: the queue wedges full,
    // nothing flushes on its own, and submitters block on the space
    // condvar until shutdown cuts in.
    let service = Service::builder(Arc::clone(&index))
        .queue_capacity(4)
        .max_batch(16)
        .fixed_window(Duration::from_secs(30))
        .on_full(FullQueuePolicy::Block)
        .start();

    let (accepted, closed) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..SUBMITTERS)
            .map(|client| {
                let service = &service;
                let queries = &queries;
                s.spawn(move || {
                    let mut tickets = Vec::new();
                    let mut closed = 0usize;
                    for query in queries.iter().cycle().take(64) {
                        match service.submit(query.clone()) {
                            Ok(submit) => tickets.push(submit.ticket().expect("Block never sheds")),
                            Err(ServiceError::Closed) => {
                                closed += 1;
                                break;
                            }
                            Err(other) => panic!("client {client}: {other}"),
                        }
                    }
                    (tickets, closed)
                })
            })
            .collect();
        // Let the submitters wedge the queue, then pull the plug under them.
        std::thread::sleep(Duration::from_millis(50));
        service.begin_shutdown();
        let mut accepted = 0u64;
        let mut closed = 0usize;
        for handle in handles {
            let (tickets, was_closed) = handle.join().expect("submitter thread");
            closed += was_closed;
            for ticket in tickets {
                ticket.wait().expect("accepted queries are drained");
                accepted += 1;
            }
        }
        (accepted, closed)
    });
    let stats = service.shutdown();
    assert_eq!(
        stats.completed, accepted,
        "every accepted query must be drained by shutdown"
    );

    assert!(accepted > 0, "the race must accept something");
    assert!(
        closed > 0,
        "at least one blocked submitter must be unblocked with Closed"
    );
}
