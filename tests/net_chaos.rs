//! Chaos acceptance tests for the TCP transport: under a seeded matrix of
//! wire faults — corrupted frames, truncated writes, read stalls, dropped
//! connections, a writer killed mid-drain — **every request resolves** (a
//! response or a typed error, never a hang), the server survives to serve
//! the next request, and answers routed over TCP are bit-identical to
//! in-process submission for every index of the paper's overview suite:
//! the wire changes transport, never answers.

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use wazi_bench::{build_index, IndexKind};
use wazi_core::{Query, QueryEngine, QueryOutput, SpatialIndex};
use wazi_net::{
    wire, Client, ClientConfig, Frame, FrameBody, NetError, Server, TransportError, WireFault,
    WireFaultPlan,
};
use wazi_service::{Fault, FaultPlan, FullQueuePolicy, Service, SubmitOptions};
use wazi_workload::{
    generate_dataset, generate_mixed_batch, generate_queries, reconnect_sessions, Region,
    SELECTIVITIES,
};

fn fixture(kind: IndexKind, n_queries: usize) -> (Arc<dyn SpatialIndex>, Vec<Query>) {
    let region = Region::CaliNev;
    let points = generate_dataset(region, 3_000);
    let train = generate_queries(region, 100, SELECTIVITIES[1]);
    let batch = generate_mixed_batch(region, n_queries, SELECTIVITIES[2], 0x7C9);
    let built = build_index(kind, &points, &train, 128);
    (Arc::from(built.index), batch)
}

fn chaos_client(addr: std::net::SocketAddr) -> Client {
    Client::connect(
        addr,
        ClientConfig {
            request_timeout: Duration::from_secs(5),
            max_retries: 8,
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(50),
            ..ClientConfig::default()
        },
    )
    .expect("connect")
}

/// The transport identity guarantee, across every overview index: a query
/// answered over loopback TCP produces output bit-identical to a solo
/// engine execution and to an in-process submission on the very same
/// service instance.
#[test]
fn tcp_responses_are_bit_identical_to_in_process_for_every_index() {
    for kind in IndexKind::OVERVIEW {
        let (index, queries) = fixture(kind, 40);
        let reference: Vec<QueryOutput> = {
            let engine = QueryEngine::new(index.as_ref());
            queries
                .iter()
                .map(|q| engine.execute(q).expect("solo execution").output)
                .collect()
        };

        let service = Service::builder(Arc::clone(&index)).start();
        let server = Server::bind(service, "127.0.0.1:0").expect("bind");
        let client = chaos_client(server.local_addr());

        for (i, query) in queries.iter().enumerate() {
            let over_tcp = client
                .request(query.clone())
                .unwrap_or_else(|err| panic!("{kind:?} query {i} over tcp: {err}"));
            // In-process, on the same service the server fronts.
            let in_process = server
                .service()
                .submit(query.clone())
                .expect("in-process submit")
                .ticket()
                .expect("accepted")
                .wait()
                .expect("in-process response");
            assert_eq!(
                over_tcp.report.output, reference[i],
                "{kind:?} query {i}: tcp vs solo"
            );
            assert_eq!(
                in_process.report.output, reference[i],
                "{kind:?} query {i}: in-process vs solo"
            );
        }

        drop(client);
        let stats = server.shutdown();
        assert_eq!(stats.connections_opened, stats.connections_drained);
    }
}

/// The tentpole: a seeded chaos matrix over every injectable wire fault
/// kind, including an explicit writer kill mid-drain. Every request
/// resolves through the retrying client, outputs stay bit-identical to
/// solo execution, the server keeps serving afterwards, and connection
/// accounting balances.
#[test]
fn wire_chaos_matrix_every_request_resolves() {
    const N: usize = 60;
    let (index, queries) = fixture(IndexKind::Wazi, N);
    let engine = QueryEngine::new(index.as_ref());
    let expected: Vec<QueryOutput> = queries
        .iter()
        .map(|q| engine.execute(q).expect("solo execution").output)
        .collect();

    for seed in [1u64, 7, 42] {
        // Seeded faults over the early ordinals plus a writer kill: with
        // retries, arrival ordinals overshoot N, so plan over 2N.
        let mut plan = WireFaultPlan::seeded(seed, N as u64, 10);
        plan = plan.with(N as u64 / 2, WireFault::KillWriter);
        let plan = Arc::new(plan);
        assert!(plan.schedule().count() >= 5, "seed {seed}: thin schedule");

        let service = Service::builder(Arc::clone(&index)).start();
        let server = Server::builder(service)
            .wire_faults(Arc::clone(&plan))
            .bind("127.0.0.1:0")
            .expect("bind");
        let client = chaos_client(server.local_addr());

        for (i, query) in queries.iter().enumerate() {
            let response = client
                .request(query.clone())
                .unwrap_or_else(|err| panic!("seed {seed} query {i} did not resolve: {err}"));
            assert_eq!(
                response.report.output, expected[i],
                "seed {seed} query {i}: output must survive the chaos"
            );
        }

        assert!(
            plan.injected() > 0,
            "seed {seed}: no fault actually fired — the matrix tested nothing"
        );
        assert!(
            client.retries() > 0,
            "seed {seed}: the client never had to retry"
        );

        // The server must still be serving: one more request, clean.
        let post = client
            .request(queries[0].clone())
            .expect("post-chaos request");
        assert_eq!(post.report.output, expected[0]);

        drop(client);
        let stats = server.shutdown();
        assert_eq!(
            stats.connections_opened, stats.connections_drained,
            "seed {seed}: every connection must drain, severed or not"
        );
        assert!(
            stats.connections_severed > 0,
            "seed {seed}: drop/truncate faults must sever at least one connection"
        );
        assert_eq!(
            stats.submitted,
            stats.completed + stats.shed + stats.timed_out,
            "seed {seed}: no ticket left behind"
        );
    }
}

/// Server shutdown while requests are in flight: the drain flushes every
/// response it can, the client sees either an answer or a typed error
/// (`Closed` once the service refuses new work), and shutdown returns —
/// never hangs.
#[test]
fn shutdown_mid_traffic_drains_and_resolves_every_request() {
    let (index, queries) = fixture(IndexKind::Wazi, 40);
    let service = Service::builder(index).start();
    let server = Server::bind(service, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let pump = std::thread::spawn(move || {
        let client = Client::connect(
            addr,
            ClientConfig {
                request_timeout: Duration::from_secs(2),
                max_retries: 0,
                ..ClientConfig::default()
            },
        )
        .expect("connect");
        let mut outcomes = Vec::new();
        for query in queries {
            outcomes.push(client.request(query));
        }
        outcomes
    });

    // Let some traffic through, then pull the plug mid-stream.
    std::thread::sleep(Duration::from_millis(30));
    let stats = server.shutdown();

    let outcomes = pump.join().expect("client thread");
    let mut answered = 0usize;
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Ok(_) => answered += 1,
            Err(NetError::Service(_) | NetError::Rejected | NetError::Transport(_)) => {}
            #[allow(unreachable_patterns)]
            Err(other) => panic!("request {i}: unexpected outcome {other:?}"),
        }
    }
    assert!(answered > 0, "the drain must have flushed some responses");
    assert_eq!(stats.connections_opened, stats.connections_drained);
}

/// The retrying client vs a saturated service: a tiny Reject queue sheds
/// aggressively, but backoff-with-retry completes the full workload from
/// several concurrent clients anyway — transient 429s are absorbed, not
/// surfaced.
#[test]
fn retrying_client_completes_workload_under_rejected_saturation() {
    const CLIENTS: usize = 3;
    let (index, queries) = fixture(IndexKind::Wazi, 120);
    let engine = QueryEngine::new(index.as_ref());
    let expected: Vec<QueryOutput> = queries
        .iter()
        .map(|q| engine.execute(q).expect("solo execution").output)
        .collect();

    // Stall the lone worker on every early batch: with execution held for
    // milliseconds while three clients keep submitting into a 2-slot
    // Reject queue, shedding is guaranteed rather than a scheduling race
    // (without the stalls, a fast engine can drain between submissions
    // and the shed assertion below turns flaky).
    let mut stalls = FaultPlan::new();
    for seq in 0..12 {
        stalls = stalls.with(seq, Fault::ExecDelay(Duration::from_millis(3)));
    }
    let service = Service::builder(Arc::clone(&index))
        .queue_capacity(2)
        .max_batch(2)
        .workers(1)
        .on_full(FullQueuePolicy::Reject)
        .fault_plan(Arc::new(stalls))
        .start();
    let server = Server::bind(service, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let schedules = reconnect_sessions(queries.clone(), CLIENTS, 50_000.0, 15, 0.25, 9);
    let mut rejections_seen = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = schedules
            .iter()
            .map(|schedule| {
                let engine = &engine;
                scope.spawn(move || {
                    let mut rejections = 0u64;
                    // One fresh connection per epoch: the reconnect-heavy
                    // shape the schedule generator encodes.
                    for epoch in &schedule.epochs {
                        let client = Client::connect(
                            addr,
                            ClientConfig {
                                request_timeout: Duration::from_secs(5),
                                max_retries: 64,
                                backoff_base: Duration::from_micros(500),
                                backoff_max: Duration::from_millis(10),
                                retry_rejected: true,
                                jitter_seed: 0x1000 + schedule.client as u64,
                                ..ClientConfig::default()
                            },
                        )
                        .expect("connect");
                        for arrival in &epoch.arrivals {
                            let response = client
                                .request(arrival.query.clone())
                                .expect("must complete under saturation");
                            let solo = engine
                                .execute(&arrival.query)
                                .expect("solo execution")
                                .output;
                            assert_eq!(response.report.output, solo);
                        }
                        rejections += client.rejections_seen();
                    }
                    rejections
                })
            })
            .collect();
        for handle in handles {
            rejections_seen += handle.join().expect("client thread");
        }
    });

    assert!(
        rejections_seen > 0,
        "queue of 2 under 3 bursty clients must have shed something, or the \
         test exercised nothing"
    );
    let stats = server.shutdown();
    assert_eq!(stats.connections_opened, stats.connections_drained);
    // Transitivity check against the reference outputs (the per-request
    // asserts above used solo execution directly).
    assert_eq!(expected.len(), 120);
}

/// Malformed input containment: a payload that frames correctly but does
/// not decode is answered with a typed error frame *on a connection that
/// keeps working*; wire garbage (framing violation) severs only that
/// connection, with the server intact either way.
#[test]
fn malformed_input_gets_typed_errors_and_never_kills_the_server() {
    let (index, queries) = fixture(IndexKind::Wazi, 4);
    let service = Service::builder(index).start();
    let server = Server::bind(service, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    // 1. Valid framing, garbage payload: typed error frame, connection
    //    survives to serve a well-formed request.
    {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut garbage = Frame::request(77, queries[0].clone(), SubmitOptions::new()).encode();
        garbage[wire::HEADER_LEN] = 250; // unknown query tag
        let body_end = garbage.len() - wire::CHECKSUM_LEN;
        let reseal = wire::checksum(&garbage[..body_end]);
        garbage[body_end..].copy_from_slice(&reseal.to_le_bytes());
        stream.write_all(&garbage).expect("write garbage payload");

        let frame = wire::read_frame(&mut stream, wire::DEFAULT_MAX_FRAME_LEN)
            .expect("read error frame")
            .expect("frame, not EOF");
        assert_eq!(frame.request_id, 77, "error frame must carry our id");
        assert!(
            matches!(
                frame.body,
                FrameBody::Error(wazi_net::WireError::Transport(_))
            ),
            "got {:?}",
            frame.body
        );

        // Same connection, now a valid request: it must still work.
        let valid = Frame::request(78, queries[1].clone(), SubmitOptions::new());
        wire::write_frame(&mut stream, &valid).expect("write valid request");
        let frame = wire::read_frame(&mut stream, wire::DEFAULT_MAX_FRAME_LEN)
            .expect("read response")
            .expect("frame, not EOF");
        assert_eq!(frame.request_id, 78);
        assert!(
            matches!(frame.body, FrameBody::Response(_)),
            "got {:?}",
            frame.body
        );
    }

    // 2. Wire garbage: the stream desyncs, the server severs just this
    //    connection (best-effort error frame first).
    {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream
            .write_all(b"this is not a frame!")
            .expect("write noise");
        // Whatever comes back — an error frame or an immediate EOF — the
        // read must terminate and the socket must die.
        match wire::read_frame(&mut stream, wire::DEFAULT_MAX_FRAME_LEN) {
            Ok(Some(frame)) => {
                assert!(
                    matches!(frame.body, FrameBody::Error(_)),
                    "got {:?}",
                    frame.body
                )
            }
            Ok(None) => {}
            Err(TransportError::ConnectionLost) => {}
            Err(other) => panic!("unexpected read outcome: {other:?}"),
        }
    }

    // The server is unharmed: a fresh well-behaved client gets answers.
    let client = chaos_client(addr);
    let response = client
        .request(queries[2].clone())
        .expect("post-garbage request");
    assert!(response.report.output.result_count() < u64::MAX);
    drop(client);

    let stats = server.shutdown();
    assert!(
        stats.connections_severed >= 1,
        "the garbage connection must be accounted as severed"
    );
    assert_eq!(stats.connections_opened, stats.connections_drained);
}
