//! End-to-end smoke test of the reproduction harness: every registered
//! experiment runs at a tiny scale and produces well-formed reports. This is
//! the test that guards the `reproduce` binary's coverage of every table and
//! figure in the paper.

use wazi_bench::{registry, ExperimentContext, StrategyFilter, TransportFilter};

#[test]
fn every_registered_experiment_runs_and_produces_rows() {
    let ctx = ExperimentContext {
        dataset_size: 2_000,
        workload_size: 40,
        training_size: 40,
        point_queries: 100,
        leaf_capacity: 64,
        seed: 7,
        batch_shards: 4,
        strategy: StrategyFilter::Auto,
        transport: TransportFilter::Both,
        // Smoke runs must never overwrite the committed BENCH_batch.json
        // (it is regenerated at full scale by `reproduce batch`).
        emit_artifacts: false,
    };
    for spec in registry() {
        let reports = (spec.run)(&ctx);
        assert!(
            !reports.is_empty(),
            "experiment {} produced no reports",
            spec.id
        );
        for report in &reports {
            assert!(!report.rows.is_empty(), "{}: empty table", report.id);
            for row in &report.rows {
                assert_eq!(
                    row.len(),
                    report.headers.len(),
                    "{}: row arity mismatch",
                    report.id
                );
                assert!(row.iter().all(|cell| !cell.is_empty()));
            }
            // Reports must render and serialise.
            let text = report.to_string();
            assert!(text.contains(&report.title));
            let json = report.to_json();
            assert!(json.contains(&report.id));
        }
    }
}

#[test]
fn the_registry_covers_every_table_and_figure_of_the_paper() {
    let ids: Vec<&str> = registry().iter().map(|s| s.id).collect();
    for required in [
        "table1", "table2", "table3", "table4", "table5", "figure4", "figure6", "figure7",
        "figure8", "figure9", "figure10", "figure11", "figure12", "figure13",
    ] {
        assert!(ids.contains(&required), "missing experiment {required}");
    }
}
