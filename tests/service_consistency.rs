//! Cross-crate integration test for the concurrent query service: whatever
//! the service does — coalesce submissions from many client threads into
//! micro-batches, execute them under the cost-based Auto strategy, route
//! responses back over completion tickets — the answer each client receives
//! must be bit-identical to a solo `QueryEngine::execute` of the same query
//! on the same index. The batch engine's fusion guarantee extends through
//! the service layer, for every index of the evaluation suite.
//!
//! Alongside the identity property, the two service lifecycle guarantees
//! the facade promises: shutdown drains every accepted query before the
//! workers exit, and a full bounded queue under `FullQueuePolicy::Reject`
//! sheds loudly instead of blocking or dropping silently.

use std::sync::Arc;
use std::time::Duration;

use wazi_bench::{build_index, IndexKind};
use wazi_core::{BatchReport, Query, QueryEngine, QueryOutput, QueryReport, SpatialIndex};
use wazi_service::{FullQueuePolicy, Service, Submit};
use wazi_workload::{
    generate_dataset, generate_mixed_batch, generate_queries, Region, SELECTIVITIES,
};

/// The compile-time contract the service is built on, restated at the
/// facade level: everything that crosses a service thread boundary is
/// `Send + 'static`.
const fn assert_send_static<T: Send + 'static>() {}
const _: () = {
    assert_send_static::<Query>();
    assert_send_static::<QueryOutput>();
    assert_send_static::<QueryReport>();
    assert_send_static::<BatchReport>();
};

fn fixture(kind: IndexKind) -> (Arc<dyn SpatialIndex>, Vec<Query>) {
    let region = Region::NewYork;
    let points = generate_dataset(region, 4_000);
    let train = generate_queries(region, 120, SELECTIVITIES[1]);
    let batch = generate_mixed_batch(region, 90, SELECTIVITIES[2], 0x5E41);
    let built = build_index(kind, &points, &train, 128);
    (Arc::from(built.index), batch)
}

/// Concurrent clients through the service vs a solo per-query loop, for
/// every index of the paper's overview comparison. The mixed batch covers
/// all plan types (ranges in three modes, point probes, kNN), so every
/// fused kernel the Auto strategy may pick is behind the assert.
#[test]
fn service_responses_match_solo_execution_for_every_index() {
    const CLIENTS: usize = 3;
    for kind in IndexKind::OVERVIEW {
        let (index, batch) = fixture(kind);
        let reference: Vec<QueryOutput> = {
            let engine = QueryEngine::new(index.as_ref());
            batch
                .iter()
                .map(|q| engine.execute(q).expect("solo execution").output)
                .collect()
        };

        let service = Service::builder(Arc::clone(&index))
            .window(Duration::from_micros(50), Duration::from_millis(5))
            .start();
        let outputs: Vec<(usize, QueryOutput)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|client| {
                    let service = &service;
                    let batch = &batch;
                    s.spawn(move || {
                        let tickets: Vec<_> = batch
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| i % CLIENTS == client)
                            .map(|(i, query)| {
                                let ticket = service
                                    .submit(query.clone())
                                    .expect("service accepts while running")
                                    .ticket()
                                    .expect("blocking policy never sheds");
                                (i, ticket)
                            })
                            .collect();
                        tickets
                            .into_iter()
                            .map(|(i, ticket)| {
                                let response = ticket.wait().expect("response arrives");
                                (i, response.report.output)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        let stats = service.shutdown();

        assert_eq!(
            outputs.len(),
            batch.len(),
            "{kind}: a response went missing"
        );
        for (i, output) in outputs {
            assert_eq!(
                output, reference[i],
                "{kind}: service response {i} diverged from solo execution"
            );
        }
        assert_eq!(stats.completed, batch.len() as u64, "{kind}");
        assert_eq!(
            stats.shed, 0,
            "{kind}: the blocking policy must be lossless"
        );
    }
}

/// Shutdown drains: queries accepted before `shutdown` all resolve, even
/// when the window is far too long to have flushed them on its own.
#[test]
fn shutdown_drains_every_accepted_query() {
    let (index, batch) = fixture(IndexKind::Wazi);
    let service = Service::builder(index)
        .window(Duration::from_secs(30), Duration::from_secs(30))
        .max_batch(1_000)
        .start();
    let tickets: Vec<_> = batch
        .iter()
        .map(|query| {
            service
                .submit(query.clone())
                .expect("service accepts while running")
                .ticket()
                .expect("queue has room")
        })
        .collect();
    let stats = service.shutdown();
    assert_eq!(stats.completed, batch.len() as u64);
    assert!(
        stats.flushed_on_shutdown >= 1,
        "the drain must be attributed to shutdown, not the 30s window"
    );
    for (i, ticket) in tickets.into_iter().enumerate() {
        let response = ticket
            .wait()
            .unwrap_or_else(|e| panic!("query {i} lost: {e}"));
        assert_eq!(response.batch.size, batch.len(), "one shutdown drain batch");
    }
}

/// Backpressure: a one-slot queue with a worker wedged behind a huge
/// window must shed under `FullQueuePolicy::Reject`, and everything it
/// accepted must still be answered.
#[test]
fn reject_policy_sheds_when_the_queue_is_full() {
    let (index, batch) = fixture(IndexKind::Wazi);
    let service = Service::builder(index)
        .queue_capacity(1)
        .window(Duration::from_secs(30), Duration::from_secs(30))
        .max_batch(1_000)
        .on_full(FullQueuePolicy::Reject)
        .start();
    let mut accepted = Vec::new();
    let mut shed = 0u64;
    for query in &batch {
        match service.submit(query.clone()).expect("service is running") {
            Submit::Accepted(ticket) => accepted.push(ticket),
            Submit::Rejected => shed += 1,
        }
    }
    assert!(
        shed > 0,
        "a one-slot queue must shed under a {}-query burst",
        batch.len()
    );
    let stats = service.shutdown();
    assert_eq!(stats.shed, shed);
    assert_eq!(stats.completed + stats.shed, batch.len() as u64);
    for ticket in accepted {
        ticket.wait().expect("accepted queries are answered");
    }
}
