//! Seeded read/write chaos: a live writer with injected failpoints races
//! multi-client fused read batches through the service, and nothing is
//! allowed to go quietly wrong.
//!
//! The harness replays a deterministic [`mixed_read_write_schedule`]
//! against a versioned WaZI index behind a [`wazi_service::Service`]:
//! a writer thread applies the schedule's write bursts while three client
//! threads submit every read burst's queries concurrently. The writer
//! carries a [`WriteFaultPlan`] with the two interesting failpoints:
//!
//! * a **publish stall** — the writer sleeps between finishing its fork
//!   and publishing it, widening the window in which readers must stay on
//!   the old epoch;
//! * a **writer panic mid-CoW** — the writer dies halfway through applying
//!   a burst, after the fork has already been partially mutated.
//!
//! Hard-asserted:
//!
//! * **no ticket lost** — every submitted query reaches a response;
//! * **no torn page** — every response is bit-identical to a solo
//!   execution on the pinned snapshot of exactly the epoch it names, so no
//!   reader ever observed a half-applied write;
//! * **panic atomicity** — the panicked burst publishes nothing: the
//!   epoch does not advance and the next burst applies cleanly;
//! * **post-chaos state** — the surviving index equals a sequential
//!   no-fault replay of the same schedule minus the panicked burst.

use std::sync::Arc;
use std::time::Duration;

use wazi_core::{
    QueryEngine, QueryOutput, Snapshot, SnapshotSource, SpatialIndex, VersionedIndex, WriteFault,
    WriteFaultPlan, WriteOp, WritePhase, ZIndexBuilder, ZIndexConfig,
};
use wazi_geom::{Point, Rect};
use wazi_service::{FullQueuePolicy, Service, ServiceError};
use wazi_workload::{
    generate_dataset, generate_queries, mixed_read_write_schedule, Region, RwStep, SELECTIVITIES,
};

const REGION: Region = Region::CaliNev;
const CLIENTS: usize = 3;
const ROUNDS: usize = 6;
const READS_PER_ROUND: usize = 36;
const WRITES_PER_ROUND: usize = 12;
/// Apply sequence numbers the failpoints are keyed to.
const STALL_SEQ: u64 = 1;
const PANIC_SEQ: u64 = 3;

fn build_wazi(points: &[Point], train: &[Rect]) -> wazi_core::ZIndex {
    ZIndexBuilder::wazi()
        .with_config(ZIndexConfig::wazi().with_leaf_capacity(64))
        .build(points.to_vec(), train)
}

fn sorted(mut points: Vec<Point>) -> Vec<Point> {
    points.sort_by(|a, b| a.lex_cmp(b));
    points
}

/// Every point a snapshot holds, via a full-space range query.
fn all_points(snapshot: &Snapshot) -> Vec<Point> {
    let mut stats = wazi_storage::ExecStats::default();
    sorted(snapshot.range_query(&Rect::UNIT, &mut stats))
}

#[test]
fn chaos_schedule_loses_nothing_and_converges_to_sequential_replay() {
    let points = generate_dataset(REGION, 3_000);
    let train = generate_queries(REGION, 100, SELECTIVITIES[1]);
    let schedule = mixed_read_write_schedule(
        REGION,
        ROUNDS,
        READS_PER_ROUND,
        WRITES_PER_ROUND,
        SELECTIVITIES[2],
        0xC4A0_5EED,
    );

    let source = Arc::new(VersionedIndex::with_rebuild(
        build_wazi(&points, &train),
        points.clone(),
        {
            let train = train.clone();
            move |pts: &[Point]| build_wazi(pts, &train)
        },
    ));
    let plan = Arc::new(
        WriteFaultPlan::new()
            .with(
                STALL_SEQ,
                WritePhase::BeforePublish,
                WriteFault::Stall(Duration::from_millis(25)),
            )
            .with(PANIC_SEQ, WritePhase::MidApply, WriteFault::Panic),
    );
    source.install_write_faults(Arc::clone(&plan));

    let service = Service::builder_versioned(Arc::clone(&source) as Arc<dyn SnapshotSource>)
        .max_batch(48)
        .window(Duration::from_micros(50), Duration::from_millis(2))
        .on_full(FullQueuePolicy::Block)
        .start();

    // snapshots[epoch] pinned right after its publish; epoch 0 up front.
    let snapshots = std::sync::Mutex::new(vec![source.snapshot()]);
    let read_queries: Vec<_> = schedule
        .iter()
        .filter_map(|step| match step {
            RwStep::Queries(queries) => Some(queries.clone()),
            RwStep::Writes(_) => None,
        })
        .flatten()
        .collect();

    let (responses, panicked_burst) = std::thread::scope(|s| {
        let service = &service;
        let source = &source;
        let snapshots = &snapshots;
        let writer = s.spawn(move || {
            let mut seq = 0u64;
            let mut panicked = None;
            for step in &schedule {
                let RwStep::Writes(ops) = step else { continue };
                let epoch_before = source.version_stats().current_epoch;
                match service.apply_write(ops) {
                    Ok(receipt) => {
                        assert_eq!(receipt.epoch, epoch_before + 1);
                        let snapshot = source.snapshot();
                        assert_eq!(snapshot.epoch(), receipt.epoch);
                        snapshots.lock().expect("registry").push(snapshot);
                    }
                    Err(ServiceError::ExecutionPanicked { message }) => {
                        assert_eq!(
                            seq, PANIC_SEQ,
                            "only the planned apply may panic: {message}"
                        );
                        assert!(message.contains("injected write fault"), "{message}");
                        // Panic atomicity: nothing was published, the
                        // fork (and its partial mutations) was discarded.
                        assert_eq!(source.version_stats().current_epoch, epoch_before);
                        panicked = Some(seq);
                    }
                    Err(other) => panic!("write burst {seq} failed oddly: {other}"),
                }
                seq += 1;
                std::thread::sleep(Duration::from_micros(300));
            }
            panicked
        });

        let mut clients = Vec::new();
        for client in 0..CLIENTS {
            let read_queries = &read_queries;
            clients.push(s.spawn(move || {
                let tickets: Vec<_> = read_queries
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % CLIENTS == client)
                    .map(|(i, query)| {
                        let ticket = service
                            .submit(query.clone())
                            .unwrap_or_else(|e| panic!("submission {i} refused: {e}"))
                            .ticket()
                            .expect("blocking policy never sheds");
                        (i, ticket)
                    })
                    .collect();
                // No ticket lost: every wait() terminates with a response.
                tickets
                    .into_iter()
                    .map(|(i, ticket)| {
                        let response = ticket
                            .wait()
                            .unwrap_or_else(|e| panic!("response {i} lost: {e}"));
                        (i, response.batch.epoch, response.report.output)
                    })
                    .collect::<Vec<_>>()
            }));
        }
        let responses: Vec<(usize, u64, QueryOutput)> = clients
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect();
        let panicked = writer.join().expect("writer thread");
        (responses, panicked)
    });

    assert_eq!(
        panicked_burst,
        Some(PANIC_SEQ),
        "the planned panic must fire"
    );
    assert_eq!(plan.injected(), 2, "both failpoints must fire");
    assert_eq!(
        responses.len(),
        read_queries.len(),
        "every submitted query must be answered"
    );

    // No torn page: each response equals a solo execution on the pinned
    // snapshot of exactly the epoch it names.
    let snapshots = snapshots.into_inner().expect("registry");
    assert_eq!(
        snapshots.len(),
        ROUNDS,
        "one publish per burst bar the panic"
    );
    for (i, epoch, output) in &responses {
        let snapshot = &snapshots[*epoch as usize];
        let solo = QueryEngine::new(snapshot)
            .execute(&read_queries[*i])
            .expect("solo execution on pinned snapshot")
            .output;
        assert_eq!(
            output, &solo,
            "response {i} diverged from its epoch-{epoch} snapshot"
        );
    }

    let stats = service.shutdown();
    assert_eq!(stats.snapshots_published, ROUNDS as u64 - 1);
    assert_eq!(stats.current_epoch, ROUNDS as u64 - 1);

    // Post-chaos convergence: a sequential, fault-free replay of the same
    // schedule minus the panicked burst lands on the identical point set.
    let replay = VersionedIndex::new(build_wazi(&points, &train));
    let mut seq = 0u64;
    for step in mixed_read_write_schedule(
        REGION,
        ROUNDS,
        READS_PER_ROUND,
        WRITES_PER_ROUND,
        SELECTIVITIES[2],
        0xC4A0_5EED,
    ) {
        let RwStep::Writes(ops) = step else { continue };
        if seq != PANIC_SEQ {
            replay
                .apply(&ops)
                .expect("sequential replay applies cleanly");
        }
        seq += 1;
    }
    let chaotic = source.snapshot();
    let replayed = replay.snapshot();
    assert_eq!(chaotic.len(), replayed.len());
    assert_eq!(all_points(&chaotic), all_points(&replayed));
}

/// The delete path under chaos: a schedule whose deletes race reads must
/// still never tear — a deleted point is either fully present (old epoch)
/// or fully absent (new epoch), pinned per snapshot.
#[test]
fn deletes_are_atomic_per_snapshot() {
    let points = generate_dataset(REGION, 1_200);
    let train = generate_queries(REGION, 60, SELECTIVITIES[1]);
    let source = VersionedIndex::new(build_wazi(&points, &train));
    let before = source.snapshot();
    let victims: Vec<Point> = points.iter().copied().take(50).collect();
    let ops: Vec<WriteOp> = victims.iter().copied().map(WriteOp::Delete).collect();
    source.apply(&ops).expect("deletes apply");
    let after = source.snapshot();
    let mut stats = wazi_storage::ExecStats::default();
    for victim in &victims {
        assert!(
            before.point_query(victim, &mut stats),
            "old epoch keeps the point"
        );
        assert!(
            !after.point_query(victim, &mut stats),
            "new epoch dropped the point"
        );
    }
    assert_eq!(after.len(), points.len() - victims.len());
    assert_eq!(before.len(), points.len());
}
