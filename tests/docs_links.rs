//! Link check for the repository's documentation surface: every relative
//! markdown link in README.md, docs/, ROADMAP.md and the vendor README must
//! resolve to a file that actually exists, so the docs cannot silently rot
//! as the workspace grows. CI runs this with the rest of the test suite.

use std::path::{Path, PathBuf};

/// The documents whose links are checked, relative to the repository root.
const DOCUMENTS: &[&str] = &[
    "README.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/ENGINE.md",
    "docs/SERVICE.md",
    "crates/vendor/README.md",
];

fn repo_root() -> PathBuf {
    // The integration test runs with the facade crate's manifest dir as its
    // working directory, which is the repository root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extracts `](target)` markdown link targets from one document.
fn link_targets(text: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(end) = text[i + 2..].find(')') {
                targets.push(text[i + 2..i + 2 + end].to_string());
            }
        }
        i += 1;
    }
    targets
}

/// Whether a link target is an external or intra-page reference the file
/// check does not apply to.
fn is_external(target: &str) -> bool {
    target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
}

#[test]
fn every_relative_markdown_link_resolves() {
    let root = repo_root();
    let mut missing = Vec::new();
    let mut checked = 0usize;
    for document in DOCUMENTS {
        let path = root.join(document);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("documentation file {document} must exist: {e}"));
        let base = path.parent().unwrap_or(Path::new("")).to_path_buf();
        for target in link_targets(&text) {
            if is_external(&target) {
                continue;
            }
            // Strip an intra-file anchor, if any.
            let file = target.split('#').next().unwrap_or(&target);
            if file.is_empty() {
                continue;
            }
            checked += 1;
            if !base.join(file).exists() {
                missing.push(format!("{document} -> {target}"));
            }
        }
    }
    assert!(
        missing.is_empty(),
        "broken relative links in the documentation:\n  {}",
        missing.join("\n  ")
    );
    assert!(
        checked >= 5,
        "expected the documentation surface to carry relative links (found {checked}); \
         did the link extractor break?"
    );
}

/// The documents the README promises must exist (the pointer map is the
/// repository's front door).
#[test]
fn documentation_surface_is_complete() {
    let root = repo_root();
    for required in [
        "README.md",
        "ROADMAP.md",
        "CHANGES.md",
        "PAPER.md",
        "docs/ENGINE.md",
        "docs/SERVICE.md",
        "BENCH_batch.json",
        "BENCH_service.json",
    ] {
        assert!(
            root.join(required).exists(),
            "documentation artifact {required} is missing"
        );
    }
}
