//! Property tests for the binary page codec: every well-formed encoding
//! round-trips exactly, and *no* corrupted input — truncation, extension,
//! single-bit flips, or random garbage — may decode or panic. This is the
//! integrity contract a future disk backend inherits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wazi_geom::Point;
use wazi_storage::{Page, PageId};

fn random_page(rng: &mut StdRng) -> Page {
    let len = rng.gen_range(0..64);
    let points = (0..len)
        .map(|_| Point::new(rng.gen_range(-1e6..1e6), rng.gen_range(-1e6..1e6)))
        .collect();
    Page::new(PageId(rng.gen_range(0..1u32 << 20)), points)
}

#[test]
fn random_pages_round_trip_bit_exactly() {
    let mut rng = StdRng::seed_from_u64(0x009a_9e01);
    for _ in 0..200 {
        let page = random_page(&mut rng);
        let bytes = page.to_bytes();
        let decoded = Page::from_bytes(&bytes).expect("well-formed page must decode");
        assert_eq!(decoded.id(), page.id());
        assert_eq!(decoded.points(), page.points());
        assert_eq!(decoded.bbox(), page.bbox());
        // Re-encoding is deterministic.
        assert_eq!(decoded.to_bytes(), bytes);
    }
}

#[test]
fn every_truncation_is_rejected_without_panic() {
    let mut rng = StdRng::seed_from_u64(0x009a_9e02);
    for _ in 0..40 {
        let bytes = random_page(&mut rng).to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Page::from_bytes(&bytes[..cut]).is_none(),
                "truncation to {cut} of {} bytes must be rejected",
                bytes.len()
            );
        }
    }
}

#[test]
fn every_single_bit_flip_is_rejected_without_panic() {
    let mut rng = StdRng::seed_from_u64(0x009a_9e03);
    for _ in 0..20 {
        let bytes = random_page(&mut rng).to_bytes();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                assert!(
                    Page::from_bytes(&corrupt).is_none(),
                    "bit flip at byte {i} bit {bit} must be rejected"
                );
            }
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = StdRng::seed_from_u64(0x009a_9e04);
    for _ in 0..500 {
        let len = rng.gen_range(0..256);
        let garbage: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
        // Overwhelmingly None; decoding must simply never panic.
        let _ = Page::from_bytes(&garbage);
    }
}

#[test]
fn extension_and_swapped_tails_are_rejected() {
    let mut rng = StdRng::seed_from_u64(0x009a_9e05);
    let a = random_page(&mut rng).to_bytes();
    let mut extended = a.clone();
    extended.extend_from_slice(&[0u8; 16]);
    assert!(Page::from_bytes(&extended).is_none());

    // Splicing the checksum of one page onto the body of another fails.
    let b = random_page(&mut rng).to_bytes();
    if a.len() == b.len() && a != b {
        let mut spliced = a[..a.len() - 8].to_vec();
        spliced.extend_from_slice(&b[b.len() - 8..]);
        assert!(Page::from_bytes(&spliced).is_none());
    }
}
