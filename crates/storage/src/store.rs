//! Clustered page store shared by the indexes of the workspace.
//!
//! The paper assumes clustered indexes: "data points corresponding to
//! consecutive leaf nodes are stored in consecutive pages". The store keeps
//! pages in a vector in leaf order; each index records the identifier of the
//! page backing each leaf. New pages created by leaf splits are appended at
//! the end (simulating out-of-place page allocation after updates).
//!
//! ## Page-level copy-on-write
//!
//! Pages are held behind [`Arc`], so cloning a `PageStore` is a *fork*: the
//! clone shares every page payload with the original and only copies the
//! page table (one pointer per page). Mutating a page through the store
//! ([`PageStore::page_mut`], [`PageStore::append`], [`PageStore::split_page`])
//! copies exactly that page first if it is shared (`Arc::make_mut`), leaving
//! every other fork's view untouched. This is the storage seam the epoch
//! snapshot layer (`wazi_core`'s `VersionedIndex`) builds on: a reader
//! holding a forked store can never observe a torn page, because a writer
//! never mutates a page some fork still references — it mutates a private
//! copy.

use crate::page::{Page, PageId};
use crate::stats::ExecStats;
use std::sync::Arc;
use wazi_geom::{Point, Rect};

/// A collection of clustered data pages with a fixed leaf capacity.
///
/// `Clone` forks the store in O(pages): page payloads are shared and copied
/// lazily on first mutation (see the module docs).
#[derive(Debug, Clone)]
pub struct PageStore {
    pages: Vec<Arc<Page>>,
    leaf_capacity: usize,
}

impl PageStore {
    /// Creates an empty store with the given leaf capacity `L`.
    pub fn new(leaf_capacity: usize) -> Self {
        assert!(leaf_capacity > 0, "leaf capacity must be positive");
        Self {
            pages: Vec::new(),
            leaf_capacity,
        }
    }

    /// The leaf capacity `L` (the paper's default is 256).
    #[inline]
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_capacity
    }

    /// Number of pages allocated.
    #[inline]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total number of points across pages.
    pub fn total_points(&self) -> usize {
        self.pages.iter().map(|p| p.len()).sum()
    }

    /// Allocates a new page holding `points` and returns its identifier.
    /// Pages allocated consecutively model consecutive placement on storage.
    pub fn allocate(&mut self, points: Vec<Point>) -> PageId {
        let id = PageId(self.pages.len() as u32);
        self.pages.push(Arc::new(Page::new(id, points)));
        id
    }

    /// Read-only access to a page.
    #[inline]
    pub fn page(&self, id: PageId) -> &Page {
        self.pages[id.index()].as_ref()
    }

    /// Mutable access to a page. If the page payload is shared with a forked
    /// store (a snapshot), it is copied first so the fork's view is
    /// unaffected.
    #[inline]
    pub fn page_mut(&mut self, id: PageId) -> &mut Page {
        Arc::make_mut(&mut self.pages[id.index()])
    }

    /// Iterator over all pages in allocation (leaf) order.
    pub fn pages(&self) -> impl Iterator<Item = &Page> {
        self.pages.iter().map(|p| p.as_ref())
    }

    /// Whether this store and `other` share the physical payload of page
    /// `id` (i.e. neither fork has copied it since they diverged). Used by
    /// tests and the snapshot layer to verify copy-on-write behaviour.
    pub fn shares_page_with(&self, other: &PageStore, id: PageId) -> bool {
        match (self.pages.get(id.index()), other.pages.get(id.index())) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Appends a point to a page, returning the page's new length. Callers
    /// are responsible for splitting when the length exceeds the capacity.
    pub fn append(&mut self, id: PageId, p: Point) -> usize {
        Arc::make_mut(&mut self.pages[id.index()]).push(p)
    }

    /// Returns `true` when a page is over capacity and must be split.
    pub fn is_overflowing(&self, id: PageId) -> bool {
        self.pages[id.index()].len() > self.leaf_capacity
    }

    /// Visitor-based scan of one page: invokes `visit` for every stored
    /// point inside `query` without materializing an intermediate vector.
    #[inline]
    pub fn for_each_in(
        &self,
        id: PageId,
        query: &Rect,
        stats: &mut ExecStats,
        visit: impl FnMut(&Point),
    ) {
        self.pages[id.index()].for_each_in(query, stats, visit);
    }

    /// Counting scan of one page: the number of stored points inside
    /// `query`, charging the same counters as a full scan.
    #[inline]
    pub fn count_in(&self, id: PageId, query: &Rect, stats: &mut ExecStats) -> u64 {
        self.pages[id.index()].count_in(query, stats)
    }

    /// Scans a page against a range query, appending matches to `out`.
    pub fn filter_page(
        &self,
        id: PageId,
        query: &Rect,
        out: &mut Vec<Point>,
        stats: &mut ExecStats,
    ) {
        self.pages[id.index()].filter_into(query, out, stats);
    }

    /// Probes a page for an exact point match.
    pub fn probe_page(&self, id: PageId, p: &Point, stats: &mut ExecStats) -> bool {
        self.pages[id.index()].probe(p, stats)
    }

    /// Approximate in-memory footprint of the store in bytes.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.pages.iter().map(|p| p.size_bytes()).sum::<usize>()
    }

    /// Splits the contents of `id` into `parts` new pages according to the
    /// provided partition function: point `p` goes to part `partition(p)`.
    /// The original page keeps part `0`; the remaining parts are appended as
    /// new pages. Returns the identifiers of all parts in order (including
    /// the reused original page). Empty parts still receive a page so the
    /// caller can map child leaves one-to-one.
    pub fn split_page(
        &mut self,
        id: PageId,
        parts: usize,
        mut partition: impl FnMut(&Point) -> usize,
    ) -> Vec<PageId> {
        assert!(parts >= 2, "splitting requires at least two parts");
        let points = Arc::make_mut(&mut self.pages[id.index()]).take_points();
        let mut buckets: Vec<Vec<Point>> = vec![Vec::new(); parts];
        for p in points {
            let part = partition(&p).min(parts - 1);
            buckets[part].push(p);
        }
        let mut ids = Vec::with_capacity(parts);
        let mut buckets = buckets.into_iter();
        // Reuse the original page slot for the first bucket.
        let first = buckets.next().expect("at least two parts requested");
        let original = Arc::make_mut(&mut self.pages[id.index()]);
        for p in first {
            original.push(p);
        }
        ids.push(id);
        for bucket in buckets {
            ids.push(self.allocate(bucket));
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_grid() -> (PageStore, Vec<PageId>) {
        let mut store = PageStore::new(4);
        let mut ids = Vec::new();
        for chunk in 0..3 {
            let points: Vec<Point> = (0..4)
                .map(|i| Point::new(chunk as f64 * 0.3 + 0.01 * i as f64, 0.5))
                .collect();
            ids.push(store.allocate(points));
        }
        (store, ids)
    }

    #[test]
    fn allocation_is_sequential() {
        let (store, ids) = store_with_grid();
        assert_eq!(ids, vec![PageId(0), PageId(1), PageId(2)]);
        assert_eq!(store.page_count(), 3);
        assert_eq!(store.total_points(), 12);
        assert_eq!(store.leaf_capacity(), 4);
    }

    #[test]
    fn append_and_overflow_detection() {
        let (mut store, ids) = store_with_grid();
        assert!(!store.is_overflowing(ids[0]));
        store.append(ids[0], Point::new(0.02, 0.5));
        assert!(store.is_overflowing(ids[0]));
    }

    #[test]
    fn filter_and_probe_delegate_to_pages() {
        let (store, ids) = store_with_grid();
        let mut stats = ExecStats::default();
        let mut out = Vec::new();
        store.filter_page(
            ids[1],
            &Rect::from_coords(0.3, 0.0, 0.32, 1.0),
            &mut out,
            &mut stats,
        );
        assert_eq!(out.len(), 3);
        assert!(store.probe_page(ids[1], &Point::new(0.31, 0.5), &mut stats));
        assert!(!store.probe_page(ids[0], &Point::new(0.31, 0.5), &mut stats));
        assert_eq!(stats.pages_scanned, 3);
    }

    #[test]
    fn split_distributes_points_and_reuses_original() {
        let mut store = PageStore::new(4);
        let id = store.allocate(
            (0..8)
                .map(|i| Point::new(i as f64 / 8.0, 0.5))
                .collect::<Vec<_>>(),
        );
        let ids = store.split_page(id, 2, |p| usize::from(p.x >= 0.5));
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0], id);
        assert_eq!(store.page(ids[0]).len(), 4);
        assert_eq!(store.page(ids[1]).len(), 4);
        assert!(store.page(ids[0]).points().iter().all(|p| p.x < 0.5));
        assert!(store.page(ids[1]).points().iter().all(|p| p.x >= 0.5));
        assert_eq!(store.total_points(), 8);
    }

    #[test]
    fn split_creates_pages_for_empty_parts() {
        let mut store = PageStore::new(4);
        let id = store.allocate(vec![Point::new(0.1, 0.1); 3]);
        let ids = store.split_page(id, 4, |_| 0);
        assert_eq!(ids.len(), 4);
        assert_eq!(store.page(ids[0]).len(), 3);
        for &part in &ids[1..] {
            assert!(store.page(part).is_empty());
        }
    }

    #[test]
    fn size_reflects_contents() {
        let (store, _) = store_with_grid();
        let empty = PageStore::new(4);
        assert!(store.size_bytes() > empty.size_bytes());
    }

    #[test]
    fn clone_forks_share_pages_until_mutation() {
        let (mut store, ids) = store_with_grid();
        let fork = store.clone();
        for &id in &ids {
            assert!(store.shares_page_with(&fork, id));
        }
        store.append(ids[1], Point::new(0.35, 0.5));
        assert!(store.shares_page_with(&fork, ids[0]));
        assert!(!store.shares_page_with(&fork, ids[1]));
        assert!(store.shares_page_with(&fork, ids[2]));
        // The fork's view of the mutated page is unchanged.
        assert_eq!(fork.page(ids[1]).len(), 4);
        assert_eq!(store.page(ids[1]).len(), 5);
    }

    #[test]
    fn split_copies_only_the_split_page_in_a_fork() {
        let mut store = PageStore::new(4);
        let id = store.allocate(
            (0..8)
                .map(|i| Point::new(i as f64 / 8.0, 0.5))
                .collect::<Vec<_>>(),
        );
        let other = store.allocate(vec![Point::new(0.9, 0.9)]);
        let fork = store.clone();
        let parts = store.split_page(id, 2, |p| usize::from(p.x >= 0.5));
        assert!(!store.shares_page_with(&fork, id));
        assert!(store.shares_page_with(&fork, other));
        // The fork still sees the pre-split contents; the new page does not
        // exist in the fork at all.
        assert_eq!(fork.page(id).len(), 8);
        assert_eq!(fork.page_count(), 2);
        assert_eq!(store.page(parts[1]).len(), 4);
    }

    #[test]
    fn page_mut_unshares_before_mutating() {
        let (mut store, ids) = store_with_grid();
        let fork = store.clone();
        store.page_mut(ids[0]).push(Point::new(0.05, 0.5));
        assert!(!store.shares_page_with(&fork, ids[0]));
        assert_eq!(fork.page(ids[0]).len(), 4);
        assert_eq!(store.page(ids[0]).len(), 5);
    }

    #[test]
    fn shares_page_with_out_of_range_is_false() {
        let (store, _) = store_with_grid();
        let empty = PageStore::new(4);
        assert!(!store.shares_page_with(&empty, PageId(0)));
        assert!(!store.shares_page_with(&store.clone(), PageId(99)));
    }
}
