//! # wazi-storage
//!
//! The storage substrate shared by every spatial index in the WaZI
//! reproduction:
//!
//! * [`Page`] / [`PageStore`] — clustered data pages of capacity `L`
//!   (the leaf pages the Z-index scanning phase iterates over), with
//!   visitor-based scan primitives (`for_each_in`, `count_in`) so query
//!   execution can filter, count or stream in place without materializing
//!   intermediate vectors;
//! * [`ExecStats`], [`StatsSummary`], [`StatsCollector`] — the execution
//!   counters (bounding boxes checked, pages scanned, excess points,
//!   projection vs scan time) reported throughout the paper's evaluation.
//!
//! The counters double as the query engine's *fusion ledger*: fused batch
//! kernels charge per-query work to per-query [`ExecStats`] and shared
//! page visits to a batch-level record, and [`StatsCollector`] aggregates
//! per-shard stats from parallel sweep workers thread-safely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod page;
mod stats;
mod store;

pub use page::{Page, PageId};
pub use stats::{ExecStats, StatsCollector, StatsSummary};
pub use store::PageStore;
