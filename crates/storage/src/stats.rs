//! Execution statistics used throughout the evaluation.
//!
//! The paper reports several counters besides wall-clock latency: the number
//! of bounding boxes checked, pages scanned and excess points compared
//! (Figure 13), and a split of the query time into a *projection* phase
//! (search-structure traversal identifying candidate pages) and a *scan*
//! phase (filtering points from those pages) (Figure 9). Every index in this
//! workspace reports its work through [`ExecStats`] so the benchmark harness
//! can compare them uniformly.

use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Per-query (or per-operation) execution counters.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct ExecStats {
    /// Internal search-structure nodes visited during traversal.
    pub nodes_visited: u64,
    /// Leaf/page bounding boxes compared against the query rectangle.
    pub bbs_checked: u64,
    /// Pages whose points were scanned.
    pub pages_scanned: u64,
    /// Points compared against the query predicate.
    pub points_scanned: u64,
    /// Points returned in the result set.
    pub results: u64,
    /// Leaf-list hops skipped thanks to look-ahead pointers.
    pub leaves_skipped: u64,
    /// Time spent in the projection phase (identifying relevant pages).
    pub projection_ns: u64,
    /// Time spent in the scan phase (filtering points from pages).
    pub scan_ns: u64,
}

impl ExecStats {
    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = ExecStats::default();
    }

    /// Number of points compared that did not belong to the result set
    /// ("excess points" in Figure 13).
    pub fn excess_points(&self) -> u64 {
        self.points_scanned.saturating_sub(self.results)
    }

    /// Total recorded time across phases.
    pub fn total_ns(&self) -> u64 {
        self.projection_ns + self.scan_ns
    }

    /// Adds another stats record into this one (component-wise sum).
    pub fn merge(&mut self, other: &ExecStats) {
        self.nodes_visited += other.nodes_visited;
        self.bbs_checked += other.bbs_checked;
        self.pages_scanned += other.pages_scanned;
        self.points_scanned += other.points_scanned;
        self.results += other.results;
        self.leaves_skipped += other.leaves_skipped;
        self.projection_ns += other.projection_ns;
        self.scan_ns += other.scan_ns;
    }

    /// Records a projection-phase duration.
    pub fn add_projection(&mut self, d: Duration) {
        self.projection_ns += d.as_nanos() as u64;
    }

    /// Charges one fused scan-kernel run to the two phase counters of
    /// Figure 9: the accumulated page-visit time is scan-phase, the rest of
    /// the kernel (traversal, bounding-box checks, pointer hops) is
    /// projection-phase. Keeping the attribution rule here means every
    /// index's kernel splits phases identically.
    pub fn charge_kernel(&mut self, total_ns: u64, scan_ns: u64) {
        self.scan_ns += scan_ns;
        self.projection_ns += total_ns.saturating_sub(scan_ns);
    }

    /// Records a scan-phase duration.
    pub fn add_scan(&mut self, d: Duration) {
        self.scan_ns += d.as_nanos() as u64;
    }
}

/// Aggregated statistics over many operations, with per-counter means.
#[derive(Debug, Default, Clone, Copy)]
pub struct StatsSummary {
    /// Number of operations aggregated.
    pub operations: u64,
    /// Component-wise totals.
    pub totals: ExecStats,
}

impl StatsSummary {
    /// Adds one operation's stats.
    pub fn record(&mut self, stats: &ExecStats) {
        self.operations += 1;
        self.totals.merge(stats);
    }

    /// Mean of a counter extracted by `f` over the recorded operations.
    pub fn mean_of(&self, f: impl Fn(&ExecStats) -> u64) -> f64 {
        if self.operations == 0 {
            return 0.0;
        }
        f(&self.totals) as f64 / self.operations as f64
    }

    /// Mean total latency (projection + scan) in nanoseconds.
    pub fn mean_latency_ns(&self) -> f64 {
        self.mean_of(|s| s.total_ns())
    }

    /// Mean projection-phase latency in nanoseconds.
    pub fn mean_projection_ns(&self) -> f64 {
        self.mean_of(|s| s.projection_ns)
    }

    /// Mean scan-phase latency in nanoseconds.
    pub fn mean_scan_ns(&self) -> f64 {
        self.mean_of(|s| s.scan_ns)
    }

    /// Mean number of result points per operation.
    pub fn mean_results(&self) -> f64 {
        self.mean_of(|s| s.results)
    }
}

/// A thread-safe collector for aggregating statistics produced by parallel
/// benchmark workers.
#[derive(Debug, Default, Clone)]
pub struct StatsCollector {
    inner: Arc<Mutex<StatsSummary>>,
}

impl StatsCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one operation's stats.
    pub fn record(&self, stats: &ExecStats) {
        self.inner
            .lock()
            .expect("stats mutex poisoned")
            .record(stats);
    }

    /// Snapshot of the aggregated summary.
    pub fn summary(&self) -> StatsSummary {
        *self.inner.lock().expect("stats mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_excess() {
        let mut a = ExecStats {
            points_scanned: 100,
            results: 30,
            bbs_checked: 5,
            ..Default::default()
        };
        let b = ExecStats {
            points_scanned: 50,
            results: 20,
            pages_scanned: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.points_scanned, 150);
        assert_eq!(a.results, 50);
        assert_eq!(a.excess_points(), 100);
        assert_eq!(a.bbs_checked, 5);
        assert_eq!(a.pages_scanned, 2);
    }

    #[test]
    fn excess_never_underflows() {
        let s = ExecStats {
            points_scanned: 5,
            results: 10,
            ..Default::default()
        };
        assert_eq!(s.excess_points(), 0);
    }

    #[test]
    fn timing_phases_accumulate() {
        let mut s = ExecStats::default();
        s.add_projection(Duration::from_nanos(500));
        s.add_scan(Duration::from_nanos(1_500));
        s.add_scan(Duration::from_nanos(100));
        assert_eq!(s.projection_ns, 500);
        assert_eq!(s.scan_ns, 1_600);
        assert_eq!(s.total_ns(), 2_100);
        s.reset();
        assert_eq!(s.total_ns(), 0);
    }

    #[test]
    fn summary_means() {
        let mut summary = StatsSummary::default();
        assert_eq!(summary.mean_latency_ns(), 0.0);
        for i in 1..=4u64 {
            let s = ExecStats {
                projection_ns: 100 * i,
                scan_ns: 900 * i,
                results: i,
                ..Default::default()
            };
            summary.record(&s);
        }
        assert_eq!(summary.operations, 4);
        assert_eq!(summary.mean_latency_ns(), 2_500.0);
        assert_eq!(summary.mean_projection_ns(), 250.0);
        assert_eq!(summary.mean_scan_ns(), 2_250.0);
        assert_eq!(summary.mean_results(), 2.5);
    }

    #[test]
    fn collector_is_shareable_across_threads() {
        let collector = StatsCollector::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = collector.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        c.record(&ExecStats {
                            results: 1,
                            ..Default::default()
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker thread must not panic");
        }
        let summary = collector.summary();
        assert_eq!(summary.operations, 400);
        assert_eq!(summary.totals.results, 400);
    }
}
