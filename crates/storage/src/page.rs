//! Data pages: the unit of storage scanned during range-query filtering.

use crate::stats::ExecStats;
use wazi_geom::{Point, Rect};

/// Identifier of a page inside a [`crate::PageStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Index into the owning store's page vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// A clustered data page holding at most the leaf capacity `L` points
/// (Section 3: "leaf nodes contain ... a pointer to a page with at most L
/// elements"; points within a page are stored in arrival order, i.e. no
/// intra-page ordering is assumed).
#[derive(Debug, Clone)]
pub struct Page {
    id: PageId,
    points: Vec<Point>,
    bbox: Rect,
}

impl Page {
    /// Creates a page from its identifier and points.
    pub fn new(id: PageId, points: Vec<Point>) -> Self {
        let bbox = Rect::bounding(&points);
        Self { id, points, bbox }
    }

    /// The page identifier.
    #[inline]
    pub fn id(&self) -> PageId {
        self.id
    }

    /// Number of points stored in the page.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the page holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points stored in the page.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Tight bounding box of the stored points ([`Rect::EMPTY`] when empty).
    #[inline]
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// Appends a point, updating the bounding box. Returns the new length.
    pub fn push(&mut self, p: Point) -> usize {
        self.bbox.expand(&p);
        self.points.push(p);
        self.points.len()
    }

    /// Removes the first occurrence of a point equal to `p`. Returns whether
    /// a point was removed. The bounding box is recomputed only on success.
    pub fn remove(&mut self, p: &Point) -> bool {
        if let Some(pos) = self.points.iter().position(|q| q == p) {
            self.points.swap_remove(pos);
            self.bbox = Rect::bounding(&self.points);
            true
        } else {
            false
        }
    }

    /// Drains all points out of the page (used when splitting leaves),
    /// leaving it empty.
    pub fn take_points(&mut self) -> Vec<Point> {
        self.bbox = Rect::EMPTY;
        std::mem::take(&mut self.points)
    }

    /// Visitor-based scanning-phase filter: invokes `visit` for every stored
    /// point falling inside `query`, recording one page scan plus one point
    /// comparison per stored point in `stats`. This is the primitive every
    /// query path funnels through — nothing is materialized here, so callers
    /// choose between counting, collecting or streaming.
    #[inline]
    pub fn for_each_in(&self, query: &Rect, stats: &mut ExecStats, mut visit: impl FnMut(&Point)) {
        stats.pages_scanned += 1;
        stats.points_scanned += self.points.len() as u64;
        for p in &self.points {
            if query.contains(p) {
                visit(p);
            }
        }
    }

    /// Counting scan: returns the number of stored points inside `query`
    /// without materializing them, charging the same counters as
    /// [`Page::for_each_in`].
    #[inline]
    pub fn count_in(&self, query: &Rect, stats: &mut ExecStats) -> u64 {
        stats.pages_scanned += 1;
        stats.points_scanned += self.points.len() as u64;
        let mut count = 0u64;
        for p in &self.points {
            // Branch-free accumulation keeps the counting fast path free of
            // per-match work.
            count += u64::from(query.contains(p));
        }
        count
    }

    /// Materializing filter: appends the points falling inside `query` to
    /// `out`. A thin wrapper over [`Page::for_each_in`] kept for callers
    /// that genuinely need the result set.
    pub fn filter_into(&self, query: &Rect, out: &mut Vec<Point>, stats: &mut ExecStats) {
        self.for_each_in(query, stats, |p| out.push(*p));
    }

    /// Point-query probe: returns `true` when a point equal to `p` is stored
    /// in the page, recording the comparisons performed.
    pub fn probe(&self, p: &Point, stats: &mut ExecStats) -> bool {
        stats.pages_scanned += 1;
        self.probe_shared(p, stats)
    }

    /// [`Page::probe`] without the page-visit charge: the fused point-batch
    /// kernels fetch a page once per probe *group* (charged to the batch's
    /// shared stats) while every probe still pays its own comparisons —
    /// this is the one definition of those comparison charges, so the
    /// fused and sequential paths cannot drift apart.
    pub fn probe_shared(&self, p: &Point, stats: &mut ExecStats) -> bool {
        for (i, q) in self.points.iter().enumerate() {
            if q == p {
                stats.points_scanned += i as u64 + 1;
                return true;
            }
        }
        stats.points_scanned += self.points.len() as u64;
        false
    }

    /// Approximate in-memory footprint of the page in bytes.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.points.capacity() * std::mem::size_of::<Point>()
    }

    /// Serialises the page to a compact binary representation
    /// (`id, len, [x, y] * len, checksum`, all little-endian), the on-disk
    /// page format of the simulated clustered storage. The trailing 8 bytes
    /// are an FNV-1a-64 checksum over everything before them, so torn or
    /// corrupted pages are detected at decode time rather than silently
    /// reinterpreted.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + 16 * self.points.len());
        buf.extend_from_slice(&self.id.0.to_le_bytes());
        buf.extend_from_slice(&(self.points.len() as u32).to_le_bytes());
        for p in &self.points {
            buf.extend_from_slice(&p.x.to_le_bytes());
            buf.extend_from_slice(&p.y.to_le_bytes());
        }
        let checksum = fnv1a64(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        buf
    }

    /// Decodes a page previously produced by [`Page::to_bytes`].
    ///
    /// Returns `None` when the buffer is truncated, extended, bit-flipped or
    /// otherwise malformed: the length must be exactly `8 + 16·len + 8` and
    /// the trailing checksum must match. Never panics.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let header: [u8; 4] = bytes.get(0..4)?.try_into().ok()?;
        let id = PageId(u32::from_le_bytes(header));
        let len_bytes: [u8; 4] = bytes.get(4..8)?.try_into().ok()?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        let expected = 8usize.checked_add(len.checked_mul(16)?)?.checked_add(8)?;
        if bytes.len() != expected {
            return None;
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored: [u8; 8] = tail.try_into().ok()?;
        if fnv1a64(body) != u64::from_le_bytes(stored) {
            return None;
        }
        let mut points = Vec::with_capacity(len);
        for chunk in body[8..].chunks_exact(16) {
            let x = f64::from_le_bytes(chunk[0..8].try_into().ok()?);
            let y = f64::from_le_bytes(chunk[8..16].try_into().ok()?);
            points.push(Point::new(x, y));
        }
        Some(Self::new(id, points))
    }
}

/// FNV-1a 64-bit checksum guarding the binary page format (the same
/// integrity primitive the wire protocol uses for frames).
fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_page() -> Page {
        Page::new(
            PageId(3),
            vec![
                Point::new(0.1, 0.1),
                Point::new(0.5, 0.6),
                Point::new(0.9, 0.2),
            ],
        )
    }

    #[test]
    fn bbox_tracks_contents() {
        let mut page = sample_page();
        assert_eq!(page.bbox(), Rect::from_coords(0.1, 0.1, 0.9, 0.6));
        page.push(Point::new(0.0, 1.0));
        assert_eq!(page.bbox(), Rect::from_coords(0.0, 0.1, 0.9, 1.0));
        assert!(page.remove(&Point::new(0.0, 1.0)));
        assert_eq!(page.bbox(), Rect::from_coords(0.1, 0.1, 0.9, 0.6));
        assert!(!page.remove(&Point::new(7.0, 7.0)));
    }

    #[test]
    fn filter_counts_all_points_and_returns_matches() {
        let page = sample_page();
        let mut stats = ExecStats::default();
        let mut out = Vec::new();
        page.filter_into(&Rect::from_coords(0.0, 0.0, 0.6, 0.7), &mut out, &mut stats);
        assert_eq!(out, vec![Point::new(0.1, 0.1), Point::new(0.5, 0.6)]);
        assert_eq!(stats.pages_scanned, 1);
        assert_eq!(stats.points_scanned, 3);
    }

    #[test]
    fn count_in_agrees_with_filter_and_charges_the_same_work() {
        let page = sample_page();
        let query = Rect::from_coords(0.0, 0.0, 0.6, 0.7);
        let mut filter_stats = ExecStats::default();
        let mut out = Vec::new();
        page.filter_into(&query, &mut out, &mut filter_stats);
        let mut count_stats = ExecStats::default();
        let count = page.count_in(&query, &mut count_stats);
        assert_eq!(count, out.len() as u64);
        assert_eq!(filter_stats, count_stats);
    }

    #[test]
    fn for_each_visits_exactly_the_matches() {
        let page = sample_page();
        let mut stats = ExecStats::default();
        let mut seen = Vec::new();
        page.for_each_in(&Rect::from_coords(0.4, 0.0, 1.0, 1.0), &mut stats, |p| {
            seen.push(*p)
        });
        assert_eq!(seen, vec![Point::new(0.5, 0.6), Point::new(0.9, 0.2)]);
        assert_eq!(stats.points_scanned, 3);
    }

    #[test]
    fn probe_finds_existing_points_only() {
        let page = sample_page();
        let mut stats = ExecStats::default();
        assert!(page.probe(&Point::new(0.5, 0.6), &mut stats));
        assert!(!page.probe(&Point::new(0.5, 0.61), &mut stats));
        assert_eq!(stats.pages_scanned, 2);
        assert!(stats.points_scanned >= 3);
    }

    #[test]
    fn take_points_empties_the_page() {
        let mut page = sample_page();
        let pts = page.take_points();
        assert_eq!(pts.len(), 3);
        assert!(page.is_empty());
        assert!(page.bbox().is_empty());
    }

    #[test]
    fn binary_round_trip() {
        let page = sample_page();
        let bytes = page.to_bytes();
        let decoded = Page::from_bytes(&bytes).expect("decoding must succeed");
        assert_eq!(decoded.id(), page.id());
        assert_eq!(decoded.points(), page.points());
        assert_eq!(decoded.bbox(), page.bbox());
    }

    #[test]
    fn truncated_bytes_are_rejected() {
        let page = sample_page();
        let bytes = page.to_bytes();
        for cut in 0..bytes.len() {
            assert!(Page::from_bytes(&bytes[..cut]).is_none());
        }
        assert!(Page::from_bytes(&[1, 2, 3]).is_none());
    }

    #[test]
    fn extended_bytes_are_rejected() {
        let page = sample_page();
        let mut bytes = page.to_bytes();
        bytes.push(0);
        assert!(Page::from_bytes(&bytes).is_none());
    }

    #[test]
    fn bit_flips_are_rejected() {
        let page = sample_page();
        let bytes = page.to_bytes();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                assert!(
                    Page::from_bytes(&corrupt).is_none(),
                    "flip of byte {i} bit {bit} was not detected"
                );
            }
        }
    }

    #[test]
    fn empty_page_round_trips() {
        let page = Page::new(PageId(0), Vec::new());
        let decoded = Page::from_bytes(&page.to_bytes()).expect("empty page decodes");
        assert!(decoded.is_empty());
        assert_eq!(decoded.id(), PageId(0));
    }

    #[test]
    fn size_accounts_for_points() {
        let page = sample_page();
        assert!(page.size_bytes() >= 3 * std::mem::size_of::<Point>());
    }
}
