//! Data pages: the unit of storage scanned during range-query filtering.

use crate::stats::ExecStats;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use wazi_geom::{Point, Rect};

/// Identifier of a page inside a [`crate::PageStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageId(pub u32);

impl PageId {
    /// Index into the owning store's page vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// A clustered data page holding at most the leaf capacity `L` points
/// (Section 3: "leaf nodes contain ... a pointer to a page with at most L
/// elements"; points within a page are stored in arrival order, i.e. no
/// intra-page ordering is assumed).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Page {
    id: PageId,
    points: Vec<Point>,
    bbox: Rect,
}

impl Page {
    /// Creates a page from its identifier and points.
    pub fn new(id: PageId, points: Vec<Point>) -> Self {
        let bbox = Rect::bounding(&points);
        Self { id, points, bbox }
    }

    /// The page identifier.
    #[inline]
    pub fn id(&self) -> PageId {
        self.id
    }

    /// Number of points stored in the page.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the page holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points stored in the page.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Tight bounding box of the stored points ([`Rect::EMPTY`] when empty).
    #[inline]
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// Appends a point, updating the bounding box. Returns the new length.
    pub fn push(&mut self, p: Point) -> usize {
        self.bbox.expand(&p);
        self.points.push(p);
        self.points.len()
    }

    /// Removes the first occurrence of a point equal to `p`. Returns whether
    /// a point was removed. The bounding box is recomputed only on success.
    pub fn remove(&mut self, p: &Point) -> bool {
        if let Some(pos) = self.points.iter().position(|q| q == p) {
            self.points.swap_remove(pos);
            self.bbox = Rect::bounding(&self.points);
            true
        } else {
            false
        }
    }

    /// Drains all points out of the page (used when splitting leaves),
    /// leaving it empty.
    pub fn take_points(&mut self) -> Vec<Point> {
        self.bbox = Rect::EMPTY;
        std::mem::take(&mut self.points)
    }

    /// Scanning-phase filter: appends the points falling inside `query` to
    /// `out` and records one page scan plus one point comparison per stored
    /// point in `stats`.
    pub fn filter_into(&self, query: &Rect, out: &mut Vec<Point>, stats: &mut ExecStats) {
        stats.pages_scanned += 1;
        stats.points_scanned += self.points.len() as u64;
        for p in &self.points {
            if query.contains(p) {
                out.push(*p);
            }
        }
    }

    /// Point-query probe: returns `true` when a point equal to `p` is stored
    /// in the page, recording the comparisons performed.
    pub fn probe(&self, p: &Point, stats: &mut ExecStats) -> bool {
        stats.pages_scanned += 1;
        for (i, q) in self.points.iter().enumerate() {
            if q == p {
                stats.points_scanned += i as u64 + 1;
                return true;
            }
        }
        stats.points_scanned += self.points.len() as u64;
        false
    }

    /// Approximate in-memory footprint of the page in bytes.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.points.capacity() * std::mem::size_of::<Point>()
    }

    /// Serialises the page to a compact binary representation
    /// (`id, len, [x, y] * len`), the on-disk page format of the simulated
    /// clustered storage.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + 16 * self.points.len());
        buf.put_u32_le(self.id.0);
        buf.put_u32_le(self.points.len() as u32);
        for p in &self.points {
            buf.put_f64_le(p.x);
            buf.put_f64_le(p.y);
        }
        buf.freeze()
    }

    /// Decodes a page previously produced by [`Page::to_bytes`].
    ///
    /// Returns `None` when the buffer is truncated or malformed.
    pub fn from_bytes(mut bytes: Bytes) -> Option<Self> {
        if bytes.remaining() < 8 {
            return None;
        }
        let id = PageId(bytes.get_u32_le());
        let len = bytes.get_u32_le() as usize;
        if bytes.remaining() < len * 16 {
            return None;
        }
        let mut points = Vec::with_capacity(len);
        for _ in 0..len {
            let x = bytes.get_f64_le();
            let y = bytes.get_f64_le();
            points.push(Point::new(x, y));
        }
        Some(Self::new(id, points))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_page() -> Page {
        Page::new(
            PageId(3),
            vec![
                Point::new(0.1, 0.1),
                Point::new(0.5, 0.6),
                Point::new(0.9, 0.2),
            ],
        )
    }

    #[test]
    fn bbox_tracks_contents() {
        let mut page = sample_page();
        assert_eq!(page.bbox(), Rect::from_coords(0.1, 0.1, 0.9, 0.6));
        page.push(Point::new(0.0, 1.0));
        assert_eq!(page.bbox(), Rect::from_coords(0.0, 0.1, 0.9, 1.0));
        assert!(page.remove(&Point::new(0.0, 1.0)));
        assert_eq!(page.bbox(), Rect::from_coords(0.1, 0.1, 0.9, 0.6));
        assert!(!page.remove(&Point::new(7.0, 7.0)));
    }

    #[test]
    fn filter_counts_all_points_and_returns_matches() {
        let page = sample_page();
        let mut stats = ExecStats::default();
        let mut out = Vec::new();
        page.filter_into(&Rect::from_coords(0.0, 0.0, 0.6, 0.7), &mut out, &mut stats);
        assert_eq!(out, vec![Point::new(0.1, 0.1), Point::new(0.5, 0.6)]);
        assert_eq!(stats.pages_scanned, 1);
        assert_eq!(stats.points_scanned, 3);
    }

    #[test]
    fn probe_finds_existing_points_only() {
        let page = sample_page();
        let mut stats = ExecStats::default();
        assert!(page.probe(&Point::new(0.5, 0.6), &mut stats));
        assert!(!page.probe(&Point::new(0.5, 0.61), &mut stats));
        assert_eq!(stats.pages_scanned, 2);
        assert!(stats.points_scanned >= 3);
    }

    #[test]
    fn take_points_empties_the_page() {
        let mut page = sample_page();
        let pts = page.take_points();
        assert_eq!(pts.len(), 3);
        assert!(page.is_empty());
        assert!(page.bbox().is_empty());
    }

    #[test]
    fn binary_round_trip() {
        let page = sample_page();
        let bytes = page.to_bytes();
        let decoded = Page::from_bytes(bytes).expect("decoding must succeed");
        assert_eq!(decoded.id(), page.id());
        assert_eq!(decoded.points(), page.points());
        assert_eq!(decoded.bbox(), page.bbox());
    }

    #[test]
    fn truncated_bytes_are_rejected() {
        let page = sample_page();
        let bytes = page.to_bytes();
        let truncated = bytes.slice(0..bytes.len() - 1);
        assert!(Page::from_bytes(truncated).is_none());
        assert!(Page::from_bytes(Bytes::from_static(&[1, 2, 3])).is_none());
    }

    #[test]
    fn size_accounts_for_points() {
        let page = sample_page();
        assert!(page.size_bytes() >= 3 * std::mem::size_of::<Point>());
    }
}
