//! Minimal offline stand-in for the `rand` crate.
//!
//! Implements exactly the API surface the WaZI workspace uses: a seedable
//! generator ([`rngs::StdRng`]), the [`Rng`] extension methods `gen`,
//! `gen_range` and `gen_bool`, and [`seq::SliceRandom::partial_shuffle`].
//! The generator is SplitMix64: deterministic per seed and statistically
//! good enough for synthetic data generation and randomized tests, but its
//! streams differ from upstream `rand`.

/// Core interface of a random generator: an endless stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw stream.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Half-open ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        let v = self.start + (self.end - self.start) * unit;
        // Guard against rounding up to the exclusive bound.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the modulo bias
                // of the plain alternative is irrelevant here but this is
                // just as short.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == end {
                    return start;
                }
                (start..end + 1).sample_from(rng)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i32);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` uniformly (for `f64`: from `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Partially shuffles the slice so that the first `amount` elements
        /// are a uniform random sample; returns the shuffled prefix and the
        /// untouched remainder.
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);

        /// Fully shuffles the slice (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            for i in 0..amount {
                let j = rng.gen_range(i..self.len());
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            let n = self.len();
            self.partial_shuffle(rng, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range_and_cover_it() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        assert!(samples.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let f = rng.gen_range(2.5f64..3.5);
            assert!((2.5..3.5).contains(&f));
            let i = rng.gen_range(10usize..20);
            assert!((10..20).contains(&i));
        }
        // Every value of a small range appears.
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn partial_shuffle_keeps_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut data: Vec<u32> = (0..50).collect();
        let (sample, rest) = data.partial_shuffle(&mut rng, 10);
        assert_eq!(sample.len(), 10);
        assert_eq!(rest.len(), 40);
        let mut all: Vec<u32> = data.clone();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }
}
