//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the surface used by `crates/bench/benches`: benchmark groups,
//! `bench_with_input` / `bench_function`, `Bencher::iter`, throughput and
//! timing knobs, and the `criterion_group!` / `criterion_main!` macros.
//! Each benchmark runs its closure for a bounded wall-clock budget and
//! prints the mean time per iteration; no statistical analysis is done.

use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Throughput annotation (recorded, displayed alongside the mean).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Runs benchmark closures and accumulates timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.criterion.sample_size = samples.max(1);
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.criterion.measurement_time = duration;
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        self.criterion
            .run_one(&label, self.throughput, |b| routine(b, input));
        self
    }

    /// Benchmarks `routine` without an input value.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: R,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let label = format!("{}/{}", self.name, id.label);
        self.criterion
            .run_one(&label, self.throughput, |b| routine(b));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

impl From<&str> for BenchmarkId {
    fn from(value: &str) -> Self {
        BenchmarkId {
            label: value.to_string(),
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut routine: R,
    ) -> &mut Self {
        self.run_one(name, None, |b| routine(b));
        self
    }

    fn run_one(
        &mut self,
        label: &str,
        throughput: Option<Throughput>,
        mut routine: impl FnMut(&mut Bencher),
    ) {
        // Calibration pass: one iteration to size the measured run.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let budget = self.measurement_time.max(Duration::from_millis(10));
        let iters = (budget.as_nanos() / per_iter.as_nanos())
            .clamp(1, 1_000_000 * self.sample_size as u128) as u64;

        let mut measured = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut measured);
        let mean_ns = measured.elapsed.as_nanos() as f64 / measured.iters as f64;
        match throughput {
            Some(Throughput::Elements(n)) => println!(
                "bench {label}: {mean_ns:.0} ns/iter ({:.2} Melem/s)",
                n as f64 / mean_ns * 1e3
            ),
            Some(Throughput::Bytes(n)) => println!(
                "bench {label}: {mean_ns:.0} ns/iter ({:.2} MB/s)",
                n as f64 / mean_ns * 1e3
            ),
            None => println!("bench {label}: {mean_ns:.0} ns/iter"),
        }
    }
}

/// Re-export used by `criterion_main!`-generated code.
pub fn run_groups(groups: &[fn()]) {
    for group in groups {
        group();
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_the_closure() {
        let mut c = Criterion {
            sample_size: 2,
            measurement_time: Duration::from_millis(10),
        };
        let mut calls = 0u64;
        {
            let mut group = c.benchmark_group("demo");
            group
                .sample_size(2)
                .measurement_time(Duration::from_millis(10));
            group.throughput(Throughput::Elements(1));
            group.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &x| {
                b.iter(|| {
                    calls += 1;
                    x * 2
                })
            });
            group.finish();
        }
        assert!(calls > 0, "the routine must have been driven");
    }
}
