//! Shared R-tree machinery used by the STR and CUR baselines.
//!
//! Both baselines are *packed* R-trees: the leaf level is produced by a
//! bulk-loading algorithm (plain Sort-Tile-Recursive for STR, query-weighted
//! tiling for CUR) and the upper levels group consecutive packed leaves.
//! This module holds the common node structure, query processing and a
//! simple insert path (descend by least area enlargement, split overflowing
//! leaves), so the two baselines only differ in how the leaf pages are
//! packed.

use wazi_core::{
    BatchProjection, PointBatchKernel, PointBatchResponse, RangeBatchKernel, RangeBatchOutput,
    RangeBatchRequest, RangeBatchResponse, ShardBounds, ShardedRangeBatchKernel, SweepInterval,
};
use wazi_geom::{Point, Rect};
use wazi_storage::{ExecStats, PageId, PageStore};

/// Maximum number of children of an internal R-tree node.
pub(crate) const NODE_FANOUT: usize = 16;

/// A node of the packed R-tree.
#[derive(Debug, Clone)]
pub(crate) enum RNode {
    /// An internal node: bounding box plus child node indices.
    Internal { mbr: Rect, children: Vec<u32> },
    /// A leaf node: bounding box plus the backing page.
    Leaf { mbr: Rect, page: PageId },
}

impl RNode {
    pub(crate) fn mbr(&self) -> Rect {
        match self {
            RNode::Internal { mbr, .. } | RNode::Leaf { mbr, .. } => *mbr,
        }
    }
}

/// A packed R-tree over a clustered page store.
#[derive(Debug, Clone)]
pub(crate) struct PackedRTree {
    pub(crate) nodes: Vec<RNode>,
    pub(crate) root: u32,
    pub(crate) store: PageStore,
    pub(crate) len: usize,
}

impl PackedRTree {
    /// Builds the tree bottom-up from already-packed leaf pages (one leaf
    /// node per page, in packing order).
    pub(crate) fn from_packed_pages(store: PageStore, len: usize) -> Self {
        let mut nodes: Vec<RNode> = store
            .pages()
            .map(|page| RNode::Leaf {
                mbr: page.bbox(),
                page: page.id(),
            })
            .collect();
        if nodes.is_empty() {
            // An empty tree still needs a root so queries have somewhere to
            // start; use an empty leaf over an empty page.
            let mut store = store;
            let page = store.allocate(Vec::new());
            return Self {
                nodes: vec![RNode::Leaf {
                    mbr: Rect::EMPTY,
                    page,
                }],
                root: 0,
                store,
                len,
            };
        }

        // Group consecutive nodes level by level until a single root remains.
        let mut level: Vec<u32> = (0..nodes.len() as u32).collect();
        while level.len() > 1 {
            let mut next_level = Vec::with_capacity(level.len() / NODE_FANOUT + 1);
            for chunk in level.chunks(NODE_FANOUT) {
                let mbr = chunk
                    .iter()
                    .fold(Rect::EMPTY, |acc, &i| acc.union(&nodes[i as usize].mbr()));
                let index = nodes.len() as u32;
                nodes.push(RNode::Internal {
                    mbr,
                    children: chunk.to_vec(),
                });
                next_level.push(index);
            }
            level = next_level;
        }
        let root = level[0];
        Self {
            nodes,
            root,
            store,
            len,
        }
    }

    /// The bounding rectangle of everything stored in the tree.
    pub(crate) fn root_mbr(&self) -> Rect {
        self.nodes[self.root as usize].mbr()
    }

    /// The range-scan kernel shared by every execution mode: traverses the
    /// tree, pruning by bounding box, and hands each overlapping leaf's page
    /// id to `on_page` as it is discovered — no page list is materialized.
    ///
    /// Timing: page visits are accumulated as scan-phase time, the tree
    /// traversal as projection-phase time (the split of Figure 9).
    fn scan_range(
        &self,
        query: &Rect,
        stats: &mut ExecStats,
        mut on_page: impl FnMut(&PageStore, PageId, &mut ExecStats),
    ) {
        let kernel_start = std::time::Instant::now();
        let mut scan_ns = 0u64;
        let mut stack = vec![self.root];
        while let Some(index) = stack.pop() {
            match &self.nodes[index as usize] {
                RNode::Internal { children, .. } => {
                    stats.nodes_visited += 1;
                    for &child in children {
                        stats.bbs_checked += 1;
                        if self.nodes[child as usize].mbr().overlaps(query) {
                            stack.push(child);
                        }
                    }
                }
                RNode::Leaf { page, .. } => {
                    let scan_start = std::time::Instant::now();
                    on_page(&self.store, *page, stats);
                    scan_ns += scan_start.elapsed().as_nanos() as u64;
                }
            }
        }
        stats.charge_kernel(kernel_start.elapsed().as_nanos() as u64, scan_ns);
    }

    /// Materializing range query.
    pub(crate) fn range_query(&self, query: &Rect, stats: &mut ExecStats) -> Vec<Point> {
        let mut result = Vec::new();
        self.scan_range(query, stats, |store, page, stats| {
            store.filter_page(page, query, &mut result, stats);
        });
        result
    }

    /// Counting range query: result-set size without materialization.
    pub(crate) fn range_count(&self, query: &Rect, stats: &mut ExecStats) -> u64 {
        let mut count = 0u64;
        self.scan_range(query, stats, |store, page, stats| {
            count += store.count_in(page, query, stats);
        });
        count
    }

    /// Streaming range query: `visit` is invoked for every matching point.
    pub(crate) fn range_for_each(
        &self,
        query: &Rect,
        stats: &mut ExecStats,
        visit: &mut dyn FnMut(&Point),
    ) -> u64 {
        let mut matched = 0u64;
        self.scan_range(query, stats, |store, page, stats| {
            store.for_each_in(page, query, stats, |p| {
                matched += 1;
                visit(p);
            });
        });
        matched
    }

    /// Point query: descend into every child whose bounding box contains the
    /// point (R-tree leaves may overlap after inserts).
    pub(crate) fn point_query(&self, p: &Point, stats: &mut ExecStats) -> bool {
        let mut stack = vec![self.root];
        while let Some(index) = stack.pop() {
            match &self.nodes[index as usize] {
                RNode::Internal { children, .. } => {
                    stats.nodes_visited += 1;
                    for &child in children {
                        stats.bbs_checked += 1;
                        if self.nodes[child as usize].mbr().contains(p) {
                            stack.push(child);
                        }
                    }
                }
                RNode::Leaf { page, .. } => {
                    if self.store.probe_page(*page, p, stats) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Inserts a point: descend by least area enlargement, append to the
    /// chosen leaf's page and split the leaf when it overflows.
    pub(crate) fn insert(&mut self, p: Point) {
        // Descend, remembering the path for MBR updates.
        let mut path = Vec::new();
        let mut current = self.root;
        while let RNode::Internal { children, .. } = &self.nodes[current as usize] {
            path.push(current);
            current = children
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let ea = enlargement(&self.nodes[a as usize].mbr(), &p);
                    let eb = enlargement(&self.nodes[b as usize].mbr(), &p);
                    ea.total_cmp(&eb)
                })
                .expect("internal nodes always have children");
        }
        path.push(current);

        // Append the point to the leaf page and grow MBRs along the path.
        let leaf_page = match &self.nodes[current as usize] {
            RNode::Leaf { page, .. } => *page,
            RNode::Internal { .. } => unreachable!("descent ends at a leaf"),
        };
        self.store.append(leaf_page, p);
        self.len += 1;
        for &index in &path {
            match &mut self.nodes[index as usize] {
                RNode::Internal { mbr, .. } | RNode::Leaf { mbr, .. } => mbr.expand(&p),
            }
        }

        if self.store.is_overflowing(leaf_page) {
            self.split_leaf(current, &path);
        }
    }

    /// Splits an overflowing leaf into two along the longer axis of its
    /// bounding box and attaches the new leaf to the parent (or a new root).
    fn split_leaf(&mut self, leaf_index: u32, path: &[u32]) {
        let (mbr, page) = match &self.nodes[leaf_index as usize] {
            RNode::Leaf { mbr, page } => (*mbr, *page),
            RNode::Internal { .. } => return,
        };
        let split_on_x = mbr.width() >= mbr.height();
        let points = self.store.page(page).points().to_vec();
        let mut coords: Vec<f64> = points
            .iter()
            .map(|q| if split_on_x { q.x } else { q.y })
            .collect();
        coords.sort_unstable_by(f64::total_cmp);
        let median = coords[coords.len() / 2];
        let pages = self.store.split_page(page, 2, |q| {
            usize::from(if split_on_x {
                q.x > median
            } else {
                q.y > median
            })
        });
        // Refresh the original leaf and create the sibling.
        let first_bbox = self.store.page(pages[0]).bbox();
        let second_bbox = self.store.page(pages[1]).bbox();
        self.nodes[leaf_index as usize] = RNode::Leaf {
            mbr: first_bbox,
            page: pages[0],
        };
        let sibling = self.nodes.len() as u32;
        self.nodes.push(RNode::Leaf {
            mbr: second_bbox,
            page: pages[1],
        });

        // Attach the sibling to the parent. Packed parents may grow beyond
        // the packing fanout after many inserts; that trades some balance for
        // simplicity, which matches the role of these baselines (bulk-loaded
        // structures receiving a moderate volume of inserts in Figure 11).
        let parent = path.iter().rev().nth(1).copied();
        match parent {
            Some(parent_index) => {
                if let RNode::Internal { children, .. } = &mut self.nodes[parent_index as usize] {
                    children.push(sibling);
                }
            }
            None => {
                // The split leaf was the root: grow a new root above the two
                // halves.
                let mbr = self.nodes[leaf_index as usize]
                    .mbr()
                    .union(&self.nodes[sibling as usize].mbr());
                let new_root = self.nodes.len() as u32;
                self.nodes.push(RNode::Internal {
                    mbr,
                    children: vec![leaf_index, sibling],
                });
                self.root = new_root;
            }
        }
    }

    /// Approximate structure size in bytes (excluding the clustered data
    /// pages, consistent with the other indexes).
    pub(crate) fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .nodes
                .iter()
                .map(|n| {
                    std::mem::size_of::<RNode>()
                        + match n {
                            RNode::Internal { children, .. } => {
                                children.capacity() * std::mem::size_of::<u32>()
                            }
                            RNode::Leaf { .. } => 0,
                        }
                })
                .sum::<usize>()
    }

    /// Height of the tree (leaf-only tree has height 1).
    pub(crate) fn height(&self) -> usize {
        fn depth(tree: &PackedRTree, node: u32) -> usize {
            match &tree.nodes[node as usize] {
                RNode::Leaf { .. } => 1,
                RNode::Internal { children, .. } => {
                    1 + children.iter().map(|&c| depth(tree, c)).max().unwrap_or(0)
                }
            }
        }
        depth(self, self.root)
    }
}

impl PackedRTree {
    /// The fused batch descent shared by [`RangeBatchKernel::run_range_batch`]
    /// and [`ShardedRangeBatchKernel::sweep_shard`]: one traversal of the
    /// tree carrying an *active-query set* per node. A node overlapped by
    /// `k` of the batch's queries is fetched once, not `k` times; per-query
    /// pruning replicates the sequential [`PackedRTree::scan_range`] stack
    /// discipline exactly (children pushed in order, popped LIFO), so every
    /// query's node visits, bounding-box checks, point comparisons and
    /// result order are identical to its solo walk — only the physical page
    /// visit moves to the shared stats, charged once per reached leaf.
    fn descend_batch(
        &self,
        requests: &[RangeBatchRequest],
        owned: Vec<usize>,
        response: &mut RangeBatchResponse,
    ) {
        if owned.is_empty() {
            return;
        }
        let kernel_start = std::time::Instant::now();
        let mut scan_ns = 0u64;
        let mut stack: Vec<(u32, Vec<usize>)> = vec![(self.root, owned)];
        while let Some((index, active)) = stack.pop() {
            match &self.nodes[index as usize] {
                RNode::Internal { children, .. } => {
                    for &qi in &active {
                        response.per_query[qi].nodes_visited += 1;
                    }
                    for &child in children {
                        let child_mbr = self.nodes[child as usize].mbr();
                        let mut child_active = Vec::new();
                        for &qi in &active {
                            response.per_query[qi].bbs_checked += 1;
                            if child_mbr.overlaps(&requests[qi].rect) {
                                child_active.push(qi);
                            }
                        }
                        if !child_active.is_empty() {
                            stack.push((child, child_active));
                        }
                    }
                }
                RNode::Leaf { page, .. } => {
                    // One page fetch on behalf of every query that reached
                    // the leaf; point comparisons stay attributed per query.
                    let scan_start = std::time::Instant::now();
                    response.shared.pages_scanned += 1;
                    let points = self.store.page(*page).points();
                    for &qi in &active {
                        // Copy the rectangle into a local: the hot filter
                        // loop must not reload its bounds through the
                        // request slice, which the optimiser cannot prove
                        // disjoint from the output it writes.
                        let rect = requests[qi].rect;
                        let stats = &mut response.per_query[qi];
                        stats.points_scanned += points.len() as u64;
                        match &mut response.outputs[qi] {
                            RangeBatchOutput::Points(out) => {
                                let before = out.len();
                                for p in points {
                                    if rect.contains(p) {
                                        out.push(*p);
                                    }
                                }
                                stats.results += (out.len() - before) as u64;
                            }
                            RangeBatchOutput::Count(count) => {
                                let mut matches = 0u64;
                                for p in points {
                                    matches += u64::from(rect.contains(p));
                                }
                                *count += matches;
                                stats.results += matches;
                            }
                        }
                    }
                    scan_ns += scan_start.elapsed().as_nanos() as u64;
                }
            }
        }
        response
            .shared
            .charge_kernel(kernel_start.elapsed().as_nanos() as u64, scan_ns);
    }

    /// The first leaf page the sequential [`PackedRTree::point_query`] walk
    /// would probe for `p`, computed without charging anything (the fused
    /// probe re-runs the walk with full accounting). `None` when no leaf's
    /// bounding box contains the point.
    fn first_probe_page(&self, p: &Point) -> Option<PageId> {
        let mut stack = vec![self.root];
        while let Some(index) = stack.pop() {
            match &self.nodes[index as usize] {
                RNode::Internal { children, .. } => {
                    for &child in children {
                        if self.nodes[child as usize].mbr().contains(p) {
                            stack.push(child);
                        }
                    }
                }
                RNode::Leaf { page, .. } => return Some(*page),
            }
        }
        None
    }
}

impl RangeBatchKernel for PackedRTree {
    fn run_range_batch(&self, requests: &[RangeBatchRequest]) -> RangeBatchResponse {
        let mut response = RangeBatchResponse::zeroed(requests);
        self.descend_batch(requests, (0..requests.len()).collect(), &mut response);
        response
    }

    fn sharded(&self) -> Option<&dyn ShardedRangeBatchKernel> {
        Some(self)
    }
}

/// The packed R-tree's sharded capability: the sweep address space is the
/// clustered page list (pages are allocated in packing order, so nearby
/// addresses hold spatially nearby leaves). A request's interval is the
/// hull `[first, last]` of the leaf pages its solo walk reaches — purely an
/// ownership and load-balancing hint: [`ShardedRangeBatchKernel::sweep_shard`]
/// re-runs the pruning descent for the requests it owns, so per-request
/// counters never depend on the interval's tightness.
impl ShardedRangeBatchKernel for PackedRTree {
    /// One uncharged pruning descent over the whole batch, recording the
    /// page-address hull every request reaches. Requests overlapping no
    /// leaf project onto `[0, 0]` so they still have exactly one owner
    /// (their walk dies near the root, wherever it executes).
    fn project_batch(&self, requests: &[RangeBatchRequest]) -> BatchProjection {
        let start = std::time::Instant::now();
        let mut hulls: Vec<Option<(u32, u32)>> = vec![None; requests.len()];
        let mut stack: Vec<(u32, Vec<usize>)> = vec![(self.root, (0..requests.len()).collect())];
        while let Some((index, active)) = stack.pop() {
            match &self.nodes[index as usize] {
                RNode::Internal { children, .. } => {
                    for &child in children {
                        let child_mbr = self.nodes[child as usize].mbr();
                        let child_active: Vec<usize> = active
                            .iter()
                            .copied()
                            .filter(|&qi| child_mbr.overlaps(&requests[qi].rect))
                            .collect();
                        if !child_active.is_empty() {
                            stack.push((child, child_active));
                        }
                    }
                }
                RNode::Leaf { page, .. } => {
                    for &qi in &active {
                        let hull = hulls[qi].get_or_insert((page.0, page.0));
                        hull.0 = hull.0.min(page.0);
                        hull.1 = hull.1.max(page.0);
                    }
                }
            }
        }
        BatchProjection {
            intervals: hulls
                .into_iter()
                .map(|hull| {
                    let (lo, hi) = hull.unwrap_or((0, 0));
                    SweepInterval { lo, hi }
                })
                .collect(),
            per_query: vec![ExecStats::default(); requests.len()],
            elapsed_ns: start.elapsed().as_nanos() as u64,
        }
    }

    /// Owner-based sharding: the shard containing a request's first reached
    /// page runs the request's *whole* pruning descent (the fused batch
    /// descent restricted to the owned requests), so per-request walks are
    /// identical to the single sweep's — and the sequential loop's — for
    /// every shard plan. A page inside several owners' hulls is fetched at
    /// most once per shard, never more than the sequential once-per-query.
    fn sweep_shard(
        &self,
        requests: &[RangeBatchRequest],
        projection: &BatchProjection,
        bounds: ShardBounds,
    ) -> RangeBatchResponse {
        let mut response = RangeBatchResponse::zeroed(requests);
        let owned: Vec<usize> = projection
            .intervals
            .iter()
            .enumerate()
            .filter(|(_, interval)| interval.lo >= bounds.start && interval.lo < bounds.end)
            .map(|(qi, _)| qi)
            .collect();
        self.descend_batch(requests, owned, &mut response);
        response
    }

    /// Points per clustered page, in allocation order: the scan-work
    /// weights the engine's work-weighted shard planner balances.
    fn address_counts(&self) -> Option<Vec<u64>> {
        Some(self.store.pages().map(|p| p.len() as u64).collect())
    }
}

/// Sentinel address for probes no leaf bounding box contains: their walk
/// dies in the upper tree without touching a page, so there is nothing to
/// share — they group together and answer `false` after their (charged)
/// descent.
const NO_PROBE_PAGE: u64 = u64::MAX;

/// The packed R-tree's fused point-probe kernel. R-tree leaves may overlap
/// (especially after inserts), so a probe has no single owning leaf by
/// construction; the grouping address is the *first* page the sequential
/// probe walk touches — on packed trees, almost always the only one. The
/// group's shared first-page fetch is charged once per batch; each probe
/// then replays its full sequential walk (descent charges, early exit on
/// the first hit, per-page point comparisons), so answers and per-probe
/// counters are exactly [`PackedRTree::point_query`]'s.
///
/// Cost profile: the uncharged grouping descent in
/// [`PointBatchKernel::locate_probes`] means every probe walks the upper
/// tree twice (a correct grouping key *is* the walk's first leaf — a
/// cheaper key would misattribute the shared page charge). The in-memory
/// descent is small next to a page scan, so the kernel wins wherever
/// probes share owning pages (hot keys, duplicates) and pays a bounded
/// CPU overhead on spread-out batches; the batch experiment reports both
/// sides of that trade.
impl PointBatchKernel for PackedRTree {
    fn locate_probes(&self, probes: &[Point], _per_query: &mut [ExecStats]) -> Vec<u64> {
        probes
            .iter()
            .map(|p| {
                self.first_probe_page(p)
                    .map_or(NO_PROBE_PAGE, |page| u64::from(page.0))
            })
            .collect()
    }

    fn probe_page(
        &self,
        address: u64,
        group: &[(usize, Point)],
        response: &mut PointBatchResponse,
    ) {
        // One shared fetch of the group's common first page; probes of the
        // no-page group visit nothing.
        if address != NO_PROBE_PAGE {
            response.shared.pages_scanned += 1;
        }
        for &(slot, p) in group {
            let stats = &mut response.per_query[slot];
            let mut found = false;
            let mut stack = vec![self.root];
            while let Some(index) = stack.pop() {
                match &self.nodes[index as usize] {
                    RNode::Internal { children, .. } => {
                        stats.nodes_visited += 1;
                        for &child in children {
                            stats.bbs_checked += 1;
                            if self.nodes[child as usize].mbr().contains(&p) {
                                stack.push(child);
                            }
                        }
                    }
                    RNode::Leaf { page, .. } => {
                        // The group's shared first page charges no
                        // per-probe page visit (it moved to the shared
                        // stats above); comparisons are charged by the one
                        // canonical rule either way.
                        found = if u64::from(page.0) == address {
                            self.store.page(*page).probe_shared(&p, stats)
                        } else {
                            self.store.probe_page(*page, &p, stats)
                        };
                        if found {
                            break;
                        }
                    }
                }
            }
            if found {
                stats.results += 1;
                response.found[slot] = true;
            }
        }
    }
}

/// Area enlargement required for `mbr` to include `p` (the ChooseLeaf
/// criterion of the classic R-tree insert).
fn enlargement(mbr: &Rect, p: &Point) -> f64 {
    if mbr.is_empty() {
        return 0.0;
    }
    let mut grown = *mbr;
    grown.expand(p);
    grown.area() - mbr.area()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packed_tree(n: usize) -> PackedRTree {
        // Pack points row-by-row into pages of 8.
        let mut store = PageStore::new(8);
        let points: Vec<Point> = (0..n)
            .map(|i| Point::new((i % 32) as f64 / 32.0, (i / 32) as f64 / 32.0))
            .collect();
        for chunk in points.chunks(8) {
            store.allocate(chunk.to_vec());
        }
        PackedRTree::from_packed_pages(store, n)
    }

    #[test]
    fn range_and_point_queries_are_exact() {
        let tree = packed_tree(500);
        let mut stats = ExecStats::default();
        let query = Rect::from_coords(0.1, 0.1, 0.4, 0.3);
        let got = tree.range_query(&query, &mut stats);
        let expected = (0..500)
            .map(|i| Point::new((i % 32) as f64 / 32.0, (i / 32) as f64 / 32.0))
            .filter(|p| query.contains(p))
            .count();
        assert_eq!(got.len(), expected);
        assert!(tree.point_query(&Point::new(0.0, 0.0), &mut stats));
        assert!(!tree.point_query(&Point::new(0.99, 0.99), &mut stats));
        assert!(stats.bbs_checked > 0);
        assert!(stats.nodes_visited > 0);
    }

    #[test]
    fn empty_tree_has_a_root_and_answers_queries() {
        let tree = PackedRTree::from_packed_pages(PageStore::new(8), 0);
        let mut stats = ExecStats::default();
        assert!(tree.range_query(&Rect::UNIT, &mut stats).is_empty());
        assert!(!tree.point_query(&Point::new(0.5, 0.5), &mut stats));
        assert_eq!(tree.height(), 1);
    }

    #[test]
    fn upper_levels_respect_fanout() {
        let tree = packed_tree(2_000);
        // 2000 points / 8 per page = 250 leaves; with fanout 16 the tree
        // needs 3 levels (250 -> 16 -> 1).
        assert_eq!(tree.height(), 3);
        assert!(tree.size_bytes() > 0);
    }

    #[test]
    fn inserts_keep_queries_correct_and_split_leaves() {
        let mut tree = packed_tree(200);
        let page_count_before = tree.store.page_count();
        let mut rng_points = Vec::new();
        for i in 0..200 {
            let p = Point::new((i as f64 * 0.37) % 1.0, (i as f64 * 0.73) % 1.0);
            rng_points.push(p);
            tree.insert(p);
        }
        assert_eq!(tree.len, 400);
        assert!(
            tree.store.page_count() > page_count_before,
            "splits happened"
        );
        let mut stats = ExecStats::default();
        let query = Rect::from_coords(0.2, 0.2, 0.6, 0.6);
        let got = tree.range_query(&query, &mut stats);
        let expected = (0..200)
            .map(|i| Point::new((i % 32) as f64 / 32.0, (i / 32) as f64 / 32.0))
            .chain(rng_points.iter().copied())
            .filter(|p| query.contains(p))
            .count();
        assert_eq!(got.len(), expected);
        for p in &rng_points {
            assert!(tree.point_query(p, &mut stats));
        }
    }
}
