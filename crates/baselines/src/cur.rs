//! CUR: cost-based unbalanced R-tree (Ross, Sitzmann & Stuckey, 2001),
//! adapted to point data as described in Section 6.1 of the WaZI paper.
//!
//! The adaptation weights every point by the number of distinct workload
//! queries fetching it and packs leaf pages so that the *weighted* mass is
//! balanced across pages ("weighted density estimates to select partitions
//! following the Sort Tile Recursive algorithm"). Query-hot areas therefore
//! receive more, smaller pages, which reduces the excess points scanned for
//! the anticipated workload.

use crate::rtree::PackedRTree;
use wazi_core::{IndexError, PointBatchKernel, RangeBatchKernel, SpatialIndex};
use wazi_density::{Rfde, RfdeConfig};
use wazi_geom::{Point, Rect};
use wazi_storage::{ExecStats, PageStore};

/// Resolution of the query-count grid used to approximate per-point weights
/// (the number of workload queries fetching each point).
const WEIGHT_GRID: usize = 64;

/// A query-aware packed R-tree built with weighted Sort-Tile-Recursive
/// packing.
#[derive(Debug, Clone)]
pub struct CurTree {
    tree: PackedRTree,
    leaf_capacity: usize,
    /// The weighted RFDE estimator retained by the index (it is part of the
    /// learned index structure and counted in its size).
    estimator: Rfde,
}

impl CurTree {
    /// Builds a CUR tree for a dataset and an anticipated query workload.
    pub fn build(points: Vec<Point>, queries: &[Rect], leaf_capacity: usize) -> Self {
        assert!(leaf_capacity > 0, "leaf capacity must be positive");
        let len = points.len();
        let weights = query_weights(&points, queries);
        let weighted: Vec<(Point, f64)> = points
            .iter()
            .zip(weights.iter())
            .map(|(p, w)| (*p, *w))
            .collect();
        let estimator = Rfde::fit_weighted(&weighted, RfdeConfig::fast());
        let store = pack_weighted_str(points, &weights, leaf_capacity);
        Self {
            tree: PackedRTree::from_packed_pages(store, len),
            leaf_capacity,
            estimator,
        }
    }

    /// The leaf capacity used for packing.
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_capacity
    }

    /// Height of the tree.
    pub fn height(&self) -> usize {
        self.tree.height()
    }
}

/// Approximates, for every point, the number of workload queries fetching it.
///
/// Counting exactly is quadratic in `|D| x |Q|`; instead queries are rasterised
/// onto a fixed grid and each point inherits the query count of its grid
/// cell. Every point receives a base weight of one so that query-cold regions
/// still pack into full pages.
fn query_weights(points: &[Point], queries: &[Rect]) -> Vec<f64> {
    if points.is_empty() {
        return Vec::new();
    }
    let space = Rect::bounding(points);
    let mut grid = vec![0.0f64; WEIGHT_GRID * WEIGHT_GRID];
    let cell_w = (space.width() / WEIGHT_GRID as f64).max(f64::MIN_POSITIVE);
    let cell_h = (space.height() / WEIGHT_GRID as f64).max(f64::MIN_POSITIVE);
    let clamp = |v: f64| (v.max(0.0) as usize).min(WEIGHT_GRID - 1);
    for q in queries {
        let Some(clipped) = q.intersection(&space) else {
            continue;
        };
        let x0 = clamp((clipped.lo.x - space.lo.x) / cell_w);
        let x1 = clamp((clipped.hi.x - space.lo.x) / cell_w);
        let y0 = clamp((clipped.lo.y - space.lo.y) / cell_h);
        let y1 = clamp((clipped.hi.y - space.lo.y) / cell_h);
        for gx in x0..=x1 {
            for gy in y0..=y1 {
                grid[gy * WEIGHT_GRID + gx] += 1.0;
            }
        }
    }
    points
        .iter()
        .map(|p| {
            let gx = clamp((p.x - space.lo.x) / cell_w);
            let gy = clamp((p.y - space.lo.y) / cell_h);
            1.0 + grid[gy * WEIGHT_GRID + gx]
        })
        .collect()
}

/// Sort-Tile-Recursive packing where slice and page boundaries equalise the
/// *weighted* mass instead of the raw point count. Pages never exceed the
/// leaf capacity; hot pages simply end up holding fewer points.
fn pack_weighted_str(points: Vec<Point>, weights: &[f64], leaf_capacity: usize) -> PageStore {
    let mut store = PageStore::new(leaf_capacity);
    if points.is_empty() {
        return store;
    }
    let total_weight: f64 = weights.iter().sum();
    let page_count = points.len().div_ceil(leaf_capacity);
    let slice_count = (page_count as f64).sqrt().ceil() as usize;
    let weight_per_slice = total_weight / slice_count as f64;

    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_unstable_by(|&a, &b| {
        points[a]
            .x
            .total_cmp(&points[b].x)
            .then_with(|| points[a].y.total_cmp(&points[b].y))
    });

    // Cut vertical slices of (roughly) equal weight.
    let mut slices: Vec<Vec<usize>> = Vec::with_capacity(slice_count);
    let mut current = Vec::new();
    let mut acc = 0.0;
    for &i in &order {
        current.push(i);
        acc += weights[i];
        if acc >= weight_per_slice && slices.len() + 1 < slice_count {
            slices.push(std::mem::take(&mut current));
            acc = 0.0;
        }
    }
    if !current.is_empty() {
        slices.push(current);
    }

    // Within each slice, cut pages of (roughly) equal weight, capped at the
    // leaf capacity.
    for mut slice in slices {
        slice.sort_unstable_by(|&a, &b| {
            points[a]
                .y
                .total_cmp(&points[b].y)
                .then_with(|| points[a].x.total_cmp(&points[b].x))
        });
        let slice_weight: f64 = slice.iter().map(|&i| weights[i]).sum();
        let slice_pages = slice.len().div_ceil(leaf_capacity).max(1);
        let weight_per_page = slice_weight / slice_pages as f64;
        let mut page = Vec::new();
        let mut acc = 0.0;
        for &i in &slice {
            page.push(points[i]);
            acc += weights[i];
            if (acc >= weight_per_page || page.len() >= leaf_capacity) && !page.is_empty() {
                store.allocate(std::mem::take(&mut page));
                acc = 0.0;
            }
        }
        if !page.is_empty() {
            store.allocate(page);
        }
    }
    store
}

impl SpatialIndex for CurTree {
    fn name(&self) -> &'static str {
        "CUR"
    }

    fn len(&self) -> usize {
        self.tree.len
    }

    fn data_bounds(&self) -> Rect {
        self.tree.root_mbr()
    }

    fn range_query(&self, query: &Rect, stats: &mut ExecStats) -> Vec<Point> {
        let result = self.tree.range_query(query, stats);
        stats.results += result.len() as u64;
        result
    }

    fn range_count(&self, query: &Rect, stats: &mut ExecStats) -> u64 {
        let count = self.tree.range_count(query, stats);
        stats.results += count;
        count
    }

    fn range_for_each(&self, query: &Rect, stats: &mut ExecStats, visit: &mut dyn FnMut(&Point)) {
        stats.results += self.tree.range_for_each(query, stats, visit);
    }

    fn point_query(&self, p: &Point, stats: &mut ExecStats) -> bool {
        let start = std::time::Instant::now();
        let found = self.tree.point_query(p, stats);
        stats.add_scan(start.elapsed());
        if found {
            stats.results += 1;
        }
        found
    }

    fn insert(&mut self, p: Point) -> Result<(), IndexError> {
        if !p.is_finite() {
            return Err(IndexError::InvalidInput(format!("non-finite point {p}")));
        }
        self.tree.insert(p);
        Ok(())
    }

    fn size_bytes(&self) -> usize {
        self.tree.size_bytes() + self.estimator.size_bytes()
    }

    fn range_batch_kernel(&self) -> Option<&dyn RangeBatchKernel> {
        Some(&self.tree)
    }

    fn point_batch_kernel(&self) -> Option<&dyn PointBatchKernel> {
        Some(&self.tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn hot_corner_queries(n: usize, seed: u64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let c = Point::new(0.1 + rng.gen::<f64>() * 0.15, 0.1 + rng.gen::<f64>() * 0.15);
                Rect::query_box(&Rect::UNIT, c, 0.001, 1.0)
            })
            .collect()
    }

    #[test]
    fn weights_are_higher_in_the_query_hot_region() {
        let points = dataset(4_000, 1);
        let queries = hot_corner_queries(200, 2);
        let weights = query_weights(&points, &queries);
        let hot: Vec<f64> = points
            .iter()
            .zip(&weights)
            .filter(|(p, _)| p.x < 0.3 && p.y < 0.3)
            .map(|(_, w)| *w)
            .collect();
        let cold: Vec<f64> = points
            .iter()
            .zip(&weights)
            .filter(|(p, _)| p.x > 0.7 && p.y > 0.7)
            .map(|(_, w)| *w)
            .collect();
        let hot_mean: f64 = hot.iter().sum::<f64>() / hot.len() as f64;
        let cold_mean: f64 = cold.iter().sum::<f64>() / cold.len() as f64;
        assert!(
            hot_mean > cold_mean * 2.0,
            "hot {hot_mean} vs cold {cold_mean}"
        );
    }

    #[test]
    fn hot_pages_hold_fewer_points_than_cold_pages() {
        let points = dataset(8_000, 3);
        let queries = hot_corner_queries(400, 4);
        let weights = query_weights(&points, &queries);
        let store = pack_weighted_str(points, &weights, 128);
        let hot_region = Rect::from_coords(0.1, 0.1, 0.25, 0.25);
        let cold_region = Rect::from_coords(0.6, 0.6, 1.0, 1.0);
        let mut hot_sizes = Vec::new();
        let mut cold_sizes = Vec::new();
        for page in store.pages() {
            if page.is_empty() {
                continue;
            }
            if hot_region.contains_rect(&page.bbox()) {
                hot_sizes.push(page.len());
            } else if cold_region.contains_rect(&page.bbox()) {
                cold_sizes.push(page.len());
            }
        }
        let hot_mean: f64 = hot_sizes.iter().sum::<usize>() as f64 / hot_sizes.len().max(1) as f64;
        let cold_mean: f64 =
            cold_sizes.iter().sum::<usize>() as f64 / cold_sizes.len().max(1) as f64;
        assert!(
            hot_mean < cold_mean,
            "query-hot pages ({hot_mean:.1} pts) should be smaller than cold pages ({cold_mean:.1} pts)"
        );
    }

    #[test]
    fn queries_remain_exact() {
        let points = dataset(5_000, 5);
        let queries = hot_corner_queries(300, 6);
        let index = CurTree::build(points.clone(), &queries, 64);
        assert_eq!(index.len(), 5_000);
        let mut stats = ExecStats::default();
        for query in queries.iter().take(30).chain([Rect::UNIT].iter()) {
            let mut got = index.range_query(query, &mut stats);
            got.sort_by(|a, b| a.lex_cmp(b));
            let mut expected: Vec<Point> = points
                .iter()
                .copied()
                .filter(|p| query.contains(p))
                .collect();
            expected.sort_by(|a, b| a.lex_cmp(b));
            assert_eq!(got, expected);
        }
        assert!(index.point_query(&points[42], &mut stats));
    }

    #[test]
    fn cur_scans_fewer_points_than_str_on_its_workload() {
        let points = dataset(10_000, 7);
        let queries = hot_corner_queries(500, 8);
        let cur = CurTree::build(points.clone(), &queries, 128);
        let str_tree = crate::str_rtree::StrRTree::build(points, 128);
        let mut cur_stats = ExecStats::default();
        let mut str_stats = ExecStats::default();
        for q in &queries {
            cur.range_query(q, &mut cur_stats);
            str_tree.range_query(q, &mut str_stats);
        }
        assert_eq!(cur_stats.results, str_stats.results);
        assert!(
            cur_stats.points_scanned < str_stats.points_scanned,
            "CUR ({}) should scan fewer points than STR ({}) on the trained workload",
            cur_stats.points_scanned,
            str_stats.points_scanned
        );
    }

    #[test]
    fn insert_and_metadata() {
        let points = dataset(2_000, 9);
        let queries = hot_corner_queries(100, 10);
        let mut index = CurTree::build(points, &queries, 64);
        assert_eq!(index.name(), "CUR");
        assert_eq!(index.leaf_capacity(), 64);
        assert!(index.height() >= 2);
        assert!(index.size_bytes() > 0);
        let mut stats = ExecStats::default();
        index.insert(Point::new(0.42, 0.43)).expect("insert");
        assert!(index.point_query(&Point::new(0.42, 0.43), &mut stats));
        assert_eq!(index.len(), 2_001);
    }

    #[test]
    fn empty_build() {
        let index = CurTree::build(Vec::new(), &[], 64);
        let mut stats = ExecStats::default();
        assert!(index.is_empty());
        assert!(index.range_query(&Rect::UNIT, &mut stats).is_empty());
    }

    /// CUR shares the packed R-tree's fused kernels: the batched walk over
    /// its query-weighted layout must replicate every query's solo descent
    /// while overlapping queries share page fetches.
    #[test]
    fn fused_batch_kernels_match_sequential_on_the_weighted_layout() {
        use wazi_core::{RangeBatchOutput, RangeBatchRequest};
        let points = dataset(5_000, 21);
        let queries = hot_corner_queries(300, 22);
        let index = CurTree::build(points.clone(), &queries, 64);
        let kernel = index
            .range_batch_kernel()
            .expect("CUR fuses range batches now");
        let requests: Vec<RangeBatchRequest> = queries
            .iter()
            .take(40)
            .map(|rect| RangeBatchRequest {
                rect: *rect,
                collect: false,
            })
            .collect();
        let response = kernel.run_range_batch(&requests);
        let mut sequential_pages = 0u64;
        for (qi, request) in requests.iter().enumerate() {
            let mut stats = ExecStats::default();
            let expected = index.range_count(&request.rect, &mut stats);
            assert_eq!(response.outputs[qi], RangeBatchOutput::Count(expected));
            assert_eq!(response.per_query[qi].bbs_checked, stats.bbs_checked);
            assert_eq!(response.per_query[qi].points_scanned, stats.points_scanned);
            sequential_pages += stats.pages_scanned;
        }
        assert!(
            response.shared.pages_scanned < sequential_pages,
            "the query-hot corner must share page fetches"
        );
        // The point kernel answers hot-key duplicates on one fetch.
        let point_kernel = index.point_batch_kernel().expect("CUR probes in batches");
        let probes = vec![points[7], points[7], points[7]];
        let probe_response = wazi_core::run_point_batch(point_kernel, &probes);
        assert_eq!(probe_response.found, vec![true, true, true]);
        assert!(probe_response.shared.pages_scanned >= 1);
    }
}
