//! A rank-space Z-order sorted-array index (the `ZM` / `Zpgm` family).
//!
//! Figure 4 of the paper compares WaZI against several indexes that apply a
//! Z-order curve *in rank space* and then index the resulting one-dimensional
//! keys (Zpgm, HRR, QUILTS, RSMI); all of them perform significantly worse
//! than the primary baselines and are dropped from the detailed experiments.
//! This module provides one representative of that family: points are mapped
//! onto a fixed grid, sorted by Morton code, and range queries scan the code
//! interval `[code(BL), code(TR)]`, using the BIGMIN successor computation to
//! jump over runs of codes outside the query rectangle.

use wazi_core::{
    IndexError, PointBatchKernel, PointBatchResponse, RangeBatchKernel, RangeBatchOutput,
    RangeBatchRequest, RangeBatchResponse, SpatialIndex,
};
use wazi_geom::zorder::{bigmin, ZOrderMapper};
use wazi_geom::{Point, Rect};
use wazi_storage::ExecStats;

/// Number of consecutive non-matching entries tolerated before the scan
/// consults BIGMIN to jump forward.
const BIGMIN_PATIENCE: usize = 16;

/// A sorted-array Z-order index in rank (grid) space.
#[derive(Debug, Clone)]
pub struct ZOrderSorted {
    /// `(code, point)` pairs sorted by Morton code.
    entries: Vec<(u64, Point)>,
    mapper: ZOrderMapper,
    /// Bounding box of the indexed points (grown by inserts).
    space: Rect,
}

impl ZOrderSorted {
    /// Builds the index with the given grid resolution (bits per dimension).
    pub fn build(points: Vec<Point>, bits: u32) -> Self {
        let space = if points.is_empty() {
            Rect::UNIT
        } else {
            Rect::bounding(&points)
        };
        let mapper = ZOrderMapper::new(space, bits);
        let mut entries: Vec<(u64, Point)> =
            points.into_iter().map(|p| (mapper.code(&p), p)).collect();
        entries.sort_unstable_by_key(|(code, _)| *code);
        Self {
            entries,
            mapper,
            space,
        }
    }

    /// Builds the index with the default 16-bit grid.
    pub fn with_default_bits(points: Vec<Point>) -> Self {
        Self::build(points, 16)
    }

    /// First array position whose code is `>= code`.
    fn lower_bound(&self, code: u64) -> usize {
        self.entries.partition_point(|(c, _)| *c < code)
    }

    /// The range-scan kernel shared by every execution mode: scans the
    /// Morton-code interval `[code(BL), code(TR)]`, consulting BIGMIN to
    /// jump over runs of codes outside the query rectangle, and invokes
    /// `on_match` for every matching point.
    fn scan_range(&self, query: &Rect, stats: &mut ExecStats, mut on_match: impl FnMut(&Point)) {
        let projection_start = std::time::Instant::now();
        let (lo_code, hi_code) = self.mapper.query_interval(query);
        let start = self.lower_bound(lo_code);
        stats.add_projection(projection_start.elapsed());

        let scan_start = std::time::Instant::now();
        let mut i = start;
        let mut misses = 0usize;
        while i < self.entries.len() {
            let (code, point) = self.entries[i];
            if code > hi_code {
                break;
            }
            stats.points_scanned += 1;
            if query.contains(&point) {
                on_match(&point);
                misses = 0;
            } else {
                misses += 1;
                if misses >= BIGMIN_PATIENCE {
                    // Jump to the next Morton code that can lie inside the
                    // query rectangle.
                    match bigmin(code, lo_code, hi_code) {
                        Some(next_code) => {
                            let next = self.lower_bound(next_code);
                            stats.leaves_skipped += (next.saturating_sub(i + 1)) as u64;
                            i = next;
                            misses = 0;
                            continue;
                        }
                        None => break,
                    }
                }
            }
            i += 1;
        }
        stats.add_scan(scan_start.elapsed());
    }
}

impl SpatialIndex for ZOrderSorted {
    fn name(&self) -> &'static str {
        "Zpgm"
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn data_bounds(&self) -> Rect {
        self.space
    }

    fn range_query(&self, query: &Rect, stats: &mut ExecStats) -> Vec<Point> {
        let mut result = Vec::new();
        self.scan_range(query, stats, |p| result.push(*p));
        stats.results += result.len() as u64;
        result
    }

    fn range_count(&self, query: &Rect, stats: &mut ExecStats) -> u64 {
        let mut count = 0u64;
        self.scan_range(query, stats, |_| count += 1);
        stats.results += count;
        count
    }

    fn range_for_each(&self, query: &Rect, stats: &mut ExecStats, visit: &mut dyn FnMut(&Point)) {
        let mut matched = 0u64;
        self.scan_range(query, stats, |p| {
            matched += 1;
            visit(p);
        });
        stats.results += matched;
    }

    fn point_query(&self, p: &Point, stats: &mut ExecStats) -> bool {
        let start = std::time::Instant::now();
        let code = self.mapper.code(p);
        let mut i = self.lower_bound(code);
        let mut found = false;
        while i < self.entries.len() && self.entries[i].0 == code {
            stats.points_scanned += 1;
            if self.entries[i].1 == *p {
                found = true;
                break;
            }
            i += 1;
        }
        stats.add_scan(start.elapsed());
        if found {
            stats.results += 1;
        }
        found
    }

    fn insert(&mut self, p: Point) -> Result<(), IndexError> {
        if !p.is_finite() {
            return Err(IndexError::InvalidInput(format!("non-finite point {p}")));
        }
        let code = self.mapper.code(&p);
        let position = self.lower_bound(code);
        self.entries.insert(position, (code, p));
        self.space.expand(&p);
        Ok(())
    }

    fn size_bytes(&self) -> usize {
        // The sorted code array is the index structure itself.
        std::mem::size_of::<Self>() + self.entries.len() * std::mem::size_of::<u64>()
    }

    fn range_batch_kernel(&self) -> Option<&dyn RangeBatchKernel> {
        Some(self)
    }

    fn point_batch_kernel(&self) -> Option<&dyn PointBatchKernel> {
        Some(self)
    }
}

/// The sorted array's fused range kernel: a **shared BIGMIN sweep**. All
/// requests' code intervals execute as one ascending walk over the entry
/// array: every request carries its own cursor (next array position to
/// examine), its own miss counter and its own BIGMIN jumps, exactly like
/// the sequential [`ZOrderSorted`] scan — but an entry inside several
/// genuinely overlapping code intervals is loaded once per sweep step and
/// served to every request due there, instead of once per request in
/// arrival order. Per-request counters (points compared, BIGMIN skips,
/// results) and result order are bit-identical to the sequential scan's;
/// the kernel also lets the engine's batched kNN path drive this index's
/// ring sweeps.
///
/// Requests due at the current entry live in a dense `hot` vector (the
/// common case: an in-interval request re-arms for the very next entry);
/// requests whose BIGMIN jump parked them at a later position wait in a
/// min-heap keyed on their cursor, so a step costs only its due requests
/// plus `O(log n)` per actual jump.
///
/// Unlike the page-backed indexes, the flat array has no physical fetch to
/// save — fusion buys ordering and shared entry loads, not fewer pages —
/// so on heavily stacked batches the sweep's per-step coordination can
/// cost wall-clock relative to the per-request loop while counters stay
/// identical. The batch experiment reports both so the trade is visible.
impl RangeBatchKernel for ZOrderSorted {
    fn run_range_batch(&self, requests: &[RangeBatchRequest]) -> RangeBatchResponse {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut response = RangeBatchResponse::zeroed(requests);
        if requests.is_empty() || self.entries.is_empty() {
            return response;
        }
        let projection_start = std::time::Instant::now();
        // Per-request sweep state, packed into one record so the hot loop
        // touches a single cache line per due request: the interval codes,
        // the filter rectangle and the miss counter. Each request enters
        // the sweep parked at its interval's first array position.
        struct SweepState {
            lo_code: u64,
            hi_code: u64,
            rect: Rect,
            misses: usize,
        }
        let mut states: Vec<SweepState> = Vec::with_capacity(requests.len());
        let mut parked: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();
        for (qi, request) in requests.iter().enumerate() {
            let (lo_code, hi_code) = self.mapper.query_interval(&request.rect);
            states.push(SweepState {
                lo_code,
                hi_code,
                rect: request.rect,
                misses: 0,
            });
            let start = self.lower_bound(lo_code);
            if start < self.entries.len() {
                parked.push(Reverse((start, qi)));
            }
        }
        response.shared.projection_ns += projection_start.elapsed().as_nanos() as u64;

        let scan_start = std::time::Instant::now();
        let mut hot: Vec<usize> = Vec::new();
        let mut rearmed: Vec<usize> = Vec::new();
        let mut i = match parked.peek() {
            Some(&Reverse((at, _))) => at,
            None => return response,
        };
        while i < self.entries.len() {
            while let Some(&Reverse((at, qi))) = parked.peek() {
                if at > i {
                    break;
                }
                parked.pop();
                hot.push(qi);
            }
            if hot.is_empty() {
                match parked.peek() {
                    Some(&Reverse((at, _))) => {
                        i = at;
                        continue;
                    }
                    None => break,
                }
            }
            // One load of the entry on behalf of every due request.
            let (code, point) = self.entries[i];
            rearmed.clear();
            for &qi in &hot {
                let state = &mut states[qi];
                if code > state.hi_code {
                    continue; // this request's interval is exhausted
                }
                let stats = &mut response.per_query[qi];
                stats.points_scanned += 1;
                if state.rect.contains(&point) {
                    match &mut response.outputs[qi] {
                        RangeBatchOutput::Points(out) => out.push(point),
                        RangeBatchOutput::Count(count) => *count += 1,
                    }
                    stats.results += 1;
                    state.misses = 0;
                    rearmed.push(qi);
                } else {
                    state.misses += 1;
                    if state.misses >= BIGMIN_PATIENCE {
                        // This request's own BIGMIN jump, charged exactly as
                        // the sequential scan charges it; other requests
                        // keep sweeping the run it skips.
                        state.misses = 0;
                        // `None` means nothing ahead can match: the
                        // request simply leaves the sweep.
                        if let Some(next_code) = bigmin(code, state.lo_code, state.hi_code) {
                            let next = self.lower_bound(next_code);
                            stats.leaves_skipped += next.saturating_sub(i + 1) as u64;
                            if next < self.entries.len() {
                                parked.push(Reverse((next, qi)));
                            }
                        }
                    } else {
                        rearmed.push(qi);
                    }
                }
            }
            std::mem::swap(&mut hot, &mut rearmed);
            i += 1;
        }
        response.shared.scan_ns += scan_start.elapsed().as_nanos() as u64;
        response
    }
}

/// The sorted array's fused point-probe kernel: the owning-page address is
/// the probe's Morton code itself, so duplicate probes (and distinct probes
/// mapping onto one grid cell) group onto a single binary search of the
/// code array; every probe still pays its own equal-code-run comparisons,
/// exactly as the sequential probe charges them.
impl PointBatchKernel for ZOrderSorted {
    fn locate_probes(&self, probes: &[Point], _per_query: &mut [ExecStats]) -> Vec<u64> {
        probes.iter().map(|p| self.mapper.code(p)).collect()
    }

    fn probe_page(
        &self,
        address: u64,
        group: &[(usize, Point)],
        response: &mut PointBatchResponse,
    ) {
        // One shared binary search per distinct code.
        let start = self.lower_bound(address);
        for &(slot, p) in group {
            let stats = &mut response.per_query[slot];
            let mut at = start;
            let mut found = false;
            while at < self.entries.len() && self.entries[at].0 == address {
                stats.points_scanned += 1;
                if self.entries[at].1 == p {
                    found = true;
                    break;
                }
                at += 1;
            }
            if found {
                stats.results += 1;
                response.found[slot] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    #[test]
    fn range_queries_match_brute_force() {
        let points = dataset(5_000, 1);
        let index = ZOrderSorted::with_default_bits(points.clone());
        let mut stats = ExecStats::default();
        for query in [
            Rect::from_coords(0.1, 0.1, 0.2, 0.2),
            Rect::from_coords(0.4, 0.1, 0.9, 0.3),
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
        ] {
            let mut got = index.range_query(&query, &mut stats);
            got.sort_by(|a, b| a.lex_cmp(b));
            let mut expected: Vec<Point> = points
                .iter()
                .copied()
                .filter(|p| query.contains(p))
                .collect();
            expected.sort_by(|a, b| a.lex_cmp(b));
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn bigmin_skipping_reduces_scanned_points_for_elongated_queries() {
        let points = dataset(20_000, 2);
        let index = ZOrderSorted::with_default_bits(points.clone());
        // A tall, thin query forces the Z-curve to wander far outside the
        // rectangle; BIGMIN should avoid scanning the whole code interval.
        let query = Rect::from_coords(0.48, 0.05, 0.52, 0.95);
        let mut stats = ExecStats::default();
        let result = index.range_query(&query, &mut stats);
        let expected = points.iter().filter(|p| query.contains(p)).count();
        assert_eq!(result.len(), expected);
        assert!(
            (stats.points_scanned as usize) < points.len() / 2,
            "scanned {} of {} points despite BIGMIN",
            stats.points_scanned,
            points.len()
        );
        assert!(stats.leaves_skipped > 0, "BIGMIN never jumped");
    }

    #[test]
    fn point_queries_and_inserts() {
        let points = dataset(2_000, 3);
        let mut index = ZOrderSorted::with_default_bits(points.clone());
        let mut stats = ExecStats::default();
        assert!(index.point_query(&points[55], &mut stats));
        assert!(!index.point_query(&Point::new(0.555_123, 0.321_555), &mut stats));
        index.insert(Point::new(0.5, 0.5)).expect("insert");
        assert!(index.point_query(&Point::new(0.5, 0.5), &mut stats));
        assert_eq!(index.len(), 2_001);
    }

    #[test]
    fn empty_index() {
        let index = ZOrderSorted::with_default_bits(Vec::new());
        let mut stats = ExecStats::default();
        assert!(index.range_query(&Rect::UNIT, &mut stats).is_empty());
        assert!(!index.point_query(&Point::new(0.5, 0.5), &mut stats));
        assert_eq!(index.name(), "Zpgm");
    }

    /// The shared BIGMIN sweep must replicate every request's sequential
    /// scan exactly — comparisons, per-request BIGMIN skips, results in
    /// ascending code order — on genuinely overlapping code intervals
    /// (stacked elongated queries whose Z-curve walks interleave) as well
    /// as on disjoint ones.
    #[test]
    fn shared_bigmin_sweep_matches_sequential_per_request() {
        use wazi_core::{RangeBatchOutput, RangeBatchRequest};
        let points = dataset(20_000, 4);
        let index = ZOrderSorted::with_default_bits(points);
        // Overlapping tall-thin queries (BIGMIN jumps fire), one broad
        // query covering them, and a disjoint far-corner query.
        let mut rects: Vec<Rect> = (0..8)
            .map(|i| {
                let x = 0.46 + 0.01 * i as f64;
                Rect::from_coords(x, 0.05, x + 0.04, 0.95)
            })
            .collect();
        rects.push(Rect::from_coords(0.4, 0.0, 0.6, 1.0));
        rects.push(Rect::from_coords(0.9, 0.9, 0.99, 0.99));
        let requests: Vec<RangeBatchRequest> = rects
            .iter()
            .enumerate()
            .map(|(i, rect)| RangeBatchRequest {
                rect: *rect,
                collect: i % 2 == 0,
            })
            .collect();
        let kernel = index.range_batch_kernel().expect("Zpgm fuses ranges");
        let response = kernel.run_range_batch(&requests);
        for (qi, request) in requests.iter().enumerate() {
            let mut stats = ExecStats::default();
            if request.collect {
                let expected = index.range_query(&request.rect, &mut stats);
                assert_eq!(
                    response.outputs[qi],
                    RangeBatchOutput::Points(expected),
                    "request {qi}: points or order differ"
                );
            } else {
                let expected = index.range_count(&request.rect, &mut stats);
                assert_eq!(response.outputs[qi], RangeBatchOutput::Count(expected));
            }
            assert_eq!(
                response.per_query[qi].points_scanned, stats.points_scanned,
                "request {qi}: comparisons differ"
            );
            assert_eq!(
                response.per_query[qi].leaves_skipped, stats.leaves_skipped,
                "request {qi}: BIGMIN skips differ"
            );
            assert_eq!(response.per_query[qi].results, stats.results);
        }
        assert!(
            response.per_query.iter().any(|s| s.leaves_skipped > 0),
            "elongated queries must exercise the BIGMIN jumps"
        );
    }
}
