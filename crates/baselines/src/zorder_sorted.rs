//! A rank-space Z-order sorted-array index (the `ZM` / `Zpgm` family).
//!
//! Figure 4 of the paper compares WaZI against several indexes that apply a
//! Z-order curve *in rank space* and then index the resulting one-dimensional
//! keys (Zpgm, HRR, QUILTS, RSMI); all of them perform significantly worse
//! than the primary baselines and are dropped from the detailed experiments.
//! This module provides one representative of that family: points are mapped
//! onto a fixed grid, sorted by Morton code, and range queries scan the code
//! interval `[code(BL), code(TR)]`, using the BIGMIN successor computation to
//! jump over runs of codes outside the query rectangle.

use wazi_core::{
    run_full_sweep, BatchProjection, IndexError, KernelClass, PointBatchKernel, PointBatchResponse,
    RangeBatchKernel, RangeBatchOutput, RangeBatchRequest, RangeBatchResponse, ShardBounds,
    ShardedRangeBatchKernel, SpatialIndex, SweepInterval,
};
use wazi_geom::zorder::{bigmin, ZOrderMapper};
use wazi_geom::{Point, Rect};
use wazi_storage::ExecStats;

/// Number of consecutive non-matching entries tolerated before the scan
/// consults BIGMIN to jump forward.
const BIGMIN_PATIENCE: usize = 16;

/// A sorted-array Z-order index in rank (grid) space.
#[derive(Debug, Clone)]
pub struct ZOrderSorted {
    /// `(code, point)` pairs sorted by Morton code.
    entries: Vec<(u64, Point)>,
    mapper: ZOrderMapper,
    /// Bounding box of the indexed points (grown by inserts).
    space: Rect,
}

impl ZOrderSorted {
    /// Builds the index with the given grid resolution (bits per dimension).
    pub fn build(points: Vec<Point>, bits: u32) -> Self {
        let space = if points.is_empty() {
            Rect::UNIT
        } else {
            Rect::bounding(&points)
        };
        let mapper = ZOrderMapper::new(space, bits);
        let mut entries: Vec<(u64, Point)> =
            points.into_iter().map(|p| (mapper.code(&p), p)).collect();
        entries.sort_unstable_by_key(|(code, _)| *code);
        Self {
            entries,
            mapper,
            space,
        }
    }

    /// Builds the index with the default 16-bit grid.
    pub fn with_default_bits(points: Vec<Point>) -> Self {
        Self::build(points, 16)
    }

    /// First array position whose code is `>= code`.
    fn lower_bound(&self, code: u64) -> usize {
        self.entries.partition_point(|(c, _)| *c < code)
    }

    /// The range-scan kernel shared by every execution mode: scans the
    /// Morton-code interval `[code(BL), code(TR)]`, consulting BIGMIN to
    /// jump over runs of codes outside the query rectangle, and invokes
    /// `on_match` for every matching point.
    fn scan_range(&self, query: &Rect, stats: &mut ExecStats, mut on_match: impl FnMut(&Point)) {
        let projection_start = std::time::Instant::now();
        let (lo_code, hi_code) = self.mapper.query_interval(query);
        let start = self.lower_bound(lo_code);
        stats.add_projection(projection_start.elapsed());

        let scan_start = std::time::Instant::now();
        let mut i = start;
        let mut misses = 0usize;
        while i < self.entries.len() {
            let (code, point) = self.entries[i];
            if code > hi_code {
                break;
            }
            stats.points_scanned += 1;
            if query.contains(&point) {
                on_match(&point);
                misses = 0;
            } else {
                misses += 1;
                if misses >= BIGMIN_PATIENCE {
                    // Jump to the next Morton code that can lie inside the
                    // query rectangle.
                    match bigmin(code, lo_code, hi_code) {
                        Some(next_code) => {
                            let next = self.lower_bound(next_code);
                            stats.leaves_skipped += (next.saturating_sub(i + 1)) as u64;
                            i = next;
                            misses = 0;
                            continue;
                        }
                        None => break,
                    }
                }
            }
            i += 1;
        }
        stats.add_scan(scan_start.elapsed());
    }
}

impl SpatialIndex for ZOrderSorted {
    fn name(&self) -> &'static str {
        "Zpgm"
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn data_bounds(&self) -> Rect {
        self.space
    }

    fn range_query(&self, query: &Rect, stats: &mut ExecStats) -> Vec<Point> {
        let mut result = Vec::new();
        self.scan_range(query, stats, |p| result.push(*p));
        stats.results += result.len() as u64;
        result
    }

    fn range_count(&self, query: &Rect, stats: &mut ExecStats) -> u64 {
        let mut count = 0u64;
        self.scan_range(query, stats, |_| count += 1);
        stats.results += count;
        count
    }

    fn range_for_each(&self, query: &Rect, stats: &mut ExecStats, visit: &mut dyn FnMut(&Point)) {
        let mut matched = 0u64;
        self.scan_range(query, stats, |p| {
            matched += 1;
            visit(p);
        });
        stats.results += matched;
    }

    fn point_query(&self, p: &Point, stats: &mut ExecStats) -> bool {
        let start = std::time::Instant::now();
        let code = self.mapper.code(p);
        let mut i = self.lower_bound(code);
        let mut found = false;
        while i < self.entries.len() && self.entries[i].0 == code {
            stats.points_scanned += 1;
            if self.entries[i].1 == *p {
                found = true;
                break;
            }
            i += 1;
        }
        stats.add_scan(start.elapsed());
        if found {
            stats.results += 1;
        }
        found
    }

    fn insert(&mut self, p: Point) -> Result<(), IndexError> {
        if !p.is_finite() {
            return Err(IndexError::InvalidInput(format!("non-finite point {p}")));
        }
        let code = self.mapper.code(&p);
        let position = self.lower_bound(code);
        self.entries.insert(position, (code, p));
        self.space.expand(&p);
        Ok(())
    }

    fn size_bytes(&self) -> usize {
        // The sorted code array is the index structure itself.
        std::mem::size_of::<Self>() + self.entries.len() * std::mem::size_of::<u64>()
    }

    fn range_batch_kernel(&self) -> Option<&dyn RangeBatchKernel> {
        Some(self)
    }

    fn point_batch_kernel(&self) -> Option<&dyn PointBatchKernel> {
        Some(self)
    }
}

/// The sorted array's fused range kernel: a **shared BIGMIN sweep**. All
/// requests' code intervals execute as one ascending walk over the entry
/// array: every request carries its own cursor (next array position to
/// examine), its own miss counter and its own BIGMIN jumps, exactly like
/// the sequential [`ZOrderSorted`] scan — but an entry inside several
/// genuinely overlapping code intervals is loaded once per sweep step and
/// served to every request due there, instead of once per request in
/// arrival order. Per-request counters (points compared, BIGMIN skips,
/// results) and result order are bit-identical to the sequential scan's;
/// the kernel also lets the engine's batched kNN path drive this index's
/// ring sweeps.
///
/// Requests due at the current entry live in a dense `hot` vector (the
/// common case: an in-interval request re-arms for the very next entry);
/// requests whose BIGMIN jump parked them at a later position wait in a
/// min-heap keyed on their cursor, so a step costs only its due requests
/// plus `O(log n)` per actual jump.
///
/// Unlike the page-backed indexes, the flat array has no physical fetch to
/// save — fusion buys ordering and shared entry loads, not fewer pages —
/// so on heavily stacked batches the sweep's per-step coordination can
/// cost wall-clock relative to the per-request loop while counters stay
/// identical. The kernel declares [`KernelClass::FlatArray`] so the
/// engine's `Auto` strategy routes such batches to the sequential loop
/// unless parallelism can split the sweep.
impl RangeBatchKernel for ZOrderSorted {
    fn run_range_batch(&self, requests: &[RangeBatchRequest]) -> RangeBatchResponse {
        if self.entries.is_empty() {
            return RangeBatchResponse::zeroed(requests);
        }
        run_full_sweep(self, requests, self.entries.len() as u32)
    }

    fn sharded(&self) -> Option<&dyn ShardedRangeBatchKernel> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self)
        }
    }

    fn cost_class(&self) -> KernelClass {
        KernelClass::FlatArray
    }
}

/// The sorted array's sharded capability: the sweep address space is the
/// entry array itself (one address per sorted `(code, point)` pair), and a
/// shard owns every request whose code interval's first array position —
/// the position the sequential scan's initial binary search lands on —
/// falls inside its bounds. The owning shard runs the request's whole
/// shared-BIGMIN walk, jumps included, so per-request counters are
/// bit-identical for every shard count by the same argument as the other
/// sharded kernels: each walk *is* the solo sequential walk.
///
/// No [`ShardedRangeBatchKernel::address_counts`] override is needed: one
/// address holds exactly one point, so the coverage planner's unit weights
/// already measure scan work exactly.
impl ShardedRangeBatchKernel for ZOrderSorted {
    fn project_batch(&self, requests: &[RangeBatchRequest]) -> BatchProjection {
        let projection_start = std::time::Instant::now();
        let intervals = requests
            .iter()
            .map(|request| {
                let (lo_code, hi_code) = self.mapper.query_interval(&request.rect);
                // First array position the sequential scan examines. It may
                // equal `entries.len()` — the scan starts past the end and
                // charges nothing; such a request is owned by no in-range
                // shard and correctly produces a zeroed slot.
                let lo = self.lower_bound(lo_code) as u32;
                // Last entry inside the code interval. An empty interval
                // (no entry with lo_code <= code <= hi_code) clamps to a
                // degenerate one-address interval at `lo`, where the sweep
                // examines one code and charges nothing — exactly like the
                // sequential scan's immediate break.
                let end = self.entries.partition_point(|(c, _)| *c <= hi_code);
                let hi = (end.saturating_sub(1) as u32).max(lo);
                SweepInterval { lo, hi }
            })
            .collect();
        BatchProjection {
            intervals,
            // The binary searches are re-run by the owning shard's sweep;
            // like Flood's column projection, this phase charges no
            // per-query counters, only its wall-clock.
            per_query: vec![ExecStats::default(); requests.len()],
            elapsed_ns: projection_start.elapsed().as_nanos() as u64,
        }
    }

    fn sweep_shard(
        &self,
        requests: &[RangeBatchRequest],
        projection: &BatchProjection,
        bounds: ShardBounds,
    ) -> RangeBatchResponse {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut response = RangeBatchResponse::zeroed(requests);
        let entry_count = self.entries.len() as u32;
        if bounds.start >= bounds.end || bounds.start >= entry_count {
            return response;
        }
        // Per-request sweep state, packed into one record so the hot loop
        // touches a single cache line per due request: the interval codes,
        // the filter rectangle and the miss counter. Each owned request
        // enters the sweep parked at its interval's first array position.
        struct SweepState {
            lo_code: u64,
            hi_code: u64,
            rect: Rect,
            misses: usize,
        }
        let mut states: Vec<SweepState> = requests
            .iter()
            .map(|request| SweepState {
                lo_code: 0,
                hi_code: 0,
                rect: request.rect,
                misses: 0,
            })
            .collect();
        let mut parked: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();
        for (qi, interval) in projection.intervals.iter().enumerate() {
            if interval.lo < bounds.start || interval.lo >= bounds.end {
                continue; // another shard owns this request
            }
            let (lo_code, hi_code) = self.mapper.query_interval(&states[qi].rect);
            states[qi].lo_code = lo_code;
            states[qi].hi_code = hi_code;
            parked.push(Reverse((interval.lo as usize, qi)));
        }

        let scan_start = std::time::Instant::now();
        let mut hot: Vec<usize> = Vec::new();
        let mut rearmed: Vec<usize> = Vec::new();
        let mut i = match parked.peek() {
            Some(&Reverse((at, _))) => at,
            None => return response,
        };
        while i < self.entries.len() {
            while let Some(&Reverse((at, qi))) = parked.peek() {
                if at > i {
                    break;
                }
                parked.pop();
                hot.push(qi);
            }
            if hot.is_empty() {
                match parked.peek() {
                    Some(&Reverse((at, _))) => {
                        i = at;
                        continue;
                    }
                    None => break,
                }
            }
            // One load of the entry on behalf of every due request.
            let (code, point) = self.entries[i];
            rearmed.clear();
            for &qi in &hot {
                let state = &mut states[qi];
                if code > state.hi_code {
                    continue; // this request's interval is exhausted
                }
                let stats = &mut response.per_query[qi];
                stats.points_scanned += 1;
                if state.rect.contains(&point) {
                    match &mut response.outputs[qi] {
                        RangeBatchOutput::Points(out) => out.push(point),
                        RangeBatchOutput::Count(count) => *count += 1,
                    }
                    stats.results += 1;
                    state.misses = 0;
                    rearmed.push(qi);
                } else {
                    state.misses += 1;
                    if state.misses >= BIGMIN_PATIENCE {
                        // This request's own BIGMIN jump, charged exactly as
                        // the sequential scan charges it; other requests
                        // keep sweeping the run it skips.
                        state.misses = 0;
                        // `None` means nothing ahead can match: the
                        // request simply leaves the sweep.
                        if let Some(next_code) = bigmin(code, state.lo_code, state.hi_code) {
                            let next = self.lower_bound(next_code);
                            stats.leaves_skipped += next.saturating_sub(i + 1) as u64;
                            if next < self.entries.len() {
                                parked.push(Reverse((next, qi)));
                            }
                        }
                    } else {
                        rearmed.push(qi);
                    }
                }
            }
            std::mem::swap(&mut hot, &mut rearmed);
            i += 1;
        }
        response.shared.scan_ns += scan_start.elapsed().as_nanos() as u64;
        response
    }
}

/// The sorted array's fused point-probe kernel: the owning-page address is
/// the probe's Morton code itself, so duplicate probes (and distinct probes
/// mapping onto one grid cell) group onto a single binary search of the
/// code array; every probe still pays its own equal-code-run comparisons,
/// exactly as the sequential probe charges them.
impl PointBatchKernel for ZOrderSorted {
    fn locate_probes(&self, probes: &[Point], _per_query: &mut [ExecStats]) -> Vec<u64> {
        probes.iter().map(|p| self.mapper.code(p)).collect()
    }

    fn probe_page(
        &self,
        address: u64,
        group: &[(usize, Point)],
        response: &mut PointBatchResponse,
    ) {
        // One shared binary search per distinct code.
        let start = self.lower_bound(address);
        for &(slot, p) in group {
            let stats = &mut response.per_query[slot];
            let mut at = start;
            let mut found = false;
            while at < self.entries.len() && self.entries[at].0 == address {
                stats.points_scanned += 1;
                if self.entries[at].1 == p {
                    found = true;
                    break;
                }
                at += 1;
            }
            if found {
                stats.results += 1;
                response.found[slot] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    #[test]
    fn range_queries_match_brute_force() {
        let points = dataset(5_000, 1);
        let index = ZOrderSorted::with_default_bits(points.clone());
        let mut stats = ExecStats::default();
        for query in [
            Rect::from_coords(0.1, 0.1, 0.2, 0.2),
            Rect::from_coords(0.4, 0.1, 0.9, 0.3),
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
        ] {
            let mut got = index.range_query(&query, &mut stats);
            got.sort_by(|a, b| a.lex_cmp(b));
            let mut expected: Vec<Point> = points
                .iter()
                .copied()
                .filter(|p| query.contains(p))
                .collect();
            expected.sort_by(|a, b| a.lex_cmp(b));
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn bigmin_skipping_reduces_scanned_points_for_elongated_queries() {
        let points = dataset(20_000, 2);
        let index = ZOrderSorted::with_default_bits(points.clone());
        // A tall, thin query forces the Z-curve to wander far outside the
        // rectangle; BIGMIN should avoid scanning the whole code interval.
        let query = Rect::from_coords(0.48, 0.05, 0.52, 0.95);
        let mut stats = ExecStats::default();
        let result = index.range_query(&query, &mut stats);
        let expected = points.iter().filter(|p| query.contains(p)).count();
        assert_eq!(result.len(), expected);
        assert!(
            (stats.points_scanned as usize) < points.len() / 2,
            "scanned {} of {} points despite BIGMIN",
            stats.points_scanned,
            points.len()
        );
        assert!(stats.leaves_skipped > 0, "BIGMIN never jumped");
    }

    #[test]
    fn point_queries_and_inserts() {
        let points = dataset(2_000, 3);
        let mut index = ZOrderSorted::with_default_bits(points.clone());
        let mut stats = ExecStats::default();
        assert!(index.point_query(&points[55], &mut stats));
        assert!(!index.point_query(&Point::new(0.555_123, 0.321_555), &mut stats));
        index.insert(Point::new(0.5, 0.5)).expect("insert");
        assert!(index.point_query(&Point::new(0.5, 0.5), &mut stats));
        assert_eq!(index.len(), 2_001);
    }

    #[test]
    fn empty_index() {
        let index = ZOrderSorted::with_default_bits(Vec::new());
        let mut stats = ExecStats::default();
        assert!(index.range_query(&Rect::UNIT, &mut stats).is_empty());
        assert!(!index.point_query(&Point::new(0.5, 0.5), &mut stats));
        assert_eq!(index.name(), "Zpgm");
    }

    /// The shared BIGMIN sweep must replicate every request's sequential
    /// scan exactly — comparisons, per-request BIGMIN skips, results in
    /// ascending code order — on genuinely overlapping code intervals
    /// (stacked elongated queries whose Z-curve walks interleave) as well
    /// as on disjoint ones.
    #[test]
    fn shared_bigmin_sweep_matches_sequential_per_request() {
        use wazi_core::{RangeBatchOutput, RangeBatchRequest};
        let points = dataset(20_000, 4);
        let index = ZOrderSorted::with_default_bits(points);
        // Overlapping tall-thin queries (BIGMIN jumps fire), one broad
        // query covering them, and a disjoint far-corner query.
        let mut rects: Vec<Rect> = (0..8)
            .map(|i| {
                let x = 0.46 + 0.01 * i as f64;
                Rect::from_coords(x, 0.05, x + 0.04, 0.95)
            })
            .collect();
        rects.push(Rect::from_coords(0.4, 0.0, 0.6, 1.0));
        rects.push(Rect::from_coords(0.9, 0.9, 0.99, 0.99));
        let requests: Vec<RangeBatchRequest> = rects
            .iter()
            .enumerate()
            .map(|(i, rect)| RangeBatchRequest {
                rect: *rect,
                collect: i % 2 == 0,
            })
            .collect();
        let kernel = index.range_batch_kernel().expect("Zpgm fuses ranges");
        let response = kernel.run_range_batch(&requests);
        for (qi, request) in requests.iter().enumerate() {
            let mut stats = ExecStats::default();
            if request.collect {
                let expected = index.range_query(&request.rect, &mut stats);
                assert_eq!(
                    response.outputs[qi],
                    RangeBatchOutput::Points(expected),
                    "request {qi}: points or order differ"
                );
            } else {
                let expected = index.range_count(&request.rect, &mut stats);
                assert_eq!(response.outputs[qi], RangeBatchOutput::Count(expected));
            }
            assert_eq!(
                response.per_query[qi].points_scanned, stats.points_scanned,
                "request {qi}: comparisons differ"
            );
            assert_eq!(
                response.per_query[qi].leaves_skipped, stats.leaves_skipped,
                "request {qi}: BIGMIN skips differ"
            );
            assert_eq!(response.per_query[qi].results, stats.results);
        }
        assert!(
            response.per_query.iter().any(|s| s.leaves_skipped > 0),
            "elongated queries must exercise the BIGMIN jumps"
        );
    }

    /// Owner-based sharding of the entry array must reproduce the single
    /// fused sweep bit-for-bit — outputs, comparisons and BIGMIN skips —
    /// for every shard count, including plans that cut through the middle
    /// of crossing intervals.
    #[test]
    fn sharded_sweep_is_bit_identical_for_every_shard_count() {
        use wazi_core::{merge_shard_responses, plan_shard_bounds};
        let points = dataset(20_000, 5);
        let index = ZOrderSorted::with_default_bits(points);
        let mut rects: Vec<Rect> = (0..6)
            .map(|i| {
                let x = 0.1 + 0.12 * i as f64;
                Rect::from_coords(x, 0.05, x + 0.2, 0.95)
            })
            .collect();
        rects.push(Rect::from_coords(0.0, 0.0, 1.0, 1.0));
        rects.push(Rect::from_coords(0.93, 0.93, 0.97, 0.97));
        // A rectangle outside the data bounds: its scan starts past the end
        // of the array and must stay zeroed in every plan.
        rects.push(Rect::from_coords(1.5, 1.5, 1.6, 1.6));
        let requests: Vec<RangeBatchRequest> = rects
            .iter()
            .enumerate()
            .map(|(i, rect)| RangeBatchRequest {
                rect: *rect,
                collect: i % 2 == 0,
            })
            .collect();
        let kernel = index.range_batch_kernel().expect("Zpgm fuses ranges");
        let sharded = kernel.sharded().expect("Zpgm shards its sweep");
        let full = kernel.run_range_batch(&requests);
        for shards in [2usize, 3, 4, 8, 64] {
            let projection = sharded.project_batch(&requests);
            let plan = plan_shard_bounds(&projection.intervals, shards);
            let responses: Vec<RangeBatchResponse> = plan
                .iter()
                .map(|&bounds| sharded.sweep_shard(&requests, &projection, bounds))
                .collect();
            let merged = merge_shard_responses(&requests, &projection, responses);
            assert_eq!(
                merged.outputs, full.outputs,
                "{shards} shards: outputs differ"
            );
            for (qi, (got, want)) in merged.per_query.iter().zip(&full.per_query).enumerate() {
                assert_eq!(
                    got.points_scanned, want.points_scanned,
                    "{shards} shards, request {qi}: comparisons differ"
                );
                assert_eq!(
                    got.leaves_skipped, want.leaves_skipped,
                    "{shards} shards, request {qi}: BIGMIN skips differ"
                );
                assert_eq!(got.results, want.results);
            }
        }
    }

    /// An empty index advertises no sharded capability (there is no address
    /// space to cut), and the flat array declares the flat cost class.
    #[test]
    fn sharded_capability_and_cost_class() {
        let empty = ZOrderSorted::with_default_bits(Vec::new());
        let kernel = empty.range_batch_kernel().expect("kernel exists");
        assert!(kernel.sharded().is_none(), "no address space when empty");
        let index = ZOrderSorted::with_default_bits(dataset(100, 6));
        let kernel = index.range_batch_kernel().expect("kernel exists");
        assert!(kernel.sharded().is_some());
        assert_eq!(kernel.cost_class(), KernelClass::FlatArray);
    }
}
