//! # wazi-baselines
//!
//! The baseline spatial indexes of the WaZI evaluation (Section 6.1), all
//! implementing [`wazi_core::SpatialIndex`]:
//!
//! * [`StrRTree`] — Sort-Tile-Recursive packed R-tree (Leutenegger et al.);
//! * [`CurTree`] — cost-based unbalanced R-tree (Ross et al.), adapted to
//!   point data with a query-weighted RFDE as described in the paper;
//! * [`FloodIndex`] — a simplified two-dimensional Flood grid index
//!   (Nathan et al.) whose column count is tuned on a workload sample;
//! * [`Quasii`] — the converged query-aware cracking index
//!   (Pavlovic et al.);
//! * [`ZOrderSorted`] — a rank-space Z-order sorted array with BIGMIN
//!   skipping, representing the `Zpgm`/`ZM` family that Figure 4 discards.
//!
//! The base Z-index itself lives in `wazi-core` (it shares its implementation
//! with WaZI).
//!
//! ## Fused batch kernels
//!
//! Every baseline also implements the query engine's fused batch kernels
//! ([`wazi_core::RangeBatchKernel`] / [`wazi_core::PointBatchKernel`])
//! over its own layout — an active-set R-tree descent for STR and CUR, an
//! x-slice event sweep for QUASII, a column sweep for Flood, a shared
//! BIGMIN sweep for the sorted Z-order array — so
//! [`wazi_core::QueryEngine`] batch fusion is genuinely cross-index. The
//! kernels obey one contract: answers and per-query work counters are
//! bit-identical to the sequential path, only physical page fetches are
//! shared:
//!
//! ```
//! use wazi_baselines::StrRTree;
//! use wazi_core::{RangeBatchOutput, RangeBatchRequest, SpatialIndex};
//! use wazi_geom::{Point, Rect};
//! use wazi_storage::ExecStats;
//!
//! let points: Vec<Point> = (0..2_000)
//!     .map(|i| Point::new((i % 50) as f64 / 50.0, (i / 50) as f64 / 40.0))
//!     .collect();
//! let index = StrRTree::build(points, 64);
//! let kernel = index.range_batch_kernel().expect("STR fuses range batches");
//!
//! // Two heavily overlapping requests: the batched descent fetches every
//! // shared R-tree page once, while each request keeps its solo walk.
//! let requests = vec![
//!     RangeBatchRequest { rect: Rect::from_coords(0.2, 0.2, 0.6, 0.6), collect: false },
//!     RangeBatchRequest { rect: Rect::from_coords(0.25, 0.25, 0.65, 0.65), collect: false },
//! ];
//! let response = kernel.run_range_batch(&requests);
//!
//! let mut sequential = ExecStats::default();
//! let mut sequential_counts = Vec::new();
//! for request in &requests {
//!     sequential_counts.push(index.range_count(&request.rect, &mut sequential));
//! }
//! assert_eq!(
//!     response.outputs,
//!     sequential_counts.into_iter().map(RangeBatchOutput::Count).collect::<Vec<_>>()
//! );
//! // Shared page fetches never exceed the per-query loop's.
//! assert!(response.shared.pages_scanned < sequential.pages_scanned);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cur;
mod flood;
mod quasii;
mod rtree;
mod str_rtree;
mod zorder_sorted;

pub use cur::CurTree;
pub use flood::FloodIndex;
pub use quasii::Quasii;
pub use str_rtree::StrRTree;
pub use zorder_sorted::ZOrderSorted;
