//! # wazi-baselines
//!
//! The baseline spatial indexes of the WaZI evaluation (Section 6.1), all
//! implementing [`wazi_core::SpatialIndex`]:
//!
//! * [`StrRTree`] — Sort-Tile-Recursive packed R-tree (Leutenegger et al.);
//! * [`CurTree`] — cost-based unbalanced R-tree (Ross et al.), adapted to
//!   point data with a query-weighted RFDE as described in the paper;
//! * [`FloodIndex`] — a simplified two-dimensional Flood grid index
//!   (Nathan et al.) whose column count is tuned on a workload sample;
//! * [`Quasii`] — the converged query-aware cracking index
//!   (Pavlovic et al.);
//! * [`ZOrderSorted`] — a rank-space Z-order sorted array with BIGMIN
//!   skipping, representing the `Zpgm`/`ZM` family that Figure 4 discards.
//!
//! The base Z-index itself lives in `wazi-core` (it shares its implementation
//! with WaZI).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cur;
mod flood;
mod quasii;
mod rtree;
mod str_rtree;
mod zorder_sorted;

pub use cur::CurTree;
pub use flood::FloodIndex;
pub use quasii::Quasii;
pub use str_rtree::StrRTree;
pub use zorder_sorted::ZOrderSorted;
