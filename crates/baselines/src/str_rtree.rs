//! STR: Sort-Tile-Recursive R-tree packing (Leutenegger et al., 1997).

use crate::rtree::PackedRTree;
use wazi_core::{IndexError, PointBatchKernel, RangeBatchKernel, SpatialIndex};
use wazi_geom::{Point, Rect};
use wazi_storage::{ExecStats, PageStore};

/// A packed R-tree whose leaf level is produced by the Sort-Tile-Recursive
/// algorithm: points are sorted by `x` and cut into vertical slices of
/// roughly `sqrt(P)` pages each, then each slice is sorted by `y` and cut
/// into pages of capacity `L`.
#[derive(Debug, Clone)]
pub struct StrRTree {
    tree: PackedRTree,
    leaf_capacity: usize,
}

impl StrRTree {
    /// Bulk-loads an STR R-tree with the given leaf capacity.
    pub fn build(points: Vec<Point>, leaf_capacity: usize) -> Self {
        assert!(leaf_capacity > 0, "leaf capacity must be positive");
        let len = points.len();
        let store = pack_str(points, leaf_capacity);
        Self {
            tree: PackedRTree::from_packed_pages(store, len),
            leaf_capacity,
        }
    }

    /// The leaf capacity the tree was packed with.
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_capacity
    }

    /// Height of the tree.
    pub fn height(&self) -> usize {
        self.tree.height()
    }
}

/// Packs points into a clustered page store using Sort-Tile-Recursive.
pub(crate) fn pack_str(mut points: Vec<Point>, leaf_capacity: usize) -> PageStore {
    let mut store = PageStore::new(leaf_capacity);
    if points.is_empty() {
        return store;
    }
    let page_count = points.len().div_ceil(leaf_capacity);
    let slice_count = (page_count as f64).sqrt().ceil() as usize;
    let slice_size = points.len().div_ceil(slice_count);

    points.sort_unstable_by(|a, b| a.x.total_cmp(&b.x).then_with(|| a.y.total_cmp(&b.y)));
    for slice in points.chunks_mut(slice_size.max(1)) {
        slice.sort_unstable_by(|a, b| a.y.total_cmp(&b.y).then_with(|| a.x.total_cmp(&b.x)));
        for run in slice.chunks(leaf_capacity) {
            store.allocate(run.to_vec());
        }
    }
    store
}

impl SpatialIndex for StrRTree {
    fn name(&self) -> &'static str {
        "STR"
    }

    fn len(&self) -> usize {
        self.tree.len
    }

    fn data_bounds(&self) -> Rect {
        self.tree.root_mbr()
    }

    fn range_query(&self, query: &Rect, stats: &mut ExecStats) -> Vec<Point> {
        let result = self.tree.range_query(query, stats);
        stats.results += result.len() as u64;
        result
    }

    fn range_count(&self, query: &Rect, stats: &mut ExecStats) -> u64 {
        let count = self.tree.range_count(query, stats);
        stats.results += count;
        count
    }

    fn range_for_each(&self, query: &Rect, stats: &mut ExecStats, visit: &mut dyn FnMut(&Point)) {
        stats.results += self.tree.range_for_each(query, stats, visit);
    }

    fn point_query(&self, p: &Point, stats: &mut ExecStats) -> bool {
        let start = std::time::Instant::now();
        let found = self.tree.point_query(p, stats);
        stats.add_scan(start.elapsed());
        if found {
            stats.results += 1;
        }
        found
    }

    fn insert(&mut self, p: Point) -> Result<(), IndexError> {
        if !p.is_finite() {
            return Err(IndexError::InvalidInput(format!("non-finite point {p}")));
        }
        self.tree.insert(p);
        Ok(())
    }

    fn size_bytes(&self) -> usize {
        self.tree.size_bytes()
    }

    fn range_batch_kernel(&self) -> Option<&dyn RangeBatchKernel> {
        Some(&self.tree)
    }

    fn point_batch_kernel(&self) -> Option<&dyn PointBatchKernel> {
        Some(&self.tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    #[test]
    fn str_packing_fills_pages_tightly() {
        let store = pack_str(dataset(1_000, 1), 64);
        assert_eq!(store.total_points(), 1_000);
        assert_eq!(store.page_count(), 1_000_usize.div_ceil(64).max(16));
        // All but the trailing page of each slice are full.
        let full_pages = store.pages().filter(|p| p.len() == 64).count();
        assert!(full_pages >= store.page_count() / 2);
    }

    #[test]
    fn range_queries_match_brute_force() {
        let points = dataset(5_000, 2);
        let index = StrRTree::build(points.clone(), 64);
        assert_eq!(index.len(), 5_000);
        let mut stats = ExecStats::default();
        for query in [
            Rect::from_coords(0.1, 0.2, 0.3, 0.5),
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            Rect::from_coords(0.72, 0.11, 0.78, 0.17),
        ] {
            let mut got = index.range_query(&query, &mut stats);
            got.sort_by(|a, b| a.lex_cmp(b));
            let mut expected: Vec<Point> = points
                .iter()
                .copied()
                .filter(|p| query.contains(p))
                .collect();
            expected.sort_by(|a, b| a.lex_cmp(b));
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn point_queries_and_inserts() {
        let points = dataset(2_000, 3);
        let mut index = StrRTree::build(points.clone(), 64);
        let mut stats = ExecStats::default();
        assert!(index.point_query(&points[17], &mut stats));
        assert!(!index.point_query(&Point::new(1.5, 1.5), &mut stats));

        let new_points = dataset(500, 4);
        for p in &new_points {
            index.insert(*p).expect("insert");
        }
        assert_eq!(index.len(), 2_500);
        for p in new_points.iter().step_by(7) {
            assert!(index.point_query(p, &mut stats));
        }
        assert!(index.insert(Point::new(f64::NAN, 0.0)).is_err());
    }

    #[test]
    fn empty_and_tiny_datasets() {
        let empty = StrRTree::build(Vec::new(), 16);
        let mut stats = ExecStats::default();
        assert!(empty.is_empty());
        assert!(empty.range_query(&Rect::UNIT, &mut stats).is_empty());
        let tiny = StrRTree::build(vec![Point::new(0.5, 0.5)], 16);
        assert_eq!(tiny.range_query(&Rect::UNIT, &mut stats).len(), 1);
        assert_eq!(tiny.height(), 1);
    }

    #[test]
    fn metadata() {
        let index = StrRTree::build(dataset(3_000, 5), 128);
        assert_eq!(index.name(), "STR");
        assert_eq!(index.leaf_capacity(), 128);
        assert!(index.size_bytes() > 0);
        assert!(index.height() >= 2);
    }

    /// The fused batch descent must replicate every query's solo walk —
    /// same points in the same order, same bounding-box checks and point
    /// comparisons — while overlapping queries share page fetches.
    #[test]
    fn fused_range_batch_matches_sequential_and_shares_pages() {
        use wazi_core::{RangeBatchOutput, RangeBatchRequest};
        let index = StrRTree::build(dataset(4_000, 11), 64);
        let kernel = index
            .range_batch_kernel()
            .expect("STR fuses range batches now");
        let rects: Vec<Rect> = (0..20)
            .map(|i| {
                let c = 0.3 + 0.02 * i as f64;
                Rect::from_coords(c - 0.1, c - 0.12, c + 0.1, c + 0.12)
            })
            .collect();
        let requests: Vec<RangeBatchRequest> = rects
            .iter()
            .map(|rect| RangeBatchRequest {
                rect: *rect,
                collect: true,
            })
            .collect();
        let response = kernel.run_range_batch(&requests);
        let mut sequential_pages = 0u64;
        for (qi, rect) in rects.iter().enumerate() {
            let mut stats = ExecStats::default();
            let expected = index.range_query(rect, &mut stats);
            assert_eq!(
                response.outputs[qi],
                RangeBatchOutput::Points(expected),
                "query {qi}: fused points or order differ"
            );
            assert_eq!(response.per_query[qi].bbs_checked, stats.bbs_checked);
            assert_eq!(response.per_query[qi].nodes_visited, stats.nodes_visited);
            assert_eq!(response.per_query[qi].points_scanned, stats.points_scanned);
            assert_eq!(response.per_query[qi].results, stats.results);
            sequential_pages += stats.pages_scanned;
        }
        assert!(
            response.shared.pages_scanned < sequential_pages,
            "overlapping queries must share page fetches ({} fused vs {} sequential)",
            response.shared.pages_scanned,
            sequential_pages
        );
    }

    /// Duplicate probes group onto one page fetch while every probe keeps
    /// the sequential walk's comparisons and answers.
    #[test]
    fn fused_point_batch_groups_duplicate_probes() {
        let points = dataset(2_000, 12);
        let index = StrRTree::build(points.clone(), 64);
        let kernel = index
            .point_batch_kernel()
            .expect("STR probes in batches now");
        let probes = vec![points[5], points[5], points[5], Point::new(2.0, 2.0)];
        let response = wazi_core::run_point_batch(kernel, &probes);
        assert_eq!(response.found, vec![true, true, true, false]);
        let mut sequential = ExecStats::default();
        for probe in &probes {
            index.point_query(probe, &mut sequential);
        }
        let fused_points: u64 = response.per_query.iter().map(|s| s.points_scanned).sum();
        assert_eq!(
            fused_points, sequential.points_scanned,
            "per-probe comparisons must replicate the sequential walk"
        );
        let fused_pages: u64 = response.shared.pages_scanned
            + response
                .per_query
                .iter()
                .map(|s| s.pages_scanned)
                .sum::<u64>();
        assert!(
            fused_pages < sequential.pages_scanned,
            "duplicate probes must share their owning page ({fused_pages} fused vs {} sequential)",
            sequential.pages_scanned
        );
    }
}
