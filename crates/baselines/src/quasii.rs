//! QUASII: QUery-Aware Spatial Incremental Index (Pavlovic et al., 2018).
//!
//! QUASII adapts to the workload through *database cracking*: every query
//! partitions ("cracks") the pieces of data it touches along the query
//! boundaries, one dimension per level of the index, until pieces reach a
//! minimum size. The WaZI evaluation uses a **converged** QUASII index — one
//! that has processed the entire training workload and no longer needs to
//! crack — so construction here replays the training queries and query
//! processing afterwards is read-only.
//!
//! The implementation is a two-level cracker matching the paper's 2-D
//! setting: level one cracks on `x`, level two cracks on `y` within each
//! x-piece.

use wazi_core::{
    run_full_sweep, BatchProjection, IndexError, PointBatchKernel, PointBatchResponse,
    RangeBatchKernel, RangeBatchOutput, RangeBatchRequest, RangeBatchResponse, ShardBounds,
    ShardedRangeBatchKernel, SpatialIndex, SweepInterval,
};
use wazi_geom::{Point, Rect};
use wazi_storage::ExecStats;

/// A contiguous run of points with a known y-interval inside an x-slice.
#[derive(Debug, Clone)]
struct YPiece {
    /// Points of the piece (unsorted within the piece).
    points: Vec<Point>,
    /// Lower y bound of the piece (inclusive).
    y_lo: f64,
    /// Upper y bound of the piece (exclusive, except for the last piece).
    y_hi: f64,
}

/// An x-slice of the cracked index holding its own y-cracked pieces.
#[derive(Debug, Clone)]
struct XSlice {
    x_lo: f64,
    x_hi: f64,
    pieces: Vec<YPiece>,
}

/// The converged QUASII index.
#[derive(Debug, Clone)]
pub struct Quasii {
    slices: Vec<XSlice>,
    len: usize,
    /// Bounding box of the indexed data (the initial uncracked piece).
    space: Rect,
    /// Pieces smaller than this are not cracked further (the piece-size
    /// threshold of the original algorithm).
    min_piece: usize,
}

impl Quasii {
    /// Builds a converged QUASII index by replaying the training workload.
    pub fn build(points: Vec<Point>, training: &[Rect], min_piece: usize) -> Self {
        let min_piece = min_piece.max(1);
        let len = points.len();
        let space = if points.is_empty() {
            Rect::UNIT
        } else {
            Rect::bounding(&points)
        };
        let (x_lo, x_hi, y_lo, y_hi) = (space.lo.x, space.hi.x, space.lo.y, space.hi.y);
        let mut index = Self {
            slices: vec![XSlice {
                x_lo,
                x_hi,
                pieces: vec![YPiece { points, y_lo, y_hi }],
            }],
            len,
            space,
            min_piece,
        };
        for query in training {
            index.crack(query);
        }
        index
    }

    /// The range-scan kernel shared by every execution mode: walks the
    /// x-slices and their y-pieces, pruning by the cracked intervals (the
    /// projection phase), and hands each relevant piece's points to
    /// `on_piece` — no piece list is materialized.
    fn scan_range(&self, query: &Rect, stats: &mut ExecStats, mut on_piece: impl FnMut(&[Point])) {
        let kernel_start = std::time::Instant::now();
        let mut scan_ns = 0u64;
        for slice in &self.slices {
            stats.nodes_visited += 1;
            if slice.x_hi < query.lo.x || slice.x_lo > query.hi.x {
                continue;
            }
            for piece in &slice.pieces {
                stats.bbs_checked += 1;
                if piece.y_hi < query.lo.y || piece.y_lo > query.hi.y {
                    continue;
                }
                let scan_start = std::time::Instant::now();
                stats.pages_scanned += 1;
                stats.points_scanned += piece.points.len() as u64;
                on_piece(&piece.points);
                scan_ns += scan_start.elapsed().as_nanos() as u64;
            }
        }
        stats.charge_kernel(kernel_start.elapsed().as_nanos() as u64, scan_ns);
    }

    /// Number of x-slices after convergence.
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Total number of y-pieces after convergence (the "fractured data
    /// layout" the paper attributes QUASII's slow point queries to).
    pub fn piece_count(&self) -> usize {
        self.slices.iter().map(|s| s.pieces.len()).sum()
    }

    /// Cracks the index along the boundaries of one query.
    fn crack(&mut self, query: &Rect) {
        self.crack_x(query.lo.x);
        self.crack_x(query.hi.x);
        for slice in &mut self.slices {
            if slice.x_hi < query.lo.x || slice.x_lo > query.hi.x {
                continue;
            }
            crack_slice_y(slice, query.lo.y, self.min_piece);
            crack_slice_y(slice, query.hi.y, self.min_piece);
        }
    }

    /// Splits the x-slice containing `x` at `x` (when the slice is large
    /// enough to crack).
    fn crack_x(&mut self, x: f64) {
        let Some(position) = self.slices.iter().position(|s| x > s.x_lo && x < s.x_hi) else {
            return;
        };
        let slice_size: usize = self.slices[position]
            .pieces
            .iter()
            .map(|p| p.points.len())
            .sum();
        if slice_size <= self.min_piece {
            return;
        }
        let slice = self.slices.remove(position);
        let mut left_pieces = Vec::with_capacity(slice.pieces.len());
        let mut right_pieces = Vec::with_capacity(slice.pieces.len());
        for piece in slice.pieces {
            let (left, right): (Vec<Point>, Vec<Point>) =
                piece.points.into_iter().partition(|p| p.x <= x);
            if !left.is_empty() || right.is_empty() {
                left_pieces.push(YPiece {
                    points: left,
                    y_lo: piece.y_lo,
                    y_hi: piece.y_hi,
                });
            }
            if !right.is_empty() {
                right_pieces.push(YPiece {
                    points: right,
                    y_lo: piece.y_lo,
                    y_hi: piece.y_hi,
                });
            }
        }
        if right_pieces.is_empty() {
            right_pieces.push(YPiece {
                points: Vec::new(),
                y_lo: 0.0,
                y_hi: 0.0,
            });
        }
        if left_pieces.is_empty() {
            left_pieces.push(YPiece {
                points: Vec::new(),
                y_lo: 0.0,
                y_hi: 0.0,
            });
        }
        self.slices.insert(
            position,
            XSlice {
                x_lo: x,
                x_hi: slice.x_hi,
                pieces: right_pieces,
            },
        );
        self.slices.insert(
            position,
            XSlice {
                x_lo: slice.x_lo,
                x_hi: x,
                pieces: left_pieces,
            },
        );
    }
}

/// Splits every y-piece of the slice containing `y` at `y` (when larger than
/// the minimum piece size).
fn crack_slice_y(slice: &mut XSlice, y: f64, min_piece: usize) {
    let Some(position) = slice
        .pieces
        .iter()
        .position(|p| y > p.y_lo && y < p.y_hi && p.points.len() > min_piece)
    else {
        return;
    };
    let piece = slice.pieces.remove(position);
    let (low, high): (Vec<Point>, Vec<Point>) = piece.points.into_iter().partition(|p| p.y <= y);
    slice.pieces.insert(
        position,
        YPiece {
            points: high,
            y_lo: y,
            y_hi: piece.y_hi,
        },
    );
    slice.pieces.insert(
        position,
        YPiece {
            points: low,
            y_lo: piece.y_lo,
            y_hi: y,
        },
    );
}

impl SpatialIndex for Quasii {
    fn name(&self) -> &'static str {
        "QUASII"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn data_bounds(&self) -> Rect {
        self.space
    }

    fn range_query(&self, query: &Rect, stats: &mut ExecStats) -> Vec<Point> {
        let mut result = Vec::new();
        self.scan_range(query, stats, |points| {
            for p in points {
                if query.contains(p) {
                    result.push(*p);
                }
            }
        });
        stats.results += result.len() as u64;
        result
    }

    fn range_count(&self, query: &Rect, stats: &mut ExecStats) -> u64 {
        let mut count = 0u64;
        self.scan_range(query, stats, |points| {
            for p in points {
                count += u64::from(query.contains(p));
            }
        });
        stats.results += count;
        count
    }

    fn range_for_each(&self, query: &Rect, stats: &mut ExecStats, visit: &mut dyn FnMut(&Point)) {
        let mut matched = 0u64;
        self.scan_range(query, stats, |points| {
            for p in points {
                if query.contains(p) {
                    matched += 1;
                    visit(p);
                }
            }
        });
        stats.results += matched;
    }

    fn point_query(&self, p: &Point, stats: &mut ExecStats) -> bool {
        let start = std::time::Instant::now();
        let mut found = false;
        'outer: for slice in &self.slices {
            stats.nodes_visited += 1;
            if p.x < slice.x_lo || p.x > slice.x_hi {
                continue;
            }
            for piece in &slice.pieces {
                stats.bbs_checked += 1;
                if p.y < piece.y_lo || p.y > piece.y_hi {
                    continue;
                }
                stats.points_scanned += piece.points.len() as u64;
                if piece.points.contains(p) {
                    found = true;
                    break 'outer;
                }
            }
        }
        stats.add_scan(start.elapsed());
        if found {
            stats.results += 1;
        }
        found
    }

    fn insert(&mut self, _p: Point) -> Result<(), IndexError> {
        // The evaluation uses a converged (read-only) QUASII instance;
        // incremental insertion is outside the replicated scope. The typed
        // error lets the versioned writer fall back to a full rebuild.
        Err(IndexError::UpdateUnsupported {
            index: "QUASII",
            op: "insert",
        })
    }

    fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.slices.len() * std::mem::size_of::<XSlice>()
            + self.piece_count() * std::mem::size_of::<YPiece>()
    }

    fn range_batch_kernel(&self) -> Option<&dyn RangeBatchKernel> {
        Some(self)
    }

    fn point_batch_kernel(&self) -> Option<&dyn PointBatchKernel> {
        Some(self)
    }
}

impl Quasii {
    /// Index range of x-slices overlapping `[x0, x1]`, `None` when the
    /// query lies entirely outside the cracked x-range. The slices partition
    /// the x axis contiguously in ascending order, so the overlapping set is
    /// always one contiguous run locatable by two binary searches.
    fn slice_interval(&self, x0: f64, x1: f64) -> Option<(u32, u32)> {
        let lo = self.slices.partition_point(|s| s.x_hi < x0);
        let hi = self.slices.partition_point(|s| s.x_lo <= x1);
        if lo < hi {
            Some((lo as u32, hi as u32 - 1))
        } else {
            None
        }
    }
}

impl RangeBatchKernel for Quasii {
    fn run_range_batch(&self, requests: &[RangeBatchRequest]) -> RangeBatchResponse {
        run_full_sweep(self, requests, self.slices.len() as u32)
    }

    fn sharded(&self) -> Option<&dyn ShardedRangeBatchKernel> {
        Some(self)
    }
}

/// QUASII's fused batch kernel: the sweep address space is the x-slice
/// list. A y-piece relevant to `k` of a slice's active queries is scanned
/// once per batch instead of once per query; per-query charges (the
/// per-slice traversal tick, per-piece bounding-box checks, point
/// comparisons) replicate the sequential [`Quasii`] scan exactly, so fused
/// counters never exceed sequential ones.
impl ShardedRangeBatchKernel for Quasii {
    /// Maps every request onto its contiguous run of overlapping x-slices
    /// (two binary searches, charged to nothing — the sequential scan
    /// charges its slice walk per slice, which the sweep replicates).
    /// Requests overlapping no slice project onto `[0, 0]` so they still
    /// have exactly one owner; the sweep re-checks x-overlap per slice, so
    /// a conservative interval never changes any counter.
    fn project_batch(&self, requests: &[RangeBatchRequest]) -> BatchProjection {
        let start = std::time::Instant::now();
        let intervals = requests
            .iter()
            .map(|request| {
                let (lo, hi) = self
                    .slice_interval(request.rect.lo.x, request.rect.hi.x)
                    .unwrap_or((0, 0));
                SweepInterval { lo, hi }
            })
            .collect();
        BatchProjection {
            intervals,
            per_query: vec![ExecStats::default(); requests.len()],
            elapsed_ns: start.elapsed().as_nanos() as u64,
        }
    }

    /// Sweeps the requests owned by one shard of the slice list
    /// (owner-based: the shard containing a request's first overlapping
    /// slice walks its whole run). The sequential scan ticks `nodes_visited`
    /// once per slice for *every* query — overlap or not — so each owned
    /// request is charged the full slice count up front; piece work then
    /// happens only inside the request's overlapping run, exactly as the
    /// solo walk charges it.
    fn sweep_shard(
        &self,
        requests: &[RangeBatchRequest],
        projection: &BatchProjection,
        bounds: ShardBounds,
    ) -> RangeBatchResponse {
        let mut response = RangeBatchResponse::zeroed(requests);
        let slices = self.slices.len() as u32;
        if bounds.start >= bounds.end || bounds.start >= slices {
            return response;
        }
        let mut entries: Vec<(u32, u32, usize)> = Vec::new();
        for (qi, interval) in projection.intervals.iter().enumerate() {
            if interval.lo < bounds.start || interval.lo >= bounds.end {
                continue;
            }
            // The full-slice-walk tick of the sequential scan.
            response.per_query[qi].nodes_visited += u64::from(slices);
            entries.push((interval.lo, interval.hi.min(slices - 1), qi));
        }
        if entries.is_empty() {
            return response;
        }
        entries.sort_unstable();

        let kernel_start = std::time::Instant::now();
        let mut scan_ns = 0u64;
        let mut active: Vec<(u32, usize)> = Vec::new();
        let mut overlapping: Vec<usize> = Vec::new();
        let mut needing: Vec<usize> = Vec::new();
        let mut next_entry = 0usize;
        let mut at = entries[0].0;
        loop {
            while next_entry < entries.len() && entries[next_entry].0 <= at {
                let (_, hi, qi) = entries[next_entry];
                active.push((hi, qi));
                next_entry += 1;
            }
            active.retain(|&(hi, _)| hi >= at);
            if active.is_empty() {
                match entries.get(next_entry) {
                    Some(&(lo, _, _)) => {
                        at = lo;
                        continue;
                    }
                    None => break,
                }
            }
            let slice = &self.slices[at as usize];
            overlapping.clear();
            for &(_, qi) in &active {
                let rect = &requests[qi].rect;
                // Re-derive the sequential scan's x test (charged nothing
                // there either); conservative intervals cost nothing here.
                if slice.x_hi >= rect.lo.x && slice.x_lo <= rect.hi.x {
                    overlapping.push(qi);
                }
            }
            for piece in &slice.pieces {
                needing.clear();
                for &qi in &overlapping {
                    let rect = &requests[qi].rect;
                    response.per_query[qi].bbs_checked += 1;
                    if piece.y_hi >= rect.lo.y && piece.y_lo <= rect.hi.y {
                        needing.push(qi);
                    }
                }
                if needing.is_empty() {
                    continue;
                }
                // One pass over the piece on behalf of every relevant
                // request; comparisons stay attributed per request.
                let scan_start = std::time::Instant::now();
                response.shared.pages_scanned += 1;
                let points = &piece.points;
                for &qi in &needing {
                    let rect = requests[qi].rect;
                    let stats = &mut response.per_query[qi];
                    stats.points_scanned += points.len() as u64;
                    match &mut response.outputs[qi] {
                        RangeBatchOutput::Points(out) => {
                            let before = out.len();
                            for p in points {
                                if rect.contains(p) {
                                    out.push(*p);
                                }
                            }
                            stats.results += (out.len() - before) as u64;
                        }
                        RangeBatchOutput::Count(count) => {
                            let mut matches = 0u64;
                            for p in points {
                                matches += u64::from(rect.contains(p));
                            }
                            *count += matches;
                            stats.results += matches;
                        }
                    }
                }
                scan_ns += scan_start.elapsed().as_nanos() as u64;
            }
            at += 1;
            if at >= slices {
                break;
            }
        }
        response
            .shared
            .charge_kernel(kernel_start.elapsed().as_nanos() as u64, scan_ns);
        response
    }

    /// Points per x-slice, in slice order: the scan-work weights the
    /// engine's work-weighted shard planner balances.
    fn address_counts(&self) -> Option<Vec<u64>> {
        Some(
            self.slices
                .iter()
                .map(|s| s.pieces.iter().map(|p| p.points.len() as u64).sum())
                .collect(),
        )
    }
}

/// Sentinel address for probes outside every x-slice: their walk scans the
/// whole slice list without entering any, so there is no piece to share.
const NO_PROBE_SLICE: u64 = u64::MAX;

/// QUASII's fused point-probe kernel. The cracked layout has no page
/// indirection to share — the sequential probe charges no page visits, only
/// its slice walk and piece comparisons — so the batched win is ordering:
/// probes grouped by their first containing x-slice replay their walks over
/// adjacent slices instead of bouncing across the cracked layout in arrival
/// order. Each probe replays [`Quasii`]'s sequential `point_query` loop
/// verbatim (early exit included), so answers and per-probe counters are
/// bit-identical.
impl PointBatchKernel for Quasii {
    fn locate_probes(&self, probes: &[Point], _per_query: &mut [ExecStats]) -> Vec<u64> {
        probes
            .iter()
            .map(|p| {
                let at = self.slices.partition_point(|s| s.x_hi < p.x);
                match self.slices.get(at) {
                    Some(slice) if p.x >= slice.x_lo => at as u64,
                    _ => NO_PROBE_SLICE,
                }
            })
            .collect()
    }

    fn probe_page(
        &self,
        _address: u64,
        group: &[(usize, Point)],
        response: &mut PointBatchResponse,
    ) {
        for &(slot, p) in group {
            let stats = &mut response.per_query[slot];
            let mut found = false;
            'outer: for slice in &self.slices {
                stats.nodes_visited += 1;
                if p.x < slice.x_lo || p.x > slice.x_hi {
                    continue;
                }
                for piece in &slice.pieces {
                    stats.bbs_checked += 1;
                    if p.y < piece.y_lo || p.y > piece.y_hi {
                        continue;
                    }
                    stats.points_scanned += piece.points.len() as u64;
                    if piece.points.contains(&p) {
                        found = true;
                        break 'outer;
                    }
                }
            }
            if found {
                stats.results += 1;
                response.found[slot] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn workload(n: usize, seed: u64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let c = Point::new(0.3 + rng.gen::<f64>() * 0.4, 0.3 + rng.gen::<f64>() * 0.4);
                Rect::query_box(&Rect::UNIT, c, 0.001, 1.0)
            })
            .collect()
    }

    #[test]
    fn converged_index_answers_training_and_unseen_queries_exactly() {
        let points = dataset(5_000, 1);
        let training = workload(200, 2);
        let index = Quasii::build(points.clone(), &training, 64);
        assert_eq!(index.len(), 5_000);
        let mut stats = ExecStats::default();
        let unseen = workload(20, 3);
        for query in training.iter().take(30).chain(unseen.iter()) {
            let mut got = index.range_query(query, &mut stats);
            got.sort_by(|a, b| a.lex_cmp(b));
            let mut expected: Vec<Point> = points
                .iter()
                .copied()
                .filter(|p| query.contains(p))
                .collect();
            expected.sort_by(|a, b| a.lex_cmp(b));
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn cracking_fractures_the_layout_around_the_workload() {
        let points = dataset(5_000, 4);
        let training = workload(200, 5);
        let index = Quasii::build(points.clone(), &training, 64);
        assert!(
            index.slice_count() > 10,
            "x cracks: {}",
            index.slice_count()
        );
        assert!(index.piece_count() > index.slice_count());

        // Cracking must not lose or duplicate points.
        let total: usize = index
            .slices
            .iter()
            .flat_map(|s| s.pieces.iter())
            .map(|p| p.points.len())
            .sum();
        assert_eq!(total, 5_000);
    }

    #[test]
    fn converged_index_scans_few_points_on_training_queries() {
        let points = dataset(10_000, 6);
        let training = workload(400, 7);
        let index = Quasii::build(points.clone(), &training, 64);
        let mut stats = ExecStats::default();
        for q in &training {
            index.range_query(q, &mut stats);
        }
        // Each training query touches only cracked pieces aligned with some
        // query boundary; on average that is far fewer points than a full
        // scan.
        let mean_scanned = stats.points_scanned as f64 / training.len() as f64;
        assert!(
            mean_scanned < points.len() as f64 * 0.05,
            "mean scanned {mean_scanned} is too large"
        );
    }

    #[test]
    fn point_queries_and_unsupported_insert() {
        let points = dataset(2_000, 8);
        let mut index = Quasii::build(points.clone(), &workload(100, 9), 64);
        let mut stats = ExecStats::default();
        assert!(index.point_query(&points[7], &mut stats));
        assert!(!index.point_query(&Point::new(2.0, 2.0), &mut stats));
        assert!(matches!(
            index.insert(Point::new(0.5, 0.5)),
            Err(IndexError::UpdateUnsupported {
                index: "QUASII",
                op: "insert"
            })
        ));
        assert_eq!(index.name(), "QUASII");
        assert!(index.size_bytes() > 0);
    }

    /// The fused slice sweep must replicate every query's solo scan — the
    /// full-slice-walk tick, per-piece bounding-box checks, comparisons and
    /// result order — while pieces relevant to several queries are scanned
    /// once per batch.
    #[test]
    fn fused_range_batch_matches_sequential_and_shares_pieces() {
        use wazi_core::{RangeBatchOutput, RangeBatchRequest};
        let points = dataset(6_000, 31);
        let training = workload(250, 32);
        let index = Quasii::build(points, &training, 64);
        let kernel = index
            .range_batch_kernel()
            .expect("QUASII fuses range batches now");
        // Training-shaped (aligned with cracks) plus unseen queries.
        let rects: Vec<Rect> = training
            .iter()
            .take(20)
            .chain(workload(10, 33).iter())
            .copied()
            .collect();
        let requests: Vec<RangeBatchRequest> = rects
            .iter()
            .map(|rect| RangeBatchRequest {
                rect: *rect,
                collect: true,
            })
            .collect();
        let response = kernel.run_range_batch(&requests);
        let mut sequential_pages = 0u64;
        for (qi, rect) in rects.iter().enumerate() {
            let mut stats = ExecStats::default();
            let expected = index.range_query(rect, &mut stats);
            assert_eq!(
                response.outputs[qi],
                RangeBatchOutput::Points(expected),
                "query {qi}: fused points or order differ"
            );
            assert_eq!(response.per_query[qi].nodes_visited, stats.nodes_visited);
            assert_eq!(response.per_query[qi].bbs_checked, stats.bbs_checked);
            assert_eq!(response.per_query[qi].points_scanned, stats.points_scanned);
            sequential_pages += stats.pages_scanned;
        }
        assert!(
            response.shared.pages_scanned < sequential_pages,
            "the concentrated workload must share piece scans ({} fused vs {} sequential)",
            response.shared.pages_scanned,
            sequential_pages
        );
    }

    /// The fused probe kernel replays the sequential cracked-layout walk
    /// verbatim, early exit included.
    #[test]
    fn fused_point_batch_replicates_the_sequential_walk() {
        let points = dataset(3_000, 34);
        let index = Quasii::build(points.clone(), &workload(150, 35), 64);
        let kernel = index
            .point_batch_kernel()
            .expect("QUASII probes in batches now");
        let probes = vec![
            points[11],
            points[11],
            Point::new(0.987_6, 0.012_3),
            Point::new(5.0, 5.0),
        ];
        let response = wazi_core::run_point_batch(kernel, &probes);
        let mut sequential = ExecStats::default();
        let mut expected = Vec::new();
        for probe in &probes {
            expected.push(index.point_query(probe, &mut sequential));
        }
        assert_eq!(response.found, expected);
        let merged: u64 = response.per_query.iter().map(|s| s.points_scanned).sum();
        assert_eq!(merged, sequential.points_scanned);
        let nodes: u64 = response.per_query.iter().map(|s| s.nodes_visited).sum();
        assert_eq!(nodes, sequential.nodes_visited);
    }

    #[test]
    fn empty_dataset_and_empty_workload() {
        let index = Quasii::build(Vec::new(), &[], 64);
        let mut stats = ExecStats::default();
        assert!(index.range_query(&Rect::UNIT, &mut stats).is_empty());

        let points = dataset(1_000, 10);
        let no_training = Quasii::build(points.clone(), &[], 64);
        let got = no_training.range_query(&Rect::UNIT, &mut stats);
        assert_eq!(got.len(), 1_000);
        assert_eq!(no_training.slice_count(), 1);
    }
}
