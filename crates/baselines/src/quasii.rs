//! QUASII: QUery-Aware Spatial Incremental Index (Pavlovic et al., 2018).
//!
//! QUASII adapts to the workload through *database cracking*: every query
//! partitions ("cracks") the pieces of data it touches along the query
//! boundaries, one dimension per level of the index, until pieces reach a
//! minimum size. The WaZI evaluation uses a **converged** QUASII index — one
//! that has processed the entire training workload and no longer needs to
//! crack — so construction here replays the training queries and query
//! processing afterwards is read-only.
//!
//! The implementation is a two-level cracker matching the paper's 2-D
//! setting: level one cracks on `x`, level two cracks on `y` within each
//! x-piece.

use wazi_core::{IndexError, SpatialIndex};
use wazi_geom::{Point, Rect};
use wazi_storage::ExecStats;

/// A contiguous run of points with a known y-interval inside an x-slice.
#[derive(Debug, Clone)]
struct YPiece {
    /// Points of the piece (unsorted within the piece).
    points: Vec<Point>,
    /// Lower y bound of the piece (inclusive).
    y_lo: f64,
    /// Upper y bound of the piece (exclusive, except for the last piece).
    y_hi: f64,
}

/// An x-slice of the cracked index holding its own y-cracked pieces.
#[derive(Debug, Clone)]
struct XSlice {
    x_lo: f64,
    x_hi: f64,
    pieces: Vec<YPiece>,
}

/// The converged QUASII index.
#[derive(Debug, Clone)]
pub struct Quasii {
    slices: Vec<XSlice>,
    len: usize,
    /// Bounding box of the indexed data (the initial uncracked piece).
    space: Rect,
    /// Pieces smaller than this are not cracked further (the piece-size
    /// threshold of the original algorithm).
    min_piece: usize,
}

impl Quasii {
    /// Builds a converged QUASII index by replaying the training workload.
    pub fn build(points: Vec<Point>, training: &[Rect], min_piece: usize) -> Self {
        let min_piece = min_piece.max(1);
        let len = points.len();
        let space = if points.is_empty() {
            Rect::UNIT
        } else {
            Rect::bounding(&points)
        };
        let (x_lo, x_hi, y_lo, y_hi) = (space.lo.x, space.hi.x, space.lo.y, space.hi.y);
        let mut index = Self {
            slices: vec![XSlice {
                x_lo,
                x_hi,
                pieces: vec![YPiece { points, y_lo, y_hi }],
            }],
            len,
            space,
            min_piece,
        };
        for query in training {
            index.crack(query);
        }
        index
    }

    /// The range-scan kernel shared by every execution mode: walks the
    /// x-slices and their y-pieces, pruning by the cracked intervals (the
    /// projection phase), and hands each relevant piece's points to
    /// `on_piece` — no piece list is materialized.
    fn scan_range(&self, query: &Rect, stats: &mut ExecStats, mut on_piece: impl FnMut(&[Point])) {
        let kernel_start = std::time::Instant::now();
        let mut scan_ns = 0u64;
        for slice in &self.slices {
            stats.nodes_visited += 1;
            if slice.x_hi < query.lo.x || slice.x_lo > query.hi.x {
                continue;
            }
            for piece in &slice.pieces {
                stats.bbs_checked += 1;
                if piece.y_hi < query.lo.y || piece.y_lo > query.hi.y {
                    continue;
                }
                let scan_start = std::time::Instant::now();
                stats.pages_scanned += 1;
                stats.points_scanned += piece.points.len() as u64;
                on_piece(&piece.points);
                scan_ns += scan_start.elapsed().as_nanos() as u64;
            }
        }
        stats.charge_kernel(kernel_start.elapsed().as_nanos() as u64, scan_ns);
    }

    /// Number of x-slices after convergence.
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Total number of y-pieces after convergence (the "fractured data
    /// layout" the paper attributes QUASII's slow point queries to).
    pub fn piece_count(&self) -> usize {
        self.slices.iter().map(|s| s.pieces.len()).sum()
    }

    /// Cracks the index along the boundaries of one query.
    fn crack(&mut self, query: &Rect) {
        self.crack_x(query.lo.x);
        self.crack_x(query.hi.x);
        for slice in &mut self.slices {
            if slice.x_hi < query.lo.x || slice.x_lo > query.hi.x {
                continue;
            }
            crack_slice_y(slice, query.lo.y, self.min_piece);
            crack_slice_y(slice, query.hi.y, self.min_piece);
        }
    }

    /// Splits the x-slice containing `x` at `x` (when the slice is large
    /// enough to crack).
    fn crack_x(&mut self, x: f64) {
        let Some(position) = self.slices.iter().position(|s| x > s.x_lo && x < s.x_hi) else {
            return;
        };
        let slice_size: usize = self.slices[position]
            .pieces
            .iter()
            .map(|p| p.points.len())
            .sum();
        if slice_size <= self.min_piece {
            return;
        }
        let slice = self.slices.remove(position);
        let mut left_pieces = Vec::with_capacity(slice.pieces.len());
        let mut right_pieces = Vec::with_capacity(slice.pieces.len());
        for piece in slice.pieces {
            let (left, right): (Vec<Point>, Vec<Point>) =
                piece.points.into_iter().partition(|p| p.x <= x);
            if !left.is_empty() || right.is_empty() {
                left_pieces.push(YPiece {
                    points: left,
                    y_lo: piece.y_lo,
                    y_hi: piece.y_hi,
                });
            }
            if !right.is_empty() {
                right_pieces.push(YPiece {
                    points: right,
                    y_lo: piece.y_lo,
                    y_hi: piece.y_hi,
                });
            }
        }
        if right_pieces.is_empty() {
            right_pieces.push(YPiece {
                points: Vec::new(),
                y_lo: 0.0,
                y_hi: 0.0,
            });
        }
        if left_pieces.is_empty() {
            left_pieces.push(YPiece {
                points: Vec::new(),
                y_lo: 0.0,
                y_hi: 0.0,
            });
        }
        self.slices.insert(
            position,
            XSlice {
                x_lo: x,
                x_hi: slice.x_hi,
                pieces: right_pieces,
            },
        );
        self.slices.insert(
            position,
            XSlice {
                x_lo: slice.x_lo,
                x_hi: x,
                pieces: left_pieces,
            },
        );
    }
}

/// Splits every y-piece of the slice containing `y` at `y` (when larger than
/// the minimum piece size).
fn crack_slice_y(slice: &mut XSlice, y: f64, min_piece: usize) {
    let Some(position) = slice
        .pieces
        .iter()
        .position(|p| y > p.y_lo && y < p.y_hi && p.points.len() > min_piece)
    else {
        return;
    };
    let piece = slice.pieces.remove(position);
    let (low, high): (Vec<Point>, Vec<Point>) = piece.points.into_iter().partition(|p| p.y <= y);
    slice.pieces.insert(
        position,
        YPiece {
            points: high,
            y_lo: y,
            y_hi: piece.y_hi,
        },
    );
    slice.pieces.insert(
        position,
        YPiece {
            points: low,
            y_lo: piece.y_lo,
            y_hi: y,
        },
    );
}

impl SpatialIndex for Quasii {
    fn name(&self) -> &'static str {
        "QUASII"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn data_bounds(&self) -> Rect {
        self.space
    }

    fn range_query(&self, query: &Rect, stats: &mut ExecStats) -> Vec<Point> {
        let mut result = Vec::new();
        self.scan_range(query, stats, |points| {
            for p in points {
                if query.contains(p) {
                    result.push(*p);
                }
            }
        });
        stats.results += result.len() as u64;
        result
    }

    fn range_count(&self, query: &Rect, stats: &mut ExecStats) -> u64 {
        let mut count = 0u64;
        self.scan_range(query, stats, |points| {
            for p in points {
                count += u64::from(query.contains(p));
            }
        });
        stats.results += count;
        count
    }

    fn range_for_each(&self, query: &Rect, stats: &mut ExecStats, visit: &mut dyn FnMut(&Point)) {
        let mut matched = 0u64;
        self.scan_range(query, stats, |points| {
            for p in points {
                if query.contains(p) {
                    matched += 1;
                    visit(p);
                }
            }
        });
        stats.results += matched;
    }

    fn point_query(&self, p: &Point, stats: &mut ExecStats) -> bool {
        let start = std::time::Instant::now();
        let mut found = false;
        'outer: for slice in &self.slices {
            stats.nodes_visited += 1;
            if p.x < slice.x_lo || p.x > slice.x_hi {
                continue;
            }
            for piece in &slice.pieces {
                stats.bbs_checked += 1;
                if p.y < piece.y_lo || p.y > piece.y_hi {
                    continue;
                }
                stats.points_scanned += piece.points.len() as u64;
                if piece.points.contains(p) {
                    found = true;
                    break 'outer;
                }
            }
        }
        stats.add_scan(start.elapsed());
        if found {
            stats.results += 1;
        }
        found
    }

    fn insert(&mut self, _p: Point) -> Result<(), IndexError> {
        // The evaluation uses a converged (read-only) QUASII instance;
        // incremental insertion is outside the replicated scope.
        Err(IndexError::Unsupported("insert into converged QUASII"))
    }

    fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.slices.len() * std::mem::size_of::<XSlice>()
            + self.piece_count() * std::mem::size_of::<YPiece>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn workload(n: usize, seed: u64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let c = Point::new(0.3 + rng.gen::<f64>() * 0.4, 0.3 + rng.gen::<f64>() * 0.4);
                Rect::query_box(&Rect::UNIT, c, 0.001, 1.0)
            })
            .collect()
    }

    #[test]
    fn converged_index_answers_training_and_unseen_queries_exactly() {
        let points = dataset(5_000, 1);
        let training = workload(200, 2);
        let index = Quasii::build(points.clone(), &training, 64);
        assert_eq!(index.len(), 5_000);
        let mut stats = ExecStats::default();
        let unseen = workload(20, 3);
        for query in training.iter().take(30).chain(unseen.iter()) {
            let mut got = index.range_query(query, &mut stats);
            got.sort_by(|a, b| a.lex_cmp(b));
            let mut expected: Vec<Point> = points
                .iter()
                .copied()
                .filter(|p| query.contains(p))
                .collect();
            expected.sort_by(|a, b| a.lex_cmp(b));
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn cracking_fractures_the_layout_around_the_workload() {
        let points = dataset(5_000, 4);
        let training = workload(200, 5);
        let index = Quasii::build(points.clone(), &training, 64);
        assert!(
            index.slice_count() > 10,
            "x cracks: {}",
            index.slice_count()
        );
        assert!(index.piece_count() > index.slice_count());

        // Cracking must not lose or duplicate points.
        let total: usize = index
            .slices
            .iter()
            .flat_map(|s| s.pieces.iter())
            .map(|p| p.points.len())
            .sum();
        assert_eq!(total, 5_000);
    }

    #[test]
    fn converged_index_scans_few_points_on_training_queries() {
        let points = dataset(10_000, 6);
        let training = workload(400, 7);
        let index = Quasii::build(points.clone(), &training, 64);
        let mut stats = ExecStats::default();
        for q in &training {
            index.range_query(q, &mut stats);
        }
        // Each training query touches only cracked pieces aligned with some
        // query boundary; on average that is far fewer points than a full
        // scan.
        let mean_scanned = stats.points_scanned as f64 / training.len() as f64;
        assert!(
            mean_scanned < points.len() as f64 * 0.05,
            "mean scanned {mean_scanned} is too large"
        );
    }

    #[test]
    fn point_queries_and_unsupported_insert() {
        let points = dataset(2_000, 8);
        let mut index = Quasii::build(points.clone(), &workload(100, 9), 64);
        let mut stats = ExecStats::default();
        assert!(index.point_query(&points[7], &mut stats));
        assert!(!index.point_query(&Point::new(2.0, 2.0), &mut stats));
        assert!(matches!(
            index.insert(Point::new(0.5, 0.5)),
            Err(IndexError::Unsupported(_))
        ));
        assert_eq!(index.name(), "QUASII");
        assert!(index.size_bytes() > 0);
    }

    #[test]
    fn empty_dataset_and_empty_workload() {
        let index = Quasii::build(Vec::new(), &[], 64);
        let mut stats = ExecStats::default();
        assert!(index.range_query(&Rect::UNIT, &mut stats).is_empty());

        let points = dataset(1_000, 10);
        let no_training = Quasii::build(points.clone(), &[], 64);
        let got = no_training.range_query(&Rect::UNIT, &mut stats);
        assert_eq!(got.len(), 1_000);
        assert_eq!(no_training.slice_count(), 1);
    }
}
