//! Flood: a learned grid index (Nathan et al., 2020), simplified to two
//! dimensions as described in Section 6.1 of the WaZI paper.
//!
//! The layout is a one-dimensional grid of columns along the x axis; within
//! each column, points are sorted by y. Range queries identify the columns
//! overlapping the query's x extent and binary-search the y range inside each
//! column ("Flood performs the fastest projection ... as it does not perform
//! a tree traversal"). The *learned* part is the layout optimisation: the
//! number of columns is chosen by measuring candidate layouts on a sub-sample
//! of the training workload and keeping the cheapest one.

use wazi_core::{
    run_full_sweep, BatchProjection, IndexError, PointBatchKernel, PointBatchResponse,
    RangeBatchKernel, RangeBatchOutput, RangeBatchRequest, RangeBatchResponse, ShardBounds,
    ShardedRangeBatchKernel, SpatialIndex, SweepInterval,
};
use wazi_geom::{Point, Rect};
use wazi_storage::ExecStats;

/// Candidate column counts evaluated during layout optimisation, expressed as
/// multipliers of `sqrt(N / L)`.
const CANDIDATE_FACTORS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// Number of training queries measured per candidate layout.
const LAYOUT_SAMPLE: usize = 100;

/// A simplified two-dimensional Flood index.
#[derive(Debug, Clone)]
pub struct FloodIndex {
    /// Column boundaries on the x axis (length `columns + 1`).
    boundaries: Vec<f64>,
    /// Per-column points sorted by y.
    columns: Vec<Vec<Point>>,
    len: usize,
    space: Rect,
    chosen_columns: usize,
}

impl FloodIndex {
    /// Builds a Flood index, choosing the column count by evaluating the
    /// candidate layouts on (a sample of) the training workload.
    pub fn build(points: Vec<Point>, queries: &[Rect], leaf_capacity: usize) -> Self {
        assert!(leaf_capacity > 0, "leaf capacity must be positive");
        let space = if points.is_empty() {
            Rect::UNIT
        } else {
            Rect::bounding(&points)
        };
        let base_columns =
            ((points.len() as f64 / leaf_capacity as f64).sqrt().ceil() as usize).max(1);

        let sample: Vec<Rect> = queries.iter().take(LAYOUT_SAMPLE).copied().collect();
        let mut best: Option<(usize, u64)> = None;
        for factor in CANDIDATE_FACTORS {
            let columns = ((base_columns as f64 * factor).round() as usize).max(1);
            let candidate = Self::with_columns(points.clone(), columns, space);
            let cost = candidate.layout_cost(&sample);
            if best.is_none_or(|(_, c)| cost < c) {
                best = Some((columns, cost));
            }
        }
        let columns = best.map_or(base_columns, |(c, _)| c);
        Self::with_columns(points, columns, space)
    }

    /// Builds the index with a fixed number of columns (no layout search).
    pub fn with_columns(points: Vec<Point>, columns: usize, space: Rect) -> Self {
        let columns = columns.max(1);
        let len = points.len();
        let width = space.width().max(f64::MIN_POSITIVE);
        let boundaries: Vec<f64> = (0..=columns)
            .map(|i| space.lo.x + width * i as f64 / columns as f64)
            .collect();
        let mut buckets: Vec<Vec<Point>> = vec![Vec::new(); columns];
        for p in points {
            let column = column_of(&boundaries, p.x);
            buckets[column].push(p);
        }
        for bucket in &mut buckets {
            bucket.sort_unstable_by(|a, b| a.y.total_cmp(&b.y).then_with(|| a.x.total_cmp(&b.x)));
        }
        Self {
            boundaries,
            columns: buckets,
            len,
            space,
            chosen_columns: columns,
        }
    }

    /// Number of columns selected by the layout optimisation.
    pub fn column_count(&self) -> usize {
        self.chosen_columns
    }

    /// Total points scanned when answering the given queries; the objective
    /// minimised by the layout search. Uses the non-materializing counting
    /// path: the search compares work counters, not result vectors.
    fn layout_cost(&self, queries: &[Rect]) -> u64 {
        let mut stats = ExecStats::default();
        for q in queries {
            self.range_count(q, &mut stats);
        }
        stats.points_scanned + stats.bbs_checked
    }

    /// Index range of columns overlapping `[x0, x1]`.
    fn column_range(&self, x0: f64, x1: f64) -> (usize, usize) {
        let first = column_of(&self.boundaries, x0);
        let last = column_of(&self.boundaries, x1);
        (first, last)
    }

    /// The range-scan kernel shared by every execution mode: for each column
    /// overlapping the query's x extent, binary-search the y run (the
    /// projection phase — "Flood performs the fastest projection") and hand
    /// the run to `on_run` for x filtering. No run list is materialized.
    fn scan_range(&self, query: &Rect, stats: &mut ExecStats, mut on_run: impl FnMut(&[Point])) {
        let kernel_start = std::time::Instant::now();
        let mut scan_ns = 0u64;
        let (first, last) = self.column_range(query.lo.x, query.hi.x);
        for column in first..=last {
            stats.bbs_checked += 1;
            let points = &self.columns[column];
            let start = points.partition_point(|p| p.y < query.lo.y);
            let end = points.partition_point(|p| p.y <= query.hi.y);
            if start < end {
                let scan_start = std::time::Instant::now();
                stats.pages_scanned += 1;
                stats.points_scanned += (end - start) as u64;
                on_run(&points[start..end]);
                scan_ns += scan_start.elapsed().as_nanos() as u64;
            }
        }
        stats.charge_kernel(kernel_start.elapsed().as_nanos() as u64, scan_ns);
    }
}

/// Column index containing coordinate `x` (clamped to the grid).
fn column_of(boundaries: &[f64], x: f64) -> usize {
    let columns = boundaries.len() - 1;
    match boundaries[1..columns].binary_search_by(|b| b.total_cmp(&x)) {
        Ok(i) => (i + 1).min(columns - 1),
        Err(i) => i.min(columns - 1),
    }
}

impl SpatialIndex for FloodIndex {
    fn name(&self) -> &'static str {
        "Flood"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn data_bounds(&self) -> Rect {
        self.space
    }

    fn range_query(&self, query: &Rect, stats: &mut ExecStats) -> Vec<Point> {
        let mut result = Vec::new();
        self.scan_range(query, stats, |run| {
            for p in run {
                if p.x >= query.lo.x && p.x <= query.hi.x {
                    result.push(*p);
                }
            }
        });
        stats.results += result.len() as u64;
        result
    }

    fn range_count(&self, query: &Rect, stats: &mut ExecStats) -> u64 {
        let mut count = 0u64;
        self.scan_range(query, stats, |run| {
            for p in run {
                count += u64::from(p.x >= query.lo.x && p.x <= query.hi.x);
            }
        });
        stats.results += count;
        count
    }

    fn range_for_each(&self, query: &Rect, stats: &mut ExecStats, visit: &mut dyn FnMut(&Point)) {
        let mut matched = 0u64;
        self.scan_range(query, stats, |run| {
            for p in run {
                if p.x >= query.lo.x && p.x <= query.hi.x {
                    matched += 1;
                    visit(p);
                }
            }
        });
        stats.results += matched;
    }

    fn point_query(&self, p: &Point, stats: &mut ExecStats) -> bool {
        let start = std::time::Instant::now();
        let column = column_of(&self.boundaries, p.x);
        let points = &self.columns[column];
        let from = points.partition_point(|q| q.y < p.y);
        let mut found = false;
        for q in &points[from..] {
            if q.y > p.y {
                break;
            }
            stats.points_scanned += 1;
            if q == p {
                found = true;
                break;
            }
        }
        stats.add_scan(start.elapsed());
        if found {
            stats.results += 1;
        }
        found
    }

    fn insert(&mut self, p: Point) -> Result<(), IndexError> {
        if !p.is_finite() {
            return Err(IndexError::InvalidInput(format!("non-finite point {p}")));
        }
        let column = column_of(&self.boundaries, p.x);
        let points = &mut self.columns[column];
        let position = points.partition_point(|q| q.y < p.y);
        points.insert(position, p);
        self.len += 1;
        self.space.expand(&p);
        Ok(())
    }

    fn delete(&mut self, p: &Point) -> Result<bool, IndexError> {
        let column = column_of(&self.boundaries, p.x);
        let points = &mut self.columns[column];
        if let Some(position) = points.iter().position(|q| q == p) {
            points.remove(position);
            self.len -= 1;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn size_bytes(&self) -> usize {
        // The grid structure: boundaries plus per-column vector headers. The
        // point payload is the clustered data shared by every index.
        std::mem::size_of::<Self>()
            + self.boundaries.len() * std::mem::size_of::<f64>()
            + self.columns.len() * std::mem::size_of::<Vec<Point>>()
    }

    fn range_batch_kernel(&self) -> Option<&dyn RangeBatchKernel> {
        Some(self)
    }

    fn point_batch_kernel(&self) -> Option<&dyn PointBatchKernel> {
        Some(self)
    }
}

impl RangeBatchKernel for FloodIndex {
    fn run_range_batch(&self, requests: &[RangeBatchRequest]) -> RangeBatchResponse {
        run_full_sweep(self, requests, self.columns.len() as u32)
    }

    fn sharded(&self) -> Option<&dyn ShardedRangeBatchKernel> {
        Some(self)
    }
}

/// Flood's fused batch kernel: the sweep address space is the column grid.
///
/// Overlapping queries share their *column visits* — at every column the
/// sweep serves all requests whose x extent covers it, so a column touched
/// by `m` overlapping queries is fetched once per batch instead of once per
/// query (the grid-cell sharing of the ROADMAP's cross-index fusion item).
/// Per-request work is unchanged vs. the sequential path: every request
/// still pays one bounding-box (column) check per column of its range and
/// one y-run binary search, so fused counters never exceed sequential ones.
impl ShardedRangeBatchKernel for FloodIndex {
    /// Maps every request onto its column interval. Column location is the
    /// same clamped binary search the sequential path uses and charges
    /// nothing, matching the sequential scan's accounting.
    fn project_batch(&self, requests: &[RangeBatchRequest]) -> BatchProjection {
        let start = std::time::Instant::now();
        let intervals = requests
            .iter()
            .map(|request| {
                let (first, last) = self.column_range(request.rect.lo.x, request.rect.hi.x);
                SweepInterval {
                    lo: first as u32,
                    hi: last as u32,
                }
            })
            .collect();
        BatchProjection {
            intervals,
            per_query: vec![ExecStats::default(); requests.len()],
            elapsed_ns: start.elapsed().as_nanos() as u64,
        }
    }

    /// Sweeps the requests owned by one shard of the column grid
    /// (owner-based sharding: a request belongs to the shard containing its
    /// first column and is swept over its whole column interval here, so
    /// its per-column work is identical to its solo scan whatever the shard
    /// plan). Requests enter the active set at their first column and leave
    /// after their last; there is no skipping machinery (Flood's relevance
    /// test *is* the column interval), so the active set is a dense vector.
    /// Per column, every active request binary-searches its y-run
    /// (projection phase, charged as a bounding-box check like the
    /// sequential scan) and filters the run by x (scan phase, charged per
    /// request); the column itself counts as one shared page visit however
    /// many of the shard's requests read it.
    fn sweep_shard(
        &self,
        requests: &[RangeBatchRequest],
        projection: &BatchProjection,
        bounds: ShardBounds,
    ) -> RangeBatchResponse {
        let mut response = RangeBatchResponse::zeroed(requests);
        let columns = self.columns.len() as u32;
        if bounds.start >= bounds.end || bounds.start >= columns {
            return response;
        }
        let mut entries: Vec<(u32, u32, usize)> = Vec::new();
        for (qi, interval) in projection.intervals.iter().enumerate() {
            if interval.lo < bounds.start || interval.lo >= bounds.end {
                continue;
            }
            entries.push((interval.lo, interval.hi.min(columns - 1), qi));
        }
        if entries.is_empty() {
            return response;
        }
        entries.sort_unstable();

        let kernel_start = std::time::Instant::now();
        let mut scan_ns = 0u64;
        let mut active: Vec<(u32, usize)> = Vec::new();
        let mut runs: Vec<(usize, usize, usize)> = Vec::new();
        let mut next_entry = 0usize;
        let mut column = entries[0].0;
        loop {
            while next_entry < entries.len() && entries[next_entry].0 <= column {
                let (_, hi, qi) = entries[next_entry];
                active.push((hi, qi));
                next_entry += 1;
            }
            active.retain(|&(hi, _)| hi >= column);
            if active.is_empty() {
                match entries.get(next_entry) {
                    Some(&(lo, _, _)) => {
                        column = lo;
                        continue;
                    }
                    None => break,
                }
            }
            let points = &self.columns[column as usize];
            runs.clear();
            for &(_, qi) in &active {
                let rect = &requests[qi].rect;
                response.per_query[qi].bbs_checked += 1;
                let start = points.partition_point(|p| p.y < rect.lo.y);
                let end = points.partition_point(|p| p.y <= rect.hi.y);
                if start < end {
                    runs.push((qi, start, end));
                }
            }
            if !runs.is_empty() {
                let scan_start = std::time::Instant::now();
                response.shared.pages_scanned += 1;
                for &(qi, start, end) in &runs {
                    // Copy the filter bounds into locals: the hot loop must
                    // not reload them through the request slice, which the
                    // optimiser cannot prove disjoint from the output it
                    // writes.
                    let (lo_x, hi_x) = (requests[qi].rect.lo.x, requests[qi].rect.hi.x);
                    let stats = &mut response.per_query[qi];
                    stats.points_scanned += (end - start) as u64;
                    let run = &points[start..end];
                    match &mut response.outputs[qi] {
                        RangeBatchOutput::Points(out) => {
                            let before = out.len();
                            out.extend(run.iter().filter(|p| p.x >= lo_x && p.x <= hi_x));
                            stats.results += (out.len() - before) as u64;
                        }
                        RangeBatchOutput::Count(count) => {
                            let mut matches = 0u64;
                            for p in run {
                                matches += u64::from(p.x >= lo_x && p.x <= hi_x);
                            }
                            *count += matches;
                            stats.results += matches;
                        }
                    }
                }
                scan_ns += scan_start.elapsed().as_nanos() as u64;
            }
            // Advance; the sweep ends naturally when every owned request's
            // interval is exhausted (the active set drains and no
            // admissions remain), which may be past the shard's own end.
            column += 1;
        }
        response
            .shared
            .charge_kernel(kernel_start.elapsed().as_nanos() as u64, scan_ns);
        response
    }

    /// Points per column, in grid order: the scan-work weights the engine's
    /// work-weighted shard planner balances.
    fn address_counts(&self) -> Option<Vec<u64>> {
        Some(self.columns.iter().map(|c| c.len() as u64).collect())
    }
}

/// Flood's fused point-probe kernel: the owning-page address is the grid
/// column (the same clamped binary search the sequential probe performs,
/// which charges nothing), so a column shared by several probes is fetched
/// once per batch while every probe still pays its own y-run scan.
impl PointBatchKernel for FloodIndex {
    fn locate_probes(&self, probes: &[Point], _per_query: &mut [ExecStats]) -> Vec<u64> {
        probes
            .iter()
            .map(|p| column_of(&self.boundaries, p.x) as u64)
            .collect()
    }

    fn probe_page(
        &self,
        address: u64,
        group: &[(usize, Point)],
        response: &mut PointBatchResponse,
    ) {
        let points = &self.columns[address as usize];
        for &(slot, p) in group {
            let stats = &mut response.per_query[slot];
            let from = points.partition_point(|q| q.y < p.y);
            let mut found = false;
            for q in &points[from..] {
                if q.y > p.y {
                    break;
                }
                stats.points_scanned += 1;
                if *q == p {
                    found = true;
                    break;
                }
            }
            if found {
                stats.results += 1;
                response.found[slot] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn queries(n: usize, seed: u64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let c = Point::new(rng.gen::<f64>(), rng.gen::<f64>());
                Rect::query_box(&Rect::UNIT, c, 0.002, 1.0 + rng.gen::<f64>())
            })
            .collect()
    }

    #[test]
    fn range_queries_match_brute_force() {
        let points = dataset(6_000, 1);
        let workload = queries(100, 2);
        let index = FloodIndex::build(points.clone(), &workload, 64);
        let mut stats = ExecStats::default();
        for query in workload.iter().take(30).chain([Rect::UNIT].iter()) {
            let mut got = index.range_query(query, &mut stats);
            got.sort_by(|a, b| a.lex_cmp(b));
            let mut expected: Vec<Point> = points
                .iter()
                .copied()
                .filter(|p| query.contains(p))
                .collect();
            expected.sort_by(|a, b| a.lex_cmp(b));
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn point_queries_and_updates() {
        let points = dataset(3_000, 3);
        let mut index = FloodIndex::build(points.clone(), &queries(50, 4), 64);
        let mut stats = ExecStats::default();
        assert!(index.point_query(&points[100], &mut stats));
        assert!(!index.point_query(&Point::new(1.5, 0.5), &mut stats));

        index.insert(Point::new(0.111, 0.222)).expect("insert");
        assert!(index.point_query(&Point::new(0.111, 0.222), &mut stats));
        assert_eq!(index.len(), 3_001);
        assert_eq!(index.delete(&Point::new(0.111, 0.222)), Ok(true));
        assert_eq!(index.delete(&Point::new(0.111, 0.222)), Ok(false));
        assert_eq!(index.len(), 3_000);
        assert!(index.insert(Point::new(f64::INFINITY, 0.0)).is_err());
    }

    #[test]
    fn layout_search_prefers_more_columns_for_narrow_queries() {
        let points = dataset(20_000, 5);
        // Narrow-in-x queries favour many columns (less x over-scan).
        let narrow: Vec<Rect> = (0..100)
            .map(|i| {
                let cx = (i as f64 + 0.5) / 100.0;
                Rect::from_coords((cx - 0.001).max(0.0), 0.1, (cx + 0.001).min(1.0), 0.9)
            })
            .collect();
        // Wide-in-x, thin-in-y queries favour fewer columns.
        let wide: Vec<Rect> = (0..100)
            .map(|i| {
                let cy = (i as f64 + 0.5) / 100.0;
                Rect::from_coords(0.1, (cy - 0.001).max(0.0), 0.9, (cy + 0.001).min(1.0))
            })
            .collect();
        let for_narrow = FloodIndex::build(points.clone(), &narrow, 64);
        let for_wide = FloodIndex::build(points, &wide, 64);
        assert!(
            for_narrow.column_count() > for_wide.column_count(),
            "narrow {} vs wide {}",
            for_narrow.column_count(),
            for_wide.column_count()
        );
    }

    #[test]
    fn empty_dataset() {
        let index = FloodIndex::build(Vec::new(), &[], 64);
        let mut stats = ExecStats::default();
        assert!(index.is_empty());
        assert!(index.range_query(&Rect::UNIT, &mut stats).is_empty());
        assert!(!index.point_query(&Point::new(0.5, 0.5), &mut stats));
    }

    #[test]
    fn metadata() {
        let index = FloodIndex::build(dataset(2_000, 6), &queries(50, 7), 64);
        assert_eq!(index.name(), "Flood");
        assert!(index.column_count() >= 1);
        assert!(index.size_bytes() > 0);
    }
}
