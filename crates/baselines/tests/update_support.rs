//! The update-support matrix of the baseline indexes, written as one unit
//! test per baseline so the support status of each is documented (and
//! pinned) in executable form:
//!
//! | index  | insert | delete |
//! |--------|--------|--------|
//! | STR    | yes    | no     |
//! | CUR    | yes    | no     |
//! | Flood  | yes    | yes    |
//! | Zpgm   | yes    | no     |
//! | QUASII | no     | no     |
//!
//! Unsupported operations must fail with the *typed*
//! [`IndexError::UpdateUnsupported`] naming the index, never a panic and
//! never the untyped `Unsupported` — that is what lets the versioned
//! writer (`wazi_core::VersionedIndex::with_rebuild`) recognise a
//! bulk-only index and fall back to a rebuild.

use wazi_baselines::{CurTree, FloodIndex, Quasii, StrRTree, ZOrderSorted};
use wazi_core::{IndexError, SpatialIndex};
use wazi_geom::{Point, Rect};
use wazi_storage::ExecStats;

fn dataset(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| Point::new((i % 40) as f64 / 40.0, (i / 40) as f64 / 25.0))
        .collect()
}

fn training(n: usize) -> Vec<Rect> {
    (0..n)
        .map(|i| {
            let x = (i % 10) as f64 / 10.0;
            let y = (i / 10) as f64 / 10.0;
            Rect::from_coords(x, y, (x + 0.15).min(1.0), (y + 0.15).min(1.0))
        })
        .collect()
}

/// Inserting and then probing must succeed; the probe goes through the
/// trait so layout differences between the baselines don't matter.
fn assert_insert_supported(index: &mut dyn SpatialIndex) {
    let p = Point::new(0.5013, 0.5017);
    let before = index.len();
    index
        .insert(p)
        .unwrap_or_else(|e| panic!("{} must support insert: {e}", index.name()));
    assert_eq!(index.len(), before + 1);
    let mut stats = ExecStats::default();
    assert!(
        index.point_query(&p, &mut stats),
        "{} lost the inserted point",
        index.name()
    );
}

fn assert_delete_unsupported(index: &mut dyn SpatialIndex, name: &'static str) {
    let err = index.delete(&Point::new(0.1, 0.1)).unwrap_err();
    assert_eq!(
        err,
        IndexError::UpdateUnsupported {
            index: name,
            op: "delete"
        }
    );
}

#[test]
fn str_supports_insert_but_not_delete() {
    let mut index = StrRTree::build(dataset(1_000), 64);
    assert_insert_supported(&mut index);
    assert_delete_unsupported(&mut index, "STR");
}

#[test]
fn cur_supports_insert_but_not_delete() {
    let mut index = CurTree::build(dataset(1_000), &training(50), 64);
    assert_insert_supported(&mut index);
    assert_delete_unsupported(&mut index, "CUR");
}

#[test]
fn flood_supports_insert_and_delete() {
    let mut index = FloodIndex::build(dataset(1_000), &training(50), 64);
    assert_insert_supported(&mut index);
    let victim = Point::new(0.5013, 0.5017);
    assert_eq!(index.delete(&victim), Ok(true));
    assert_eq!(index.delete(&victim), Ok(false));
    let mut stats = ExecStats::default();
    assert!(!index.point_query(&victim, &mut stats));
}

#[test]
fn zpgm_supports_insert_but_not_delete() {
    let mut index = ZOrderSorted::build(dataset(1_000), 10);
    assert_insert_supported(&mut index);
    assert_delete_unsupported(&mut index, "Zpgm");
}

#[test]
fn quasii_supports_neither_insert_nor_delete() {
    let mut index = Quasii::build(dataset(1_000), &training(50), 64);
    assert_eq!(
        index.insert(Point::new(0.5, 0.5)),
        Err(IndexError::UpdateUnsupported {
            index: "QUASII",
            op: "insert"
        })
    );
    assert_delete_unsupported(&mut index, "QUASII");
    // And being rejected changed nothing.
    assert_eq!(index.len(), 1_000);
}
