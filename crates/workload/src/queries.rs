//! Range-query workload generation (the Gowalla check-in stand-in).

use crate::dataset::sample_mixture;
use crate::region::Region;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wazi_geom::{Point, Rect};

/// The query selectivities of Table 2, expressed as fractions of the data
/// space (the paper reports them as percentages: 0.0016%–0.1024%).
pub const SELECTIVITIES: [f64; 4] = [0.0016e-2, 0.0064e-2, 0.0256e-2, 0.1024e-2];

/// The extended selectivity range of the ablation study (Figure 13).
pub const ABLATION_SELECTIVITIES: [f64; 3] = [0.0004e-2, 0.0064e-2, 0.1024e-2];

/// Default range-query workload size (Table 2).
pub const WORKLOAD_SIZE: usize = 20_000;

/// Descriptor of a generated workload, kept alongside experiment output so
/// results are reproducible from the recorded configuration alone.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// The region whose check-in profile drives the query centres.
    pub region: Region,
    /// Number of queries.
    pub count: usize,
    /// Selectivity as a fraction of the data-space area.
    pub selectivity: f64,
    /// Seed of the generator.
    pub seed: u64,
}

/// Generates a skewed range-query workload for a region: centres are sampled
/// from the region's check-in mixture and each box covers `selectivity` of
/// the data space (Section 6.2: centres come from check-in locations and the
/// rectangle grows in all four directions until it covers the required
/// portion of the data space).
pub fn generate_queries(region: Region, count: usize, selectivity: f64) -> Vec<Rect> {
    generate_queries_with_seed(region, count, selectivity, region.seed() ^ 0x9E3779B9)
}

/// Like [`generate_queries`] with an explicit seed.
pub fn generate_queries_with_seed(
    region: Region,
    count: usize,
    selectivity: f64,
    seed: u64,
) -> Vec<Rect> {
    assert!(selectivity > 0.0, "selectivity must be positive");
    let clusters = region.query_clusters();
    let total_weight: f64 = clusters.iter().map(|c| c.weight).sum();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let center = sample_mixture(&clusters, total_weight, &mut rng);
            let aspect = rng.gen_range(0.5..2.0);
            Rect::query_box(&Rect::UNIT, center, selectivity, aspect)
        })
        .collect()
}

/// Generates a workload from a [`WorkloadSpec`].
pub fn generate_from_spec(spec: &WorkloadSpec) -> Vec<Rect> {
    generate_queries_with_seed(spec.region, spec.count, spec.selectivity, spec.seed)
}

/// Generates a uniform (workload-agnostic) set of range queries over the
/// data space, used by the workload-change experiment of Figure 12.
pub fn uniform_queries(count: usize, selectivity: f64, seed: u64) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let center = Point::new(rng.gen::<f64>(), rng.gen::<f64>());
            let aspect = rng.gen_range(0.5..2.0);
            Rect::query_box(&Rect::UNIT, center, selectivity, aspect)
        })
        .collect()
}

/// Replaces a fraction of `original` with queries drawn from `replacement`,
/// modelling the iterative workload changes of Figure 12 ("we replace the
/// dataset's original workload with ... queries" at increasing percentages).
/// The replacement positions are chosen deterministically from `seed`.
pub fn drift_workload(
    original: &[Rect],
    replacement: &[Rect],
    change_fraction: f64,
    seed: u64,
) -> Vec<Rect> {
    assert!(
        (0.0..=1.0).contains(&change_fraction),
        "change fraction must lie in [0, 1]"
    );
    if original.is_empty() || replacement.is_empty() {
        return original.to_vec();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    original
        .iter()
        .map(|q| {
            if rng.gen::<f64>() < change_fraction {
                replacement[rng.gen_range(0..replacement.len())]
            } else {
                *q
            }
        })
        .collect()
}

/// Mean fraction of each query's area that overlaps the densest decile of
/// the data — a crude divergence measure used by tests to confirm that the
/// generated workload is skewed differently from the data distribution.
pub fn mean_center_distance_to(data_hotspot: Point, queries: &[Rect]) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    queries
        .iter()
        .map(|q| q.center().distance(&data_hotspot))
        .sum::<f64>()
        / queries.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_dataset, skew_summary};

    #[test]
    fn queries_have_requested_selectivity_and_stay_inside_space() {
        for region in Region::ALL {
            for &selectivity in &SELECTIVITIES {
                let queries = generate_queries(region, 200, selectivity);
                assert_eq!(queries.len(), 200);
                for q in &queries {
                    assert!(Rect::UNIT.contains_rect(q));
                    assert!(
                        (q.area() - selectivity).abs() < 1e-9,
                        "query area {} for requested selectivity {selectivity}",
                        q.area()
                    );
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic_and_spec_round_trips() {
        let spec = WorkloadSpec {
            region: Region::Japan,
            count: 100,
            selectivity: SELECTIVITIES[1],
            seed: 42,
        };
        let a = generate_from_spec(&spec);
        let b = generate_queries_with_seed(Region::Japan, 100, SELECTIVITIES[1], 42);
        assert_eq!(a, b);
    }

    #[test]
    fn query_centres_are_more_concentrated_than_the_data() {
        for region in Region::ALL {
            let data = generate_dataset(region, 10_000);
            let queries = generate_queries(region, 10_000, SELECTIVITIES[0]);
            let centers: Vec<Point> = queries.iter().map(|q| q.center()).collect();
            let data_skew = skew_summary(&data);
            let query_skew = skew_summary(&centers);
            assert!(
                query_skew.densest_cell_fraction > data_skew.densest_cell_fraction,
                "{region}: query workload should be more concentrated than the data"
            );
        }
    }

    #[test]
    fn uniform_queries_cover_the_space() {
        let queries = uniform_queries(5_000, SELECTIVITIES[2], 1);
        let centers: Vec<Point> = queries.iter().map(|q| q.center()).collect();
        let skew = skew_summary(&centers);
        assert!(
            skew.occupied_cells == 100,
            "occupied {}",
            skew.occupied_cells
        );
        assert!(skew.densest_cell_fraction < 0.03);
    }

    #[test]
    fn drift_mixes_the_requested_fraction() {
        let original = generate_queries(Region::CaliNev, 2_000, SELECTIVITIES[1]);
        let other = uniform_queries(2_000, SELECTIVITIES[1], 2);
        for fraction in [0.0, 0.25, 0.5, 1.0] {
            let drifted = drift_workload(&original, &other, fraction, 3);
            assert_eq!(drifted.len(), original.len());
            let changed = drifted
                .iter()
                .zip(&original)
                .filter(|(d, o)| d != o)
                .count();
            let expected = original.len() as f64 * fraction;
            assert!(
                (changed as f64 - expected).abs() <= original.len() as f64 * 0.05,
                "fraction {fraction}: changed {changed}, expected about {expected}"
            );
        }
    }

    #[test]
    fn drift_handles_empty_inputs() {
        let original = generate_queries(Region::Iberia, 10, SELECTIVITIES[0]);
        assert_eq!(drift_workload(&original, &[], 0.5, 1), original);
        assert!(drift_workload(&[], &original, 0.5, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "selectivity must be positive")]
    fn zero_selectivity_is_rejected() {
        let _ = generate_queries(Region::Japan, 1, 0.0);
    }
}
