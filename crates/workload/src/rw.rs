//! Mixed read/write schedules for the snapshot-versioned service path.
//!
//! The snapshot experiments interleave *read bursts* (mixed query batches
//! executed against whatever index version is published) with *write
//! bursts* (insert/delete/maintain ops applied through the single writer
//! of a `wazi_core::VersionedIndex`). A schedule fixes that interleaving
//! deterministically so the bench and the consistency tests replay the
//! exact same traffic: equal seeds give equal schedules, bit for bit.
//!
//! Deletes only ever target points inserted *earlier in the same
//! schedule*, so a replay against any base dataset is well-defined — every
//! delete finds its victim regardless of what the index held before the
//! schedule started.

use crate::batch::{generate_mixed_batch_with_mix, BatchMix};
use crate::dataset::sample_mixture;
use crate::region::Region;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wazi_core::{Query, WriteOp};

/// One step of a read/write schedule, replayed in order.
#[derive(Debug, Clone, PartialEq)]
pub enum RwStep {
    /// A read burst: submit these queries (concurrently, as the replayer
    /// sees fit) and wait for every response before the next step.
    Queries(Vec<Query>),
    /// A write burst: apply these ops through the writer as **one**
    /// `apply` call, publishing exactly one new index version.
    Writes(Vec<WriteOp>),
}

impl RwStep {
    /// Number of queries in a read burst (0 for a write burst).
    pub fn query_count(&self) -> usize {
        match self {
            RwStep::Queries(queries) => queries.len(),
            RwStep::Writes(_) => 0,
        }
    }

    /// Number of write ops in a write burst (0 for a read burst).
    pub fn write_count(&self) -> usize {
        match self {
            RwStep::Queries(_) => 0,
            RwStep::Writes(ops) => ops.len(),
        }
    }
}

/// Fraction of write-burst slots that delete a previously inserted point
/// instead of inserting a fresh one (when any such point remains).
const DELETE_FRACTION: f64 = 0.25;

/// Generates a deterministic alternating read/write schedule:
/// `rounds` repetitions of one read burst of `queries_per_round` mixed
/// queries followed by one write burst of `writes_per_round` ops, closed
/// by a final read burst so the last published version is also queried.
///
/// Inserts are drawn from the region's data profile (the same mixture new
/// check-ins would follow); roughly a quarter of the ops delete a point
/// inserted earlier in the schedule, and every write burst ends with a
/// [`WriteOp::Maintain`] so incremental indexes restore their invariants
/// once per published version. Equal seeds give equal schedules.
pub fn mixed_read_write_schedule(
    region: Region,
    rounds: usize,
    queries_per_round: usize,
    writes_per_round: usize,
    selectivity: f64,
    seed: u64,
) -> Vec<RwStep> {
    assert!(writes_per_round > 0, "write bursts must be non-empty");
    let data_clusters = region.data_clusters();
    let data_weight: f64 = data_clusters.iter().map(|c| c.weight).sum();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0DD_5EED);
    let mut inserted = Vec::new();
    let mut schedule = Vec::with_capacity(2 * rounds + 1);
    for round in 0..rounds {
        schedule.push(RwStep::Queries(generate_mixed_batch_with_mix(
            region,
            queries_per_round,
            selectivity,
            seed.wrapping_add(round as u64).wrapping_mul(0x9E37_79B9),
            BatchMix::default(),
        )));
        let mut ops = Vec::with_capacity(writes_per_round);
        // Reserve the last slot for Maintain.
        for _ in 0..writes_per_round.saturating_sub(1) {
            if !inserted.is_empty() && rng.gen_bool(DELETE_FRACTION) {
                let victim = rng.gen_range(0..inserted.len());
                ops.push(WriteOp::Delete(inserted.swap_remove(victim)));
            } else {
                let point = sample_mixture(&data_clusters, data_weight, &mut rng);
                inserted.push(point);
                ops.push(WriteOp::Insert(point));
            }
        }
        ops.push(WriteOp::Maintain);
        schedule.push(RwStep::Writes(ops));
    }
    schedule.push(RwStep::Queries(generate_mixed_batch_with_mix(
        region,
        queries_per_round,
        selectivity,
        seed.wrapping_add(rounds as u64).wrapping_mul(0x9E37_79B9),
        BatchMix::default(),
    )));
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use wazi_geom::Point;

    fn schedule() -> Vec<RwStep> {
        mixed_read_write_schedule(Region::CaliNev, 4, 16, 8, 0.001, 42)
    }

    #[test]
    fn schedules_are_deterministic_and_shaped() {
        let a = schedule();
        let b = schedule();
        assert_eq!(a, b);
        // rounds × (read burst + write burst) + closing read burst.
        assert_eq!(a.len(), 2 * 4 + 1);
        for (i, step) in a.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(step.query_count(), 16, "step {i} should be a read burst");
            } else {
                assert_eq!(step.write_count(), 8, "step {i} should be a write burst");
                let RwStep::Writes(ops) = step else {
                    unreachable!()
                };
                assert_eq!(ops.last(), Some(&WriteOp::Maintain));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = mixed_read_write_schedule(Region::Japan, 2, 8, 4, 0.001, 1);
        let b = mixed_read_write_schedule(Region::Japan, 2, 8, 4, 0.001, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn deletes_only_target_prior_inserts() {
        let mut live: Vec<Point> = Vec::new();
        for step in schedule() {
            let RwStep::Writes(ops) = step else { continue };
            for op in ops {
                match op {
                    WriteOp::Insert(p) => live.push(p),
                    WriteOp::Delete(p) => {
                        let at = live
                            .iter()
                            .position(|q| *q == p)
                            .expect("delete must target a point inserted earlier");
                        live.swap_remove(at);
                    }
                    WriteOp::Maintain => {}
                }
            }
        }
    }

    #[test]
    fn single_op_bursts_are_just_maintain() {
        let schedule = mixed_read_write_schedule(Region::Iberia, 2, 4, 1, 0.001, 9);
        for step in &schedule {
            if let RwStep::Writes(ops) = step {
                assert_eq!(ops, &[WriteOp::Maintain]);
            }
        }
    }
}
