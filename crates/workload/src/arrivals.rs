//! Deterministic open-loop arrival schedules for the query service bench.
//!
//! The service experiment measures `wazi-service` under *offered load*: a
//! client replays a schedule of (arrival time, query) pairs, submitting
//! each query when its time comes regardless of how fast the service
//! answers (open-loop, so queueing delay is visible instead of hidden by
//! client back-off). This module turns any generated query batch into such
//! a schedule:
//!
//! * [`poisson_arrivals`] — memoryless traffic: exponential interarrival
//!   gaps at a constant rate, the standard open-loop model;
//! * [`bursty_arrivals`] — on/off traffic: alternating bursts (the rate
//!   multiplied) and lulls (the rate divided), with geometrically
//!   distributed phase lengths — the shape that stresses an adaptive
//!   coalescing window, since the right window differs between phases.
//!
//! Both are deterministic given their seed, like every generator in this
//! crate. Hot-key skew comes from the query source, not the schedule: feed
//! them [`crate::generate_overlapping_batch`] or
//! [`crate::generate_point_batch`] (25% hot-key repeats) to replay skewed
//! traffic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wazi_core::Query;

/// One scheduled submission: `query` is offered `offset_ns` nanoseconds
/// after the replay starts.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Nanoseconds after replay start at which the query is offered.
    pub offset_ns: u64,
    /// The query plan to submit.
    pub query: Query,
}

/// An exponential interarrival gap at `rate_qps`, drawn by inverse-CDF from
/// one uniform sample: `-ln(1 - u) / rate` seconds.
fn exponential_gap_ns(rng: &mut StdRng, rate_qps: f64) -> u64 {
    let u: f64 = rng.gen();
    let gap_secs = -(1.0 - u).ln() / rate_qps;
    (gap_secs * 1e9) as u64
}

/// Schedules `queries` as a Poisson arrival process at `rate_qps` queries
/// per second: interarrival gaps are independent exponential draws, so the
/// schedule is memoryless and arrivals cluster by chance.
///
/// Queries keep their input order; only their timing is generated. Equal
/// seeds produce equal schedules. `rate_qps` is clamped to a positive
/// floor, and the first query arrives after one gap (not at zero), so the
/// schedule is well-formed for any input.
pub fn poisson_arrivals(queries: Vec<Query>, rate_qps: f64, seed: u64) -> Vec<Arrival> {
    let rate = rate_qps.max(1e-3);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA441_7A15);
    let mut clock_ns = 0u64;
    queries
        .into_iter()
        .map(|query| {
            clock_ns = clock_ns.saturating_add(exponential_gap_ns(&mut rng, rate));
            Arrival {
                offset_ns: clock_ns,
                query,
            }
        })
        .collect()
}

/// Schedules `queries` as on/off bursty traffic around `base_rate_qps`.
///
/// The schedule alternates *burst* phases (Poisson at
/// `base_rate_qps * burst_multiplier`) and *lull* phases (Poisson at
/// `base_rate_qps / burst_multiplier`); phase lengths are geometrically
/// distributed with mean `mean_phase_len` queries, so bursts vary in size
/// but average out deterministically per seed. The long-run offered rate
/// sits between the two phase rates.
///
/// This is the adversarial shape for a fixed coalescing window: a window
/// tuned for the burst wastes latency in the lull and vice versa, which is
/// exactly what the service's adaptive window is for.
pub fn bursty_arrivals(
    queries: Vec<Query>,
    base_rate_qps: f64,
    burst_multiplier: f64,
    mean_phase_len: usize,
    seed: u64,
) -> Vec<Arrival> {
    let base = base_rate_qps.max(1e-3);
    let multiplier = burst_multiplier.max(1.0);
    let mean_len = mean_phase_len.max(1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB5B5_7A15);
    // The geometric phase-end probability: a phase ends after each query
    // with probability 1/mean_len, giving mean_len queries per phase.
    let phase_end = 1.0 / mean_len as f64;
    let mut in_burst = true;
    let mut clock_ns = 0u64;
    queries
        .into_iter()
        .map(|query| {
            let rate = if in_burst {
                base * multiplier
            } else {
                base / multiplier
            };
            clock_ns = clock_ns.saturating_add(exponential_gap_ns(&mut rng, rate));
            if rng.gen_bool(phase_end) {
                in_burst = !in_burst;
            }
            Arrival {
                offset_ns: clock_ns,
                query,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::generate_overlapping_batch;
    use crate::region::Region;

    fn queries(n: usize) -> Vec<Query> {
        generate_overlapping_batch(Region::CaliNev, n, 0.01, 7)
    }

    #[test]
    fn poisson_is_deterministic_and_ordered() {
        let a = poisson_arrivals(queries(200), 10_000.0, 42);
        let b = poisson_arrivals(queries(200), 10_000.0, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        for w in a.windows(2) {
            assert!(w[0].offset_ns <= w[1].offset_ns, "offsets must be monotone");
        }
        // Queries keep their input order: the schedule only adds timing.
        let source = queries(200);
        for (arrival, query) in a.iter().zip(&source) {
            assert_eq!(&arrival.query, query);
        }
    }

    #[test]
    fn poisson_mean_gap_matches_the_rate() {
        let rate = 50_000.0;
        let n = 2_000;
        let schedule = poisson_arrivals(queries(n), rate, 9);
        let span_secs = schedule.last().unwrap().offset_ns as f64 / 1e9;
        let achieved = n as f64 / span_secs;
        // 2000 exponential draws: the empirical rate lands within ~10%.
        assert!(
            (achieved / rate - 1.0).abs() < 0.10,
            "achieved {achieved:.0} qps vs offered {rate:.0} qps"
        );
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = poisson_arrivals(queries(50), 10_000.0, 1);
        let b = poisson_arrivals(queries(50), 10_000.0, 2);
        assert_ne!(
            a.iter().map(|x| x.offset_ns).collect::<Vec<_>>(),
            b.iter().map(|x| x.offset_ns).collect::<Vec<_>>()
        );
    }

    #[test]
    fn bursty_is_deterministic_and_actually_bursts() {
        let a = bursty_arrivals(queries(2_000), 20_000.0, 8.0, 50, 11);
        let b = bursty_arrivals(queries(2_000), 20_000.0, 8.0, 50, 11);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0].offset_ns <= w[1].offset_ns);
        }
        // The gap distribution must be bimodal: with an 8x multiplier the
        // burst-phase mean gap is 64x shorter than the lull-phase mean gap,
        // so the widest decile of gaps dwarfs the narrowest.
        let mut gaps: Vec<u64> = a
            .windows(2)
            .map(|w| w[1].offset_ns - w[0].offset_ns)
            .collect();
        gaps.sort_unstable();
        let lo = gaps[gaps.len() / 10].max(1);
        let hi = gaps[gaps.len() * 9 / 10];
        assert!(
            hi / lo >= 8,
            "expected bimodal gaps, got p10 {lo} ns vs p90 {hi} ns"
        );
    }

    #[test]
    fn degenerate_parameters_are_floored() {
        let schedule = poisson_arrivals(queries(5), 0.0, 3);
        assert_eq!(schedule.len(), 5);
        let schedule = bursty_arrivals(queries(5), -1.0, 0.0, 0, 3);
        assert_eq!(schedule.len(), 5);
        assert!(poisson_arrivals(Vec::new(), 100.0, 3).is_empty());
    }
}
