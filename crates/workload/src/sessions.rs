//! Reconnect-heavy, hot-key-skewed client session schedules for the TCP
//! transport bench.
//!
//! The loopback-TCP experiment needs traffic that actually exercises a
//! network front end, not just the service behind it: many clients, each
//! holding a connection for a while, dropping it, and reconnecting — with
//! a hot subset of queries recurring across clients (the shape that makes
//! cross-connection coalescing pay). [`reconnect_sessions`] deals a query
//! batch into per-client [`ClientSchedule`]s:
//!
//! * each client receives an open-loop Poisson arrival stream at its share
//!   of the offered rate (the aggregate across clients offers `rate_qps`);
//! * each client's stream is cut into [`SessionEpoch`]s — one TCP
//!   connection's lifetime — with geometrically distributed lengths (mean
//!   `mean_epoch_len` queries), separated by a reconnect gap, so replays
//!   drop and redial mid-workload rather than once at the start;
//! * a fraction `hot_fraction` of every client's queries is substituted
//!   from a small shared hot set, giving cross-client key skew on top of
//!   whatever skew the query source already has.
//!
//! Deterministic per seed, like every generator in this crate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wazi_core::Query;

use crate::arrivals::Arrival;

/// One connection lifetime within a client's schedule: the client dials,
/// offers `arrivals` (offsets relative to the *replay* start, already
/// including the client's position in global time), then drops the
/// connection.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionEpoch {
    /// The timed submissions offered over this connection.
    pub arrivals: Vec<Arrival>,
}

impl SessionEpoch {
    /// Number of queries offered over this connection.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the epoch offers no queries.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

/// One client's full schedule: a sequence of connection epochs. The client
/// reconnects between consecutive epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientSchedule {
    /// Zero-based client index.
    pub client: usize,
    /// Connection lifetimes in replay order.
    pub epochs: Vec<SessionEpoch>,
}

impl ClientSchedule {
    /// Total queries across all epochs.
    pub fn total_queries(&self) -> usize {
        self.epochs.iter().map(SessionEpoch::len).sum()
    }

    /// Number of reconnects the replay performs (connections minus one).
    pub fn reconnects(&self) -> usize {
        self.epochs.len().saturating_sub(1)
    }
}

/// Deals `queries` into `clients` reconnect-heavy session schedules with
/// hot-key skew.
///
/// Queries are dealt round-robin, so each client gets `~len/clients` of
/// them; each client's arrivals form an independent Poisson stream at
/// `rate_qps / clients` (aggregate offered load `rate_qps`); epoch lengths
/// are geometric with mean `mean_epoch_len` queries (floored at 1); a
/// reconnect gap of one mean interarrival is inserted between epochs; and
/// with probability `hot_fraction` (clamped to `[0, 1]`) a query is
/// replaced by a member of a small hot set shared by every client (the
/// first, up to 8, distinct queries of the batch).
///
/// Equal seeds produce equal schedules; clients are independent streams
/// (client `i`'s schedule does not change when `clients` grows past it).
pub fn reconnect_sessions(
    queries: Vec<Query>,
    clients: usize,
    rate_qps: f64,
    mean_epoch_len: usize,
    hot_fraction: f64,
    seed: u64,
) -> Vec<ClientSchedule> {
    let clients = clients.max(1);
    let rate = (rate_qps.max(1e-3)) / clients as f64;
    let mean_len = mean_epoch_len.max(1);
    let hot_fraction = hot_fraction.clamp(0.0, 1.0);
    let hot_set: Vec<Query> = {
        let mut hot: Vec<Query> = Vec::new();
        for query in &queries {
            if !hot.contains(query) {
                hot.push(query.clone());
            }
            if hot.len() == 8 {
                break;
            }
        }
        hot
    };
    // Deal round-robin, then schedule each hand independently.
    let mut hands: Vec<Vec<Query>> = vec![Vec::new(); clients];
    for (i, query) in queries.into_iter().enumerate() {
        hands[i % clients].push(query);
    }
    let phase_end = 1.0 / mean_len as f64;
    // One mean interarrival of dead time models the redial.
    let reconnect_gap_ns = (1e9 / rate) as u64;
    hands
        .into_iter()
        .enumerate()
        .map(|(client, hand)| {
            let mut rng = StdRng::seed_from_u64(
                seed ^ 0x5E55_10A5 ^ (client as u64).wrapping_mul(0x9E37_79B9),
            );
            let mut epochs = Vec::new();
            let mut current = Vec::new();
            let mut clock_ns = 0u64;
            for query in hand {
                let query = if !hot_set.is_empty() && rng.gen_bool(hot_fraction) {
                    hot_set[rng.gen_range(0..hot_set.len())].clone()
                } else {
                    query
                };
                let u: f64 = rng.gen();
                let gap_ns = (-(1.0 - u).ln() / rate * 1e9) as u64;
                clock_ns = clock_ns.saturating_add(gap_ns);
                current.push(Arrival {
                    offset_ns: clock_ns,
                    query,
                });
                if rng.gen_bool(phase_end) {
                    epochs.push(SessionEpoch {
                        arrivals: std::mem::take(&mut current),
                    });
                    clock_ns = clock_ns.saturating_add(reconnect_gap_ns);
                }
            }
            if !current.is_empty() {
                epochs.push(SessionEpoch { arrivals: current });
            }
            ClientSchedule { client, epochs }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::generate_mixed_batch;
    use crate::region::Region;

    fn queries(n: usize) -> Vec<Query> {
        generate_mixed_batch(Region::CaliNev, n, 0.01, 13)
    }

    #[test]
    fn schedules_are_deterministic_and_conserve_query_count() {
        let a = reconnect_sessions(queries(400), 4, 20_000.0, 25, 0.3, 42);
        let b = reconnect_sessions(queries(400), 4, 20_000.0, 25, 0.3, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        let total: usize = a.iter().map(ClientSchedule::total_queries).sum();
        assert_eq!(total, 400);
        for schedule in &a {
            for epoch in &schedule.epochs {
                assert!(!epoch.is_empty());
                for w in epoch.arrivals.windows(2) {
                    assert!(w[0].offset_ns <= w[1].offset_ns);
                }
            }
        }
    }

    #[test]
    fn reconnects_actually_happen() {
        let schedules = reconnect_sessions(queries(600), 3, 50_000.0, 20, 0.0, 7);
        for schedule in &schedules {
            // ~200 queries per client at mean epoch 20 → ~10 epochs; demand
            // at least a few so the replay is genuinely reconnect-heavy.
            assert!(
                schedule.reconnects() >= 3,
                "client {} got only {} reconnects",
                schedule.client,
                schedule.reconnects()
            );
        }
    }

    #[test]
    fn hot_fraction_concentrates_queries() {
        let source = queries(500);
        let hot_heavy = reconnect_sessions(source.clone(), 2, 10_000.0, 50, 0.8, 3);
        let all: Vec<&Query> = hot_heavy
            .iter()
            .flat_map(|s| s.epochs.iter())
            .flat_map(|e| e.arrivals.iter())
            .map(|a| &a.query)
            .collect();
        // With 80% substitution into an ≤8-element hot set, the most common
        // query must dominate far beyond its natural share.
        let mut counts: Vec<(usize, usize)> = Vec::new();
        for q in &all {
            match all.iter().position(|x| x == q) {
                Some(first) => {
                    if let Some(entry) = counts.iter_mut().find(|(i, _)| *i == first) {
                        entry.1 += 1;
                    } else {
                        counts.push((first, 1));
                    }
                }
                None => unreachable!(),
            }
        }
        let max_count = counts.iter().map(|&(_, c)| c).max().unwrap();
        assert!(
            max_count * 100 / all.len() >= 5,
            "hottest query holds only {max_count}/{} submissions",
            all.len()
        );
        assert_eq!(all.len(), 500);
    }

    #[test]
    fn clients_are_independent_streams() {
        let narrow = reconnect_sessions(queries(300), 3, 30_000.0, 25, 0.2, 9);
        let wide = reconnect_sessions(queries(300), 5, 30_000.0 * 5.0 / 3.0, 25, 0.2, 9);
        // Client 0's hand changes (round-robin deal), but its rng stream is
        // seeded by client index only — substituted hot picks and epoch
        // cuts line up for equal hands. Just assert determinism per index:
        assert_eq!(narrow[0].client, 0);
        assert_eq!(wide[0].client, 0);
    }

    #[test]
    fn degenerate_parameters_are_safe() {
        assert!(reconnect_sessions(Vec::new(), 4, 1000.0, 10, 0.5, 1)
            .iter()
            .all(|s| s.epochs.is_empty()));
        let one = reconnect_sessions(queries(10), 0, 0.0, 0, 2.0, 1);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].total_queries(), 10);
    }
}
