//! Synthetic dataset generation (the OSM-POI stand-in).

use crate::region::{Cluster, Region};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wazi_geom::Point;

/// Draws one sample from a mixture of axis-aligned Gaussian clusters,
/// clamped to the unit square.
pub(crate) fn sample_mixture(clusters: &[Cluster], total_weight: f64, rng: &mut StdRng) -> Point {
    let mut pick = rng.gen::<f64>() * total_weight;
    let mut chosen = &clusters[clusters.len() - 1];
    for cluster in clusters {
        if pick <= cluster.weight {
            chosen = cluster;
            break;
        }
        pick -= cluster.weight;
    }
    let x = chosen.center.0 + gaussian(rng) * chosen.spread_x;
    let y = chosen.center.1 + gaussian(rng) * chosen.spread_y;
    Point::new(x.clamp(0.0, 1.0), y.clamp(0.0, 1.0))
}

/// Standard normal sample via the Box–Muller transform (keeps the dependency
/// surface at plain `rand`).
pub(crate) fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates `n` data points for a region with the region's default seed.
pub fn generate_dataset(region: Region, n: usize) -> Vec<Point> {
    generate_dataset_with_seed(region, n, region.seed())
}

/// Generates `n` data points for a region with an explicit seed, mixing the
/// region's cluster profile with a uniform background.
pub fn generate_dataset_with_seed(region: Region, n: usize, seed: u64) -> Vec<Point> {
    let clusters = region.data_clusters();
    let total_weight: f64 = clusters.iter().map(|c| c.weight).sum();
    let background = region.background_fraction();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.gen::<f64>() < background {
                Point::new(rng.gen::<f64>(), rng.gen::<f64>())
            } else {
                sample_mixture(&clusters, total_weight, &mut rng)
            }
        })
        .collect()
}

/// Generates `n` uniformly distributed points over the unit square (used by
/// the insert experiment of Figure 11, which samples insertions uniformly
/// from the data space).
pub fn uniform_dataset(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
        .collect()
}

/// Samples `n` point queries from an existing dataset (Section 6.4 samples
/// point queries from the data distribution).
pub fn sample_point_queries(data: &[Point], n: usize, seed: u64) -> Vec<Point> {
    if data.is_empty() {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| data[rng.gen_range(0..data.len())]).collect()
}

/// Summary statistics of a generated dataset, used by tests and by the
/// harness to report the skew of each region profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewSummary {
    /// Fraction of points inside the densest decile cell of a 10x10 grid.
    pub densest_cell_fraction: f64,
    /// Number of non-empty cells of the 10x10 grid.
    pub occupied_cells: usize,
}

/// Computes the skew summary of a point set over the unit square.
pub fn skew_summary(points: &[Point]) -> SkewSummary {
    let mut cells = [0usize; 100];
    for p in points {
        let gx = ((p.x * 10.0) as usize).min(9);
        let gy = ((p.y * 10.0) as usize).min(9);
        cells[gy * 10 + gx] += 1;
    }
    let max = cells.iter().copied().max().unwrap_or(0);
    SkewSummary {
        densest_cell_fraction: if points.is_empty() {
            0.0
        } else {
            max as f64 / points.len() as f64
        },
        occupied_cells: cells.iter().filter(|&&c| c > 0).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wazi_geom::Rect;

    #[test]
    fn datasets_are_deterministic_and_inside_the_unit_square() {
        for region in Region::ALL {
            let a = generate_dataset(region, 5_000);
            let b = generate_dataset(region, 5_000);
            assert_eq!(a, b, "generation must be deterministic for {region}");
            assert!(a.iter().all(|p| Rect::UNIT.contains(p)));
            assert_eq!(a.len(), 5_000);
        }
    }

    #[test]
    fn different_regions_produce_different_distributions() {
        let cali = generate_dataset(Region::CaliNev, 10_000);
        let ny = generate_dataset(Region::NewYork, 10_000);
        let cali_skew = skew_summary(&cali);
        let ny_skew = skew_summary(&ny);
        // New York is far more concentrated than the Californian corridor.
        assert!(ny_skew.densest_cell_fraction > cali_skew.densest_cell_fraction);
        assert!(cali_skew.occupied_cells >= ny_skew.occupied_cells);
    }

    #[test]
    fn regional_data_is_skewed_compared_to_uniform() {
        let uniform = uniform_dataset(10_000, 1);
        let uniform_skew = skew_summary(&uniform);
        for region in Region::ALL {
            let data = generate_dataset(region, 10_000);
            let skew = skew_summary(&data);
            assert!(
                skew.densest_cell_fraction > uniform_skew.densest_cell_fraction * 2.0,
                "{region} should be clearly skewed"
            );
        }
    }

    #[test]
    fn explicit_seed_changes_the_sample_but_not_the_distribution() {
        let a = generate_dataset_with_seed(Region::Japan, 5_000, 1);
        let b = generate_dataset_with_seed(Region::Japan, 5_000, 2);
        assert_ne!(a, b);
        let (sa, sb) = (skew_summary(&a), skew_summary(&b));
        assert!((sa.densest_cell_fraction - sb.densest_cell_fraction).abs() < 0.05);
    }

    #[test]
    fn point_query_sampling_draws_from_the_data() {
        let data = generate_dataset(Region::Iberia, 2_000);
        let samples = sample_point_queries(&data, 500, 7);
        assert_eq!(samples.len(), 500);
        assert!(samples.iter().all(|s| data.contains(s)));
        assert!(sample_point_queries(&[], 10, 7).is_empty());
    }

    #[test]
    fn gaussian_has_zero_mean_and_unit_variance_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..20_000).map(|_| gaussian(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        let var: f64 =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
