//! Deterministic fault schedules for the service chaos experiments.
//!
//! A fault schedule picks *which submissions* of an offered-load replay are
//! poisoned and *how*, without knowing anything about the service that will
//! execute them — the bench maps each [`FaultSpec`] onto the service's
//! fault-injection registry (`wazi_service::FaultPlan`). Keeping the
//! selection here, beside the arrival schedules, means a chaos experiment
//! is fully described by `(queries, arrivals, faults)` triples that are all
//! deterministic per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The kind of fault to inject at a chosen submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the execution kernel while the query is being answered.
    KernelPanic,
    /// Delay execution of any batch carrying the query by `micros`.
    ExecDelay,
    /// Stall the submitting thread inside `submit` for `micros`.
    QueueStall,
}

/// One planned fault: poison the `index`-th accepted submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Submission sequence number (acceptance order, from 0) to poison.
    pub index: u64,
    /// What goes wrong.
    pub kind: FaultKind,
    /// Delay magnitude in microseconds (0 for [`FaultKind::KernelPanic`]).
    pub micros: u64,
}

/// Draws `count` faults over the first `n_queries` submissions, cycling
/// through the three kinds so every schedule exercises panic isolation,
/// slow execution and submit-side stalls together. Indices are distinct
/// and the result is sorted by index. Equal seeds give equal schedules;
/// `count` is capped at `n_queries`.
pub fn fault_schedule(n_queries: u64, count: usize, seed: u64) -> Vec<FaultSpec> {
    if n_queries == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_7A15);
    let count = count.min(n_queries as usize);
    let mut taken = std::collections::BTreeSet::new();
    let mut schedule = Vec::with_capacity(count);
    while schedule.len() < count {
        let index = rng.gen_range(0..n_queries);
        if !taken.insert(index) {
            continue;
        }
        let kind = match schedule.len() % 3 {
            0 => FaultKind::KernelPanic,
            1 => FaultKind::ExecDelay,
            _ => FaultKind::QueueStall,
        };
        let micros = match kind {
            FaultKind::KernelPanic => 0,
            FaultKind::ExecDelay => rng.gen_range(200..1_000),
            FaultKind::QueueStall => rng.gen_range(100..500),
        };
        schedule.push(FaultSpec {
            index,
            kind,
            micros,
        });
    }
    schedule.sort_by_key(|spec| spec.index);
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_distinct_and_sorted() {
        let a = fault_schedule(500, 12, 7);
        let b = fault_schedule(500, 12, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        for w in a.windows(2) {
            assert!(w[0].index < w[1].index, "indices must be distinct+sorted");
        }
        assert!(a.iter().all(|s| s.index < 500));
        // All three kinds present in a 12-fault schedule.
        for kind in [
            FaultKind::KernelPanic,
            FaultKind::ExecDelay,
            FaultKind::QueueStall,
        ] {
            assert!(a.iter().any(|s| s.kind == kind));
        }
        // Panics carry no delay; the delays sit in their documented ranges.
        for spec in &a {
            match spec.kind {
                FaultKind::KernelPanic => assert_eq!(spec.micros, 0),
                FaultKind::ExecDelay => assert!((200..1_000).contains(&spec.micros)),
                FaultKind::QueueStall => assert!((100..500).contains(&spec.micros)),
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(fault_schedule(500, 12, 1), fault_schedule(500, 12, 2));
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert!(fault_schedule(0, 5, 3).is_empty());
        assert_eq!(fault_schedule(3, 100, 3).len(), 3);
        assert!(fault_schedule(100, 0, 3).is_empty());
    }
}
