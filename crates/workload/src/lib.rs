//! # wazi-workload
//!
//! Dataset and range-query workload generators replicating the evaluation
//! setup of the WaZI paper (Section 6.2):
//!
//! * [`Region`] — four regional profiles standing in for the OpenStreetMap
//!   POI extracts (CaliNev, NewYork, Japan, Iberia);
//! * [`generate_dataset`] — seeded multi-modal point distributions;
//! * [`generate_queries`] — skewed range-query workloads whose centres
//!   follow a Gowalla-check-in-like distribution that differs from the data
//!   distribution, with selectivity expressed as a fraction of the data
//!   space;
//! * [`uniform_queries`] / [`drift_workload`] — the workload-change
//!   machinery of Figure 12;
//! * [`uniform_dataset`] / [`sample_point_queries`] — inputs for the insert
//!   (Figure 11) and point-query (Figure 10) experiments;
//! * [`generate_mixed_batch`] / [`generate_overlapping_batch`] /
//!   [`generate_scattered_batch`] / [`generate_point_batch`] /
//!   [`generate_knn_batch`] — deterministic
//!   batches of typed [`wazi_core::Query`] plans for the query engine's
//!   batch executor: heterogeneous mixes, hotspot-concentrated range
//!   batches for the fused sweeps, hot-key probe batches, and clustered
//!   kNN plans;
//! * [`poisson_arrivals`] / [`bursty_arrivals`] — deterministic open-loop
//!   arrival schedules ([`Arrival`]) turning any query batch into timed
//!   offered-load traffic for the `wazi-service` bench;
//! * [`fault_schedule`] — deterministic fault schedules ([`FaultSpec`])
//!   picking which submissions of a replay are poisoned and how, for the
//!   service's chaos experiments;
//! * [`mixed_read_write_schedule`] — alternating read-burst / write-burst
//!   schedules ([`RwStep`]) for the snapshot-versioned writer path: mixed
//!   query batches interleaved with insert/delete/maintain ops whose
//!   deletes only target points inserted earlier in the same schedule;
//! * [`reconnect_sessions`] — reconnect-heavy, hot-key-skewed per-client
//!   session schedules ([`ClientSchedule`] / [`SessionEpoch`]) for the
//!   `wazi-net` TCP transport bench.
//!
//! All generators are deterministic given their seeds, so every experiment
//! in `wazi-bench` is reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrivals;
mod batch;
mod dataset;
mod faults;
mod queries;
mod region;
mod rw;
mod sessions;

pub use arrivals::{bursty_arrivals, poisson_arrivals, Arrival};
pub use batch::{
    generate_knn_batch, generate_mixed_batch, generate_mixed_batch_with_mix,
    generate_overlapping_batch, generate_point_batch, generate_scattered_batch, BatchMix,
};
pub use dataset::{
    generate_dataset, generate_dataset_with_seed, sample_point_queries, skew_summary,
    uniform_dataset, SkewSummary,
};
pub use faults::{fault_schedule, FaultKind, FaultSpec};
pub use queries::{
    drift_workload, generate_from_spec, generate_queries, generate_queries_with_seed,
    mean_center_distance_to, uniform_queries, WorkloadSpec, ABLATION_SELECTIVITIES, SELECTIVITIES,
    WORKLOAD_SIZE,
};
pub use region::{Cluster, Region};
pub use rw::{mixed_read_write_schedule, RwStep};
pub use sessions::{reconnect_sessions, ClientSchedule, SessionEpoch};
