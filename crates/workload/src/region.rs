//! Region profiles standing in for the OpenStreetMap extracts of the paper.
//!
//! The paper evaluates on points of interest from four regions (California
//! coast, New York City, Japan, Iberian Peninsula) with range-query
//! workloads derived from Gowalla check-ins in the same regions. Neither
//! dataset ships with this repository, so each region is replaced by a
//! seeded synthetic profile that reproduces the properties the indexes
//! actually react to: multi-modal spatial skew for the data and a
//! *differently*-skewed, more concentrated distribution for the query
//! centres. See DESIGN.md §3 for the substitution rationale.

/// A Gaussian-ish cluster of the synthetic mixture.
#[derive(Debug, Clone, Copy)]
pub struct Cluster {
    /// Cluster centre (unit-square coordinates).
    pub center: (f64, f64),
    /// Standard deviation along x.
    pub spread_x: f64,
    /// Standard deviation along y.
    pub spread_y: f64,
    /// Relative weight of the cluster within its mixture.
    pub weight: f64,
}

impl Cluster {
    const fn new(center: (f64, f64), spread_x: f64, spread_y: f64, weight: f64) -> Self {
        Self {
            center,
            spread_x,
            spread_y,
            weight,
        }
    }
}

/// The four evaluation regions of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// California coast: an elongated coastal corridor with two metropolitan
    /// concentrations.
    CaliNev,
    /// New York City: very dense urban core with satellite clusters.
    NewYork,
    /// Japan: an archipelago-shaped chain of dense corridors.
    Japan,
    /// Iberian Peninsula: dispersed mid-sized clusters with coastal bias.
    Iberia,
}

impl Region {
    /// All regions in the order the paper's figures list them.
    pub const ALL: [Region; 4] = [
        Region::CaliNev,
        Region::NewYork,
        Region::Japan,
        Region::Iberia,
    ];

    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Region::CaliNev => "CaliNev",
            Region::NewYork => "NewYork",
            Region::Japan => "Japan",
            Region::Iberia => "Iberia",
        }
    }

    /// Deterministic base seed for the region's generators.
    pub fn seed(&self) -> u64 {
        match self {
            Region::CaliNev => 0x0CA1,
            Region::NewYork => 0x4E59,
            Region::Japan => 0x4A50,
            Region::Iberia => 0x1BE1,
        }
    }

    /// Mixture describing the *data* distribution (OSM-POI stand-in).
    pub fn data_clusters(&self) -> Vec<Cluster> {
        match self {
            // Elongated coastal corridor: clusters along a diagonal band.
            Region::CaliNev => vec![
                Cluster::new((0.15, 0.75), 0.04, 0.08, 3.0),
                Cluster::new((0.25, 0.60), 0.05, 0.06, 2.0),
                Cluster::new((0.40, 0.45), 0.06, 0.05, 1.5),
                Cluster::new((0.55, 0.30), 0.05, 0.06, 2.5),
                Cluster::new((0.70, 0.18), 0.04, 0.04, 2.0),
                Cluster::new((0.85, 0.40), 0.10, 0.12, 0.8),
            ],
            // Dense core plus boroughs.
            Region::NewYork => vec![
                Cluster::new((0.50, 0.50), 0.03, 0.05, 5.0),
                Cluster::new((0.58, 0.44), 0.04, 0.04, 2.5),
                Cluster::new((0.42, 0.58), 0.05, 0.04, 2.0),
                Cluster::new((0.62, 0.62), 0.06, 0.06, 1.2),
                Cluster::new((0.35, 0.35), 0.08, 0.08, 1.0),
            ],
            // Archipelago chain from south-west to north-east.
            Region::Japan => vec![
                Cluster::new((0.20, 0.25), 0.05, 0.04, 1.5),
                Cluster::new((0.35, 0.35), 0.05, 0.05, 2.0),
                Cluster::new((0.50, 0.45), 0.04, 0.04, 3.0),
                Cluster::new((0.62, 0.55), 0.03, 0.04, 3.5),
                Cluster::new((0.72, 0.68), 0.04, 0.05, 2.0),
                Cluster::new((0.85, 0.82), 0.05, 0.07, 1.0),
                Cluster::new((0.30, 0.60), 0.09, 0.09, 0.6),
            ],
            // Dispersed clusters with coastal emphasis.
            Region::Iberia => vec![
                Cluster::new((0.25, 0.70), 0.06, 0.06, 2.0),
                Cluster::new((0.15, 0.40), 0.05, 0.07, 1.8),
                Cluster::new((0.45, 0.55), 0.07, 0.07, 1.5),
                Cluster::new((0.65, 0.30), 0.05, 0.05, 2.2),
                Cluster::new((0.80, 0.65), 0.06, 0.05, 1.6),
                Cluster::new((0.55, 0.80), 0.07, 0.06, 1.2),
            ],
        }
    }

    /// Mixture describing the *query-centre* distribution (Gowalla check-in
    /// stand-in). Deliberately more concentrated than, and offset from, the
    /// data mixture — the paper's central premise is that the query workload
    /// is skewed differently from the data.
    pub fn query_clusters(&self) -> Vec<Cluster> {
        match self {
            Region::CaliNev => vec![
                Cluster::new((0.22, 0.63), 0.025, 0.035, 4.0),
                Cluster::new((0.57, 0.27), 0.030, 0.030, 3.0),
                Cluster::new((0.72, 0.20), 0.020, 0.020, 1.5),
            ],
            Region::NewYork => vec![
                Cluster::new((0.52, 0.47), 0.015, 0.020, 6.0),
                Cluster::new((0.45, 0.56), 0.020, 0.020, 2.0),
            ],
            Region::Japan => vec![
                Cluster::new((0.63, 0.56), 0.015, 0.020, 5.0),
                Cluster::new((0.51, 0.46), 0.020, 0.020, 3.0),
                Cluster::new((0.36, 0.36), 0.025, 0.025, 1.5),
            ],
            Region::Iberia => vec![
                Cluster::new((0.27, 0.68), 0.030, 0.030, 3.0),
                Cluster::new((0.66, 0.31), 0.025, 0.025, 3.0),
                Cluster::new((0.47, 0.57), 0.030, 0.030, 1.5),
            ],
        }
    }

    /// Fraction of data points drawn from a uniform background instead of a
    /// cluster (rural POIs).
    pub fn background_fraction(&self) -> f64 {
        match self {
            Region::CaliNev => 0.15,
            Region::NewYork => 0.05,
            Region::Japan => 0.10,
            Region::Iberia => 0.20,
        }
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_regions_have_distinct_profiles() {
        for region in Region::ALL {
            assert!(!region.data_clusters().is_empty());
            assert!(!region.query_clusters().is_empty());
            assert!(region.query_clusters().len() < region.data_clusters().len() + 1);
            assert!((0.0..1.0).contains(&region.background_fraction()));
            assert!(!region.name().is_empty());
            assert_eq!(format!("{region}"), region.name());
        }
        // Seeds must be distinct so datasets are not accidentally identical.
        let mut seeds: Vec<u64> = Region::ALL.iter().map(Region::seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn cluster_weights_are_positive_and_inside_unit_square() {
        for region in Region::ALL {
            for c in region
                .data_clusters()
                .into_iter()
                .chain(region.query_clusters())
            {
                assert!(c.weight > 0.0);
                assert!((0.0..=1.0).contains(&c.center.0));
                assert!((0.0..=1.0).contains(&c.center.1));
                assert!(c.spread_x > 0.0 && c.spread_y > 0.0);
            }
        }
    }
}
