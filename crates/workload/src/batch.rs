//! Mixed query-batch generation for the query engine.
//!
//! The paper evaluates indexes under *workloads* — mixes of range, point and
//! kNN queries — and the engine's [`wazi_core::QueryEngine::execute_batch`]
//! consumes exactly such mixes as `Vec<Query>`. This module generates them
//! deterministically: range-query rectangles follow the region's skewed
//! check-in profile (like [`crate::generate_queries`]), point probes and kNN
//! centres follow the region's *data* profile, and the kind of every batch
//! slot is drawn from a configurable [`BatchMix`].

use crate::dataset::sample_mixture;
use crate::region::Region;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wazi_core::{Query, RangeMode};
use wazi_geom::Rect;

/// Relative weights of the query kinds within a generated batch.
///
/// The weights need not sum to one; they are normalised internally. Range
/// queries are split evenly across the three [`RangeMode`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchMix {
    /// Weight of range queries (all three execution modes).
    pub range: f64,
    /// Weight of exact-match point probes.
    pub point: f64,
    /// Weight of kNN queries.
    pub knn: f64,
    /// `k` used by generated kNN queries.
    pub knn_k: usize,
}

impl Default for BatchMix {
    /// The evaluation default: range-heavy with occasional probes and kNN,
    /// matching the paper's emphasis on range queries (Section 6).
    fn default() -> Self {
        Self {
            range: 0.7,
            point: 0.2,
            knn: 0.1,
            knn_k: 8,
        }
    }
}

/// Generates a deterministic mixed batch of `count` typed query plans for a
/// region at the given range-query selectivity.
///
/// Equal seeds produce equal batches; the batch is independent of the batch
/// generated for any other `(region, seed)` pair. Range rectangles are
/// sampled exactly like [`crate::generate_queries_with_seed`] samples them
/// (skewed check-in centres, selectivity as a fraction of the data space),
/// so batches overlap the same hot pages the paper's range workloads hit.
pub fn generate_mixed_batch(
    region: Region,
    count: usize,
    selectivity: f64,
    seed: u64,
) -> Vec<Query> {
    generate_mixed_batch_with_mix(region, count, selectivity, seed, BatchMix::default())
}

/// Like [`generate_mixed_batch`] with an explicit [`BatchMix`].
pub fn generate_mixed_batch_with_mix(
    region: Region,
    count: usize,
    selectivity: f64,
    seed: u64,
    mix: BatchMix,
) -> Vec<Query> {
    assert!(selectivity > 0.0, "selectivity must be positive");
    let total_mix = mix.range + mix.point + mix.knn;
    assert!(
        total_mix > 0.0 && mix.range >= 0.0 && mix.point >= 0.0 && mix.knn >= 0.0,
        "mix weights must be non-negative and not all zero"
    );
    let query_clusters = region.query_clusters();
    let query_weight: f64 = query_clusters.iter().map(|c| c.weight).sum();
    let data_clusters = region.data_clusters();
    let data_weight: f64 = data_clusters.iter().map(|c| c.weight).sum();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let pick = rng.gen::<f64>() * total_mix;
            if pick < mix.range {
                let center = sample_mixture(&query_clusters, query_weight, &mut rng);
                let aspect = rng.gen_range(0.5..2.0);
                let rect = Rect::query_box(&Rect::UNIT, center, selectivity, aspect);
                let mode = match rng.gen_range(0..3u32) {
                    0 => RangeMode::Collect,
                    1 => RangeMode::Count,
                    _ => RangeMode::Stream,
                };
                Query::Range { rect, mode }
            } else if pick < mix.range + mix.point {
                Query::point(sample_mixture(&data_clusters, data_weight, &mut rng))
            } else {
                Query::knn(
                    sample_mixture(&data_clusters, data_weight, &mut rng),
                    mix.knn_k,
                )
            }
        })
        .collect()
}

/// Fraction the query-cluster spreads are shrunk by when generating an
/// overlapping batch: centres concentrate four times harder around the
/// region's hotspots than a regular workload, so thousands of queries stack
/// on the same pages.
const OVERLAP_CONCENTRATION: f64 = 0.25;

/// Generates a deterministic batch of heavily *overlapping* counting range
/// queries: the workload shape fused and parallel batch execution exist
/// for.
///
/// Centres follow the region's check-in profile like
/// [`crate::generate_queries`], but with every cluster's spread shrunk
/// four-fold, so a large batch revisits the same hot pages
/// thousands of times — giving a fused sweep pages to share and a sharded
/// sweep enough stacked work per leaf interval to keep every worker busy.
/// All plans use the counting mode (the non-materializing measurement
/// path). Equal seeds produce equal batches.
pub fn generate_overlapping_batch(
    region: Region,
    count: usize,
    selectivity: f64,
    seed: u64,
) -> Vec<Query> {
    assert!(selectivity > 0.0, "selectivity must be positive");
    let mut clusters = region.query_clusters();
    for cluster in &mut clusters {
        cluster.spread_x *= OVERLAP_CONCENTRATION;
        cluster.spread_y *= OVERLAP_CONCENTRATION;
    }
    let total_weight: f64 = clusters.iter().map(|c| c.weight).sum();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let center = sample_mixture(&clusters, total_weight, &mut rng);
            let aspect = rng.gen_range(0.5..2.0);
            Query::range_count(Rect::query_box(&Rect::UNIT, center, selectivity, aspect))
        })
        .collect()
}

/// Generates a deterministic batch of *scattered*, barely-overlapping
/// counting range queries: the adversarial workload for fusion, and the
/// case the cost model must route sequentially.
///
/// Centres are stratified over a jittered `⌈√count⌉ × ⌈√count⌉` grid across
/// the whole unit space — ignoring the region's hotspots on purpose — so
/// almost no two queries share a leaf page. A fused sweep over such a batch
/// pays its setup for nothing; a cost-based scheduler must recognise the
/// shape (coverage ≈ union of covered addresses) and fall back to the
/// per-query loop. All plans use the counting mode. Equal seeds produce
/// equal batches; `region` only seasons the jitter so different regions
/// yield different batches.
pub fn generate_scattered_batch(
    region: Region,
    count: usize,
    selectivity: f64,
    seed: u64,
) -> Vec<Query> {
    assert!(selectivity > 0.0, "selectivity must be positive");
    let mut rng = StdRng::seed_from_u64(seed ^ (region as u64).wrapping_mul(0x9e37_79b9));
    let side = (count as f64).sqrt().ceil().max(1.0) as usize;
    let cell = 1.0 / side as f64;
    (0..count)
        .map(|i| {
            let (col, row) = (i % side, i / side % side);
            let center = wazi_geom::Point::new(
                (col as f64 + rng.gen::<f64>()) * cell,
                (row as f64 + rng.gen::<f64>()) * cell,
            );
            let aspect = rng.gen_range(0.5..2.0);
            Query::range_count(Rect::query_box(&Rect::UNIT, center, selectivity, aspect))
        })
        .collect()
}

/// Fraction of probes in a point-heavy batch that repeat an earlier probe
/// (hot-key skew): the share of a real lookup workload that hammers the
/// same keys, and the share the fused point kernel collapses onto already
/// fetched pages.
const POINT_BATCH_DUPLICATES: f64 = 0.25;

/// Generates a deterministic all-point-probe batch following the region's
/// *data* profile — the workload shape the fused point-batch kernel exists
/// for.
///
/// A quarter of the probes repeat an earlier probe of the same batch
/// (hot-key skew), so probes sharing an owning page are guaranteed and
/// leaf-grouped execution has page visits to save; a small tail probes
/// points outside the unit data space, exercising the miss path. Equal
/// seeds produce equal batches.
pub fn generate_point_batch(region: Region, count: usize, seed: u64) -> Vec<Query> {
    let data_clusters = region.data_clusters();
    let data_weight: f64 = data_clusters.iter().map(|c| c.weight).sum();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut probes: Vec<wazi_geom::Point> = Vec::with_capacity(count);
    (0..count)
        .map(|_| {
            let pick = rng.gen::<f64>();
            let p = if !probes.is_empty() && pick < POINT_BATCH_DUPLICATES {
                probes[rng.gen_range(0..probes.len())]
            } else if pick > 0.98 {
                // Out-of-space probe: always a miss, never a crash.
                wazi_geom::Point::new(1.5 + rng.gen::<f64>(), -0.5 * rng.gen::<f64>())
            } else {
                sample_mixture(&data_clusters, data_weight, &mut rng)
            };
            probes.push(p);
            Query::point(p)
        })
        .collect()
}

/// Generates a deterministic all-kNN batch whose centres concentrate on the
/// region's data hotspots (spreads shrunk like
/// [`generate_overlapping_batch`]'s), so seed boxes overlap and the
/// engine's grouped expanding-ring sweep has candidate pages to share.
/// Equal seeds produce equal batches.
pub fn generate_knn_batch(region: Region, count: usize, k: usize, seed: u64) -> Vec<Query> {
    let mut clusters = region.data_clusters();
    for cluster in &mut clusters {
        cluster.spread_x *= OVERLAP_CONCENTRATION;
        cluster.spread_y *= OVERLAP_CONCENTRATION;
    }
    let total_weight: f64 = clusters.iter().map(|c| c.weight).sum();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| Query::knn(sample_mixture(&clusters, total_weight, &mut rng), k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_queries;
    use wazi_core::Query;

    #[test]
    fn batches_are_deterministic_per_seed() {
        let a = generate_mixed_batch(Region::NewYork, 200, 0.001, 42);
        let b = generate_mixed_batch(Region::NewYork, 200, 0.001, 42);
        assert_eq!(a, b);
        let c = generate_mixed_batch(Region::NewYork, 200, 0.001, 43);
        assert_ne!(a, c, "different seeds must change the batch");
    }

    #[test]
    fn default_mix_contains_every_kind_and_every_range_mode() {
        let batch = generate_mixed_batch(Region::Japan, 500, 0.001, 7);
        assert_eq!(batch.len(), 500);
        let ranges = batch.iter().filter(|q| q.is_range()).count();
        let points = batch
            .iter()
            .filter(|q| matches!(q, Query::Point(_)))
            .count();
        let knns = batch
            .iter()
            .filter(|q| matches!(q, Query::Knn { .. }))
            .count();
        assert_eq!(ranges + points + knns, 500);
        // The 70/20/10 default mix at 500 draws: each kind must appear.
        assert!(ranges > 250 && points > 30 && knns > 10);
        for mode in [RangeMode::Collect, RangeMode::Count, RangeMode::Stream] {
            assert!(
                batch
                    .iter()
                    .any(|q| matches!(q, Query::Range { mode: m, .. } if *m == mode)),
                "missing range mode {mode:?}"
            );
        }
        // Every generated plan must pass engine validation.
        for query in &batch {
            query.validate().expect("generated plans are valid");
        }
    }

    #[test]
    fn range_rectangles_have_the_requested_selectivity() {
        let batch = generate_mixed_batch(Region::Iberia, 300, 0.0005, 11);
        for query in &batch {
            if let Query::Range { rect, .. } = query {
                assert!(Rect::UNIT.contains_rect(rect));
                assert!((rect.area() - 0.0005).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn custom_mix_weights_are_respected() {
        let only_points = BatchMix {
            range: 0.0,
            point: 1.0,
            knn: 0.0,
            knn_k: 3,
        };
        let batch = generate_mixed_batch_with_mix(Region::CaliNev, 100, 0.001, 5, only_points);
        assert!(batch.iter().all(|q| matches!(q, Query::Point(_))));

        let knn_heavy = BatchMix {
            range: 0.0,
            point: 0.0,
            knn: 1.0,
            knn_k: 5,
        };
        let batch = generate_mixed_batch_with_mix(Region::CaliNev, 50, 0.001, 5, knn_heavy);
        assert!(batch.iter().all(|q| matches!(q, Query::Knn { k: 5, .. })));
    }

    #[test]
    fn overlapping_batches_are_deterministic_and_concentrated() {
        let batch = generate_overlapping_batch(Region::NewYork, 400, 0.001, 9);
        assert_eq!(batch.len(), 400);
        assert_eq!(
            batch,
            generate_overlapping_batch(Region::NewYork, 400, 0.001, 9)
        );
        let rects: Vec<Rect> = batch
            .iter()
            .map(|q| match q {
                Query::Range { rect, mode } => {
                    assert_eq!(*mode, RangeMode::Count, "overlap batches count");
                    *rect
                }
                other => panic!("unexpected plan {other:?}"),
            })
            .collect();
        for rect in &rects {
            assert!(Rect::UNIT.contains_rect(rect));
            assert!((rect.area() - 0.001).abs() < 1e-9);
        }
        // Concentration: queries must overlap far more than a regular
        // workload of the same size and selectivity would. Count
        // overlapping pairs on a sample.
        let regular: Vec<Rect> = generate_queries(Region::NewYork, 400, 0.001);
        let overlap_pairs = |rects: &[Rect]| -> usize {
            let mut pairs = 0;
            for (i, a) in rects.iter().enumerate().take(100) {
                for b in rects.iter().skip(i + 1).take(100) {
                    pairs += usize::from(a.overlaps(b));
                }
            }
            pairs
        };
        let concentrated = overlap_pairs(&rects);
        let baseline = overlap_pairs(&regular);
        assert!(
            concentrated * 2 > baseline * 3,
            "overlapping batch ({concentrated} pairs) is not denser than the \
             regular workload ({baseline} pairs)"
        );
    }

    #[test]
    fn scattered_batches_are_deterministic_and_barely_overlap() {
        let batch = generate_scattered_batch(Region::NewYork, 400, 0.0002, 9);
        assert_eq!(batch.len(), 400);
        assert_eq!(
            batch,
            generate_scattered_batch(Region::NewYork, 400, 0.0002, 9)
        );
        assert_ne!(
            batch,
            generate_scattered_batch(Region::Japan, 400, 0.0002, 9),
            "different regions must season the jitter differently"
        );
        let rects: Vec<Rect> = batch
            .iter()
            .map(|q| match q {
                Query::Range { rect, mode } => {
                    assert_eq!(*mode, RangeMode::Count, "scattered batches count");
                    *rect
                }
                other => panic!("unexpected plan {other:?}"),
            })
            .collect();
        for rect in &rects {
            assert!(Rect::UNIT.contains_rect(rect));
            assert!((rect.area() - 0.0002).abs() < 1e-9);
        }
        // Anti-concentration: far fewer overlapping pairs than the
        // hotspot-concentrated batch of the same size and selectivity.
        let concentrated: Vec<Rect> = generate_overlapping_batch(Region::NewYork, 400, 0.0002, 9)
            .iter()
            .map(|q| match q {
                Query::Range { rect, .. } => *rect,
                other => panic!("unexpected plan {other:?}"),
            })
            .collect();
        let overlap_pairs = |rects: &[Rect]| -> usize {
            let mut pairs = 0;
            for (i, a) in rects.iter().enumerate().take(100) {
                for b in rects.iter().skip(i + 1).take(100) {
                    pairs += usize::from(a.overlaps(b));
                }
            }
            pairs
        };
        let scattered_pairs = overlap_pairs(&rects);
        let hot_pairs = overlap_pairs(&concentrated);
        assert!(
            scattered_pairs * 10 < hot_pairs.max(10),
            "scattered batch overlaps too much: {scattered_pairs} pairs vs \
             {hot_pairs} concentrated"
        );
    }

    #[test]
    fn point_batches_have_duplicates_and_misses() {
        let batch = generate_point_batch(Region::NewYork, 400, 17);
        assert_eq!(batch.len(), 400);
        assert_eq!(batch, generate_point_batch(Region::NewYork, 400, 17));
        let probes: Vec<_> = batch
            .iter()
            .map(|q| match q {
                Query::Point(p) => *p,
                other => panic!("unexpected plan {other:?}"),
            })
            .collect();
        let mut sorted = probes.clone();
        sorted.sort_by(|a, b| a.lex_cmp(b));
        sorted.dedup();
        assert!(
            sorted.len() < probes.len() * 9 / 10,
            "hot-key duplicates missing: {} distinct of {}",
            sorted.len(),
            probes.len()
        );
        assert!(
            probes.iter().any(|p| p.x > 1.0),
            "out-of-space miss probes missing"
        );
        for query in &batch {
            query.validate().expect("generated probes are valid");
        }
    }

    #[test]
    fn knn_batches_are_concentrated_and_deterministic() {
        let batch = generate_knn_batch(Region::Japan, 200, 8, 23);
        assert_eq!(batch.len(), 200);
        assert_eq!(batch, generate_knn_batch(Region::Japan, 200, 8, 23));
        for query in &batch {
            match query {
                Query::Knn { k, .. } => assert_eq!(*k, 8),
                other => panic!("unexpected plan {other:?}"),
            }
            query.validate().expect("generated kNN plans are valid");
        }
    }

    #[test]
    #[should_panic(expected = "mix weights")]
    fn all_zero_mix_is_rejected() {
        let zero = BatchMix {
            range: 0.0,
            point: 0.0,
            knn: 0.0,
            knn_k: 1,
        };
        let _ = generate_mixed_batch_with_mix(Region::Japan, 1, 0.001, 1, zero);
    }
}
