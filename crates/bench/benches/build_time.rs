//! Criterion benchmark behind Table 3: index construction time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wazi_bench::{build_index, IndexKind};
use wazi_workload::{generate_dataset, generate_queries, Region, SELECTIVITIES};

fn bench_build(c: &mut Criterion) {
    let points = generate_dataset(Region::NewYork, 20_000);
    let train = generate_queries(Region::NewYork, 500, SELECTIVITIES[2]);

    let mut group = c.benchmark_group("build/table3");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    // QUASII is excluded from the timed loop: its cracking-based build is
    // orders of magnitude slower (which is exactly what Table 3 reports) and
    // would dominate the benchmark wall-clock; the reproduce harness still
    // measures it.
    for kind in [
        IndexKind::Base,
        IndexKind::Cur,
        IndexKind::Flood,
        IndexKind::Str,
        IndexKind::Wazi,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| std::hint::black_box(build_index(kind, &points, &train, 256).build_ns));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
