//! Criterion benchmark behind Figure 8: range-query latency as the dataset
//! grows (WaZI vs Base, the two ends of the comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use wazi_bench::{build_index, IndexKind};
use wazi_storage::ExecStats;
use wazi_workload::{generate_dataset_with_seed, generate_queries, Region, SELECTIVITIES};

fn bench_scaling(c: &mut Criterion) {
    let train = generate_queries(Region::NewYork, 1_000, SELECTIVITIES[2]);
    let eval = generate_queries(Region::NewYork, 128, SELECTIVITIES[2]);

    let mut group = c.benchmark_group("scaling/figure8");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for size in [12_500usize, 25_000, 50_000, 100_000] {
        let points = generate_dataset_with_seed(Region::NewYork, size, 7);
        group.throughput(Throughput::Elements(size as u64));
        for kind in [IndexKind::Base, IndexKind::Wazi] {
            let built = build_index(kind, &points, &train, 256);
            group.bench_with_input(BenchmarkId::new(kind.name(), size), &built, |b, built| {
                let mut cursor = 0usize;
                b.iter(|| {
                    let mut stats = ExecStats::default();
                    let query = &eval[cursor % eval.len()];
                    cursor += 1;
                    // Non-materializing path: what the scaling experiment
                    // (Figure 8) reports.
                    std::hint::black_box(built.index.range_count(query, &mut stats))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
