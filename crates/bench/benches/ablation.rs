//! Criterion benchmark behind Figure 13: the four ablation variants of the
//! Z-index (Base, Base+SK, WaZI−SK, WaZI) answering the same workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wazi_bench::{build_index, IndexKind};
use wazi_storage::ExecStats;
use wazi_workload::{generate_dataset, generate_queries, Region, ABLATION_SELECTIVITIES};

fn bench_ablation(c: &mut Criterion) {
    let points = generate_dataset(Region::NewYork, 50_000);
    for &selectivity in &ABLATION_SELECTIVITIES {
        let train = generate_queries(Region::NewYork, 1_000, selectivity);
        let eval = generate_queries(Region::NewYork, 256, selectivity);
        let mut group = c.benchmark_group(format!(
            "ablation/figure13/sel_{:.4}pct",
            selectivity * 100.0
        ));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2));
        for kind in IndexKind::ABLATION {
            let built = build_index(kind, &points, &train, 256);
            group.bench_with_input(
                BenchmarkId::from_parameter(kind.name()),
                &built,
                |b, built| {
                    let mut cursor = 0usize;
                    b.iter(|| {
                        let mut stats = ExecStats::default();
                        let query = &eval[cursor % eval.len()];
                        cursor += 1;
                        // Non-materializing path: what the ablation experiment
                        // (Figure 13) reports.
                        std::hint::black_box(built.index.range_count(query, &mut stats))
                    });
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
