//! Criterion benchmark behind Figure 11: insert latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wazi_bench::{build_index, IndexKind};
use wazi_workload::{generate_dataset, generate_queries, uniform_dataset, Region, SELECTIVITIES};

fn bench_inserts(c: &mut Criterion) {
    let points = generate_dataset(Region::NewYork, 20_000);
    let train = generate_queries(Region::NewYork, 500, SELECTIVITIES[2]);
    let inserts = uniform_dataset(50_000, 3);

    let mut group = c.benchmark_group("insert/figure11");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for kind in IndexKind::INSERTABLE {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                // Rebuild periodically so the index does not grow unboundedly
                // across iterations; the measured unit is a single insert.
                let mut built = build_index(kind, &points, &train, 256);
                let mut cursor = 0usize;
                b.iter(|| {
                    if cursor == inserts.len() {
                        built = build_index(kind, &points, &train, 256);
                        cursor = 0;
                    }
                    let p = inserts[cursor];
                    cursor += 1;
                    std::hint::black_box(built.index.insert(p)).ok();
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_inserts);
criterion_main!(benches);
