//! Criterion benchmark behind Figures 4 and 6: range-query latency of every
//! index on a skewed workload, on both execution paths of the query engine —
//! the materializing `range_query` and the non-materializing `range_count`
//! the experiment harness reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wazi_bench::{build_index, IndexKind};
use wazi_storage::ExecStats;
use wazi_workload::{generate_dataset, generate_queries, Region, SELECTIVITIES};

fn bench_range_queries(c: &mut Criterion) {
    let points = generate_dataset(Region::NewYork, 50_000);
    let train = generate_queries(Region::NewYork, 1_000, SELECTIVITIES[2]);
    let eval = generate_queries(Region::NewYork, 256, SELECTIVITIES[2]);

    let mut group = c.benchmark_group("range_query/figure4_6");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for kind in IndexKind::OVERVIEW {
        let built = build_index(kind, &points, &train, 256);
        group.bench_with_input(
            BenchmarkId::new("materialize", kind.name()),
            &built,
            |b, built| {
                let mut cursor = 0usize;
                b.iter(|| {
                    let mut stats = ExecStats::default();
                    let query = &eval[cursor % eval.len()];
                    cursor += 1;
                    std::hint::black_box(built.index.range_query(query, &mut stats))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("count", kind.name()),
            &built,
            |b, built| {
                let mut cursor = 0usize;
                b.iter(|| {
                    let mut stats = ExecStats::default();
                    let query = &eval[cursor % eval.len()];
                    cursor += 1;
                    std::hint::black_box(built.index.range_count(query, &mut stats))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_range_queries);
criterion_main!(benches);
