//! Criterion benchmark behind the `batch` experiment: one overlapping range
//! batch executed through the query engine — sequential vs fused vs
//! parallel-fused — plus the heterogeneous mixed batch the engine schedules
//! across plan kinds and a shard-count sweep over a large overlapping
//! batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wazi_bench::{build_index, IndexKind};
use wazi_core::{BatchStrategy, Query, QueryEngine};
use wazi_workload::{
    generate_dataset, generate_mixed_batch, generate_overlapping_batch, generate_queries, Region,
    SELECTIVITIES,
};

fn strategy_label(strategy: BatchStrategy) -> String {
    match strategy {
        BatchStrategy::Auto => "auto".into(),
        BatchStrategy::Sequential => "sequential".into(),
        BatchStrategy::Fused => "fused".into(),
        BatchStrategy::FusedParallel { shards } => format!("fused-parallel-{shards}"),
    }
}

fn bench_batch_queries(c: &mut Criterion) {
    let points = generate_dataset(Region::NewYork, 50_000);
    let train = generate_queries(Region::NewYork, 1_000, SELECTIVITIES[3]);
    let range_batch: Vec<Query> = generate_queries(Region::NewYork, 256, SELECTIVITIES[3])
        .into_iter()
        .map(Query::range_count)
        .collect();
    let mixed_batch = generate_mixed_batch(Region::NewYork, 256, SELECTIVITIES[3], 99);

    let mut group = c.benchmark_group("batch_query/engine");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for kind in [IndexKind::Wazi, IndexKind::Base] {
        let built = build_index(kind, &points, &train, 256);
        for strategy in [
            BatchStrategy::Sequential,
            BatchStrategy::Fused,
            BatchStrategy::FusedParallel { shards: 4 },
            BatchStrategy::Auto,
        ] {
            let label = strategy_label(strategy);
            group.bench_with_input(
                BenchmarkId::new(format!("range/{label}"), kind.name()),
                &built,
                |b, built| {
                    let engine = QueryEngine::new(built.index.as_ref()).with_strategy(strategy);
                    b.iter(|| std::hint::black_box(engine.execute_batch(&range_batch).unwrap()));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("mixed/{label}"), kind.name()),
                &built,
                |b, built| {
                    let engine = QueryEngine::new(built.index.as_ref()).with_strategy(strategy);
                    b.iter(|| std::hint::black_box(engine.execute_batch(&mixed_batch).unwrap()));
                },
            );
        }
    }
    group.finish();

    // Shard scaling on the workload the parallel sweep exists for: a large,
    // heavily overlapping batch against the sharded kernels.
    let overlapping = generate_overlapping_batch(Region::NewYork, 2_000, SELECTIVITIES[3], 7);
    let mut group = c.benchmark_group("batch_query/shards");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for kind in [IndexKind::Wazi, IndexKind::Flood] {
        let built = build_index(kind, &points, &train, 256);
        for shards in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("overlap/{shards}"), kind.name()),
                &built,
                |b, built| {
                    let engine = QueryEngine::new(built.index.as_ref())
                        .with_strategy(BatchStrategy::FusedParallel { shards });
                    b.iter(|| std::hint::black_box(engine.execute_batch(&overlapping).unwrap()));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_batch_queries);
criterion_main!(benches);
