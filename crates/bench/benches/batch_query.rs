//! Criterion benchmark behind the `batch` experiment: one overlapping range
//! batch executed through the query engine, sequential vs fused, plus the
//! heterogeneous mixed batch the engine schedules across plan kinds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wazi_bench::{build_index, IndexKind};
use wazi_core::{BatchStrategy, Query, QueryEngine};
use wazi_workload::{
    generate_dataset, generate_mixed_batch, generate_queries, Region, SELECTIVITIES,
};

fn bench_batch_queries(c: &mut Criterion) {
    let points = generate_dataset(Region::NewYork, 50_000);
    let train = generate_queries(Region::NewYork, 1_000, SELECTIVITIES[3]);
    let range_batch: Vec<Query> = generate_queries(Region::NewYork, 256, SELECTIVITIES[3])
        .into_iter()
        .map(Query::range_count)
        .collect();
    let mixed_batch = generate_mixed_batch(Region::NewYork, 256, SELECTIVITIES[3], 99);

    let mut group = c.benchmark_group("batch_query/engine");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for kind in [IndexKind::Wazi, IndexKind::Base] {
        let built = build_index(kind, &points, &train, 256);
        for strategy in [BatchStrategy::Sequential, BatchStrategy::Fused] {
            let label = match strategy {
                BatchStrategy::Sequential => "sequential",
                BatchStrategy::Fused => "fused",
            };
            group.bench_with_input(
                BenchmarkId::new(format!("range/{label}"), kind.name()),
                &built,
                |b, built| {
                    let engine = QueryEngine::new(built.index.as_ref()).with_strategy(strategy);
                    b.iter(|| std::hint::black_box(engine.execute_batch(&range_batch).unwrap()));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("mixed/{label}"), kind.name()),
                &built,
                |b, built| {
                    let engine = QueryEngine::new(built.index.as_ref()).with_strategy(strategy);
                    b.iter(|| std::hint::black_box(engine.execute_batch(&mixed_batch).unwrap()));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_batch_queries);
criterion_main!(benches);
