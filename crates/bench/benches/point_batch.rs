//! Criterion benchmark for the fused point-probe and kNN batch kernels:
//! a hot-key probe batch (leaf-grouped, one page visit per owning page)
//! and a co-located kNN batch (grouped expanding-ring sweeps over the
//! fused range kernel), each compared against the sequential per-query
//! loop and the sharded parallel path on every kernel-backed index.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wazi_bench::{build_index, IndexKind};
use wazi_core::{BatchStrategy, QueryEngine};
use wazi_workload::{
    generate_dataset, generate_knn_batch, generate_point_batch, generate_queries, Region,
    SELECTIVITIES,
};

fn strategy_label(strategy: BatchStrategy) -> String {
    match strategy {
        BatchStrategy::Auto => "auto".into(),
        BatchStrategy::Sequential => "sequential".into(),
        BatchStrategy::Fused => "fused".into(),
        BatchStrategy::FusedParallel { shards } => format!("fused-parallel-{shards}"),
    }
}

fn bench_point_and_knn_batches(c: &mut Criterion) {
    let points = generate_dataset(Region::NewYork, 50_000);
    let train = generate_queries(Region::NewYork, 1_000, SELECTIVITIES[3]);
    let point_batch = generate_point_batch(Region::NewYork, 512, 11);
    let knn_batch = generate_knn_batch(Region::NewYork, 96, 8, 13);

    let mut group = c.benchmark_group("point_batch/engine");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for kind in [
        IndexKind::Wazi,
        IndexKind::Base,
        IndexKind::Flood,
        IndexKind::Zpgm,
    ] {
        let built = build_index(kind, &points, &train, 256);
        for strategy in [
            BatchStrategy::Sequential,
            BatchStrategy::Fused,
            BatchStrategy::FusedParallel { shards: 4 },
            BatchStrategy::Auto,
        ] {
            let label = strategy_label(strategy);
            group.bench_with_input(
                BenchmarkId::new(format!("points/{label}"), kind.name()),
                &built,
                |b, built| {
                    let engine = QueryEngine::new(built.index.as_ref()).with_strategy(strategy);
                    b.iter(|| std::hint::black_box(engine.execute_batch(&point_batch).unwrap()));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("knn/{label}"), kind.name()),
                &built,
                |b, built| {
                    let engine = QueryEngine::new(built.index.as_ref()).with_strategy(strategy);
                    b.iter(|| std::hint::black_box(engine.execute_batch(&knn_batch).unwrap()));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_point_and_knn_batches);
criterion_main!(benches);
