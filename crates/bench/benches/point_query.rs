//! Criterion benchmark behind Figure 10: point-query latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wazi_bench::{build_index, IndexKind};
use wazi_storage::ExecStats;
use wazi_workload::{
    generate_dataset, generate_queries, sample_point_queries, Region, SELECTIVITIES,
};

fn bench_point_queries(c: &mut Criterion) {
    let points = generate_dataset(Region::NewYork, 50_000);
    let train = generate_queries(Region::NewYork, 1_000, SELECTIVITIES[2]);
    let probes = sample_point_queries(&points, 1_000, 11);

    let mut group = c.benchmark_group("point_query/figure10");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for kind in IndexKind::PRIMARY {
        let built = build_index(kind, &points, &train, 256);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &built,
            |b, built| {
                let mut cursor = 0usize;
                b.iter(|| {
                    let mut stats = ExecStats::default();
                    let probe = &probes[cursor % probes.len()];
                    cursor += 1;
                    std::hint::black_box(built.index.point_query(probe, &mut stats))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_point_queries);
criterion_main!(benches);
