//! Regenerates the tables and figures of the WaZI paper's evaluation.
//!
//! ```text
//! reproduce [EXPERIMENT ...] [--size N] [--queries N] [--points N]
//!           [--leaf N] [--shards N] [--strategy S] [--transport T]
//!           [--smoke] [--json PATH] [--list]
//!
//! EXPERIMENT   one or more of the identifiers printed by --list
//!              (default: all)
//! --size N     default dataset size (default 100000)
//! --queries N  evaluation/training workload size (default 2000)
//! --points N   number of point queries (default 5000)
//! --leaf N     leaf capacity L (default 256)
//! --shards N   shard count for the batch experiment's FusedParallel rows
//!              (default 4)
//! --strategy S batch strategies the batch experiment compares:
//!              auto (default) runs the full suite — sequential, fused,
//!              fused-parallel/N and the cost-based auto scheduler; a
//!              fixed value (sequential | fused | fused-parallel) narrows
//!              the comparison to [sequential, S]
//! --transport T transports the service experiment's transport table
//!              compares: both (default) measures in-process submission
//!              and loopback TCP at the same offered load; in-process or
//!              tcp narrows the table to one transport
//! --smoke      start from the tiny smoke-scale context with artifact
//!              emission off (CI's configuration; later flags still
//!              override individual knobs)
//! --json PATH  also write all reports as a JSON array to PATH
//! --list       print the available experiments and exit
//! ```

use std::io::Write;
use wazi_bench::{select, ExperimentContext};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // --smoke rebases the whole context, so resolve it before the other
    // flags are applied on top.
    let mut ctx = if args.iter().any(|a| a == "--smoke") {
        ExperimentContext::smoke_run()
    } else {
        ExperimentContext::default()
    };
    let mut experiment_ids: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut list_only = false;

    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--size" => ctx.dataset_size = parse_number(iter.next(), "--size"),
            "--queries" => {
                let n = parse_number(iter.next(), "--queries");
                ctx.workload_size = n;
                ctx.training_size = n;
            }
            "--points" => ctx.point_queries = parse_number(iter.next(), "--points"),
            "--leaf" => ctx.leaf_capacity = parse_number(iter.next(), "--leaf"),
            "--shards" => ctx.batch_shards = parse_number(iter.next(), "--shards"),
            "--strategy" => {
                let value = iter
                    .next()
                    .unwrap_or_else(|| panic!("--strategy requires a value"));
                ctx.strategy = value.parse().unwrap_or_else(|e| panic!("{e}"));
            }
            "--transport" => {
                let value = iter
                    .next()
                    .unwrap_or_else(|| panic!("--transport requires a value"));
                ctx.transport = value.parse().unwrap_or_else(|e| panic!("{e}"));
            }
            "--smoke" => {} // already applied above
            "--json" => json_path = iter.next(),
            "--list" => list_only = true,
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                print_usage();
                std::process::exit(2);
            }
            other => experiment_ids.push(other.to_string()),
        }
    }

    if list_only {
        for spec in wazi_bench::registry() {
            println!("{:<16} {}", spec.id, spec.description);
        }
        return;
    }

    let selected = select(&experiment_ids);
    if selected.is_empty() {
        eprintln!("no experiment matches {experiment_ids:?}; registered experiments:");
        for spec in wazi_bench::registry() {
            eprintln!("  {:<16} {}", spec.id, spec.description);
        }
        std::process::exit(2);
    }

    println!(
        "# WaZI reproduction harness: {} experiment(s), {} points, {} queries, L = {}",
        selected.len(),
        ctx.dataset_size,
        ctx.workload_size,
        ctx.leaf_capacity
    );
    let mut all_reports = Vec::new();
    for spec in selected {
        eprintln!(">> running {} — {}", spec.id, spec.description);
        let started = std::time::Instant::now();
        let reports = (spec.run)(&ctx);
        eprintln!("   done in {:.1}s", started.elapsed().as_secs_f64());
        for report in &reports {
            println!("{report}");
        }
        all_reports.extend(reports);
    }

    if let Some(path) = json_path {
        let json = wazi_bench::Report::json_array(&all_reports);
        let mut file =
            std::fs::File::create(&path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
        file.write_all(json.as_bytes())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {} reports to {path}", all_reports.len());
    }
}

fn parse_number(value: Option<String>, flag: &str) -> usize {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{flag} requires a positive integer argument"))
}

fn print_usage() {
    println!(
        "usage: reproduce [EXPERIMENT ...] [--size N] [--queries N] [--points N] [--leaf N] \
         [--shards N] [--strategy auto|sequential|fused|fused-parallel] \
         [--transport both|in-process|tcp] [--smoke] [--json PATH] [--list]"
    );
}
