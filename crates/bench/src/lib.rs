//! # wazi-bench
//!
//! The experiment harness reproducing every table and figure of the WaZI
//! paper's evaluation (Section 6). The crate provides:
//!
//! * [`suite`] — uniform construction of every compared index;
//! * [`measure`] — latency/work measurement helpers;
//! * [`experiments`] — one runner per table/figure, returning printable
//!   [`report::Report`]s;
//! * the `reproduce` binary — `cargo run --release -p wazi-bench --bin
//!   reproduce -- all` regenerates every table and figure at laptop scale
//!   (use `--size` to scale up towards the paper's setting);
//! * Criterion micro-benchmarks under `benches/`, one per experiment family.
//!
//! Beyond the paper, the `batch` experiment compares sequential, fused and
//! parallel-fused batch execution across all seven overview indexes and
//! emits the machine-readable `BENCH_batch.json` artifact at the
//! repository root (`reproduce batch [--shards N]`); it hard-asserts the
//! engine's fusion contract — identical results, never more pages or
//! bounding-box checks than sequential — so CI fails on any divergence.
//! The `service` experiment drives the `wazi-service` concurrent query
//! service with open-loop arrival schedules and emits `BENCH_service.json`
//! (`reproduce service`); it hard-asserts that every routed response is
//! bit-identical to solo execution and that adaptive micro-batching beats
//! per-query dispatch at saturating offered load.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod measure;
pub mod report;
pub mod suite;

pub use experiments::{
    registry, select, ExperimentContext, ExperimentSpec, StrategyFilter, TransportFilter,
};
pub use report::Report;
pub use suite::{build_index, build_versioned_index, BuiltIndex, IndexKind};
