//! # wazi-bench
//!
//! The experiment harness reproducing every table and figure of the WaZI
//! paper's evaluation (Section 6). The crate provides:
//!
//! * [`suite`] — uniform construction of every compared index;
//! * [`measure`] — latency/work measurement helpers;
//! * [`experiments`] — one runner per table/figure, returning printable
//!   [`report::Report`]s;
//! * the `reproduce` binary — `cargo run --release -p wazi-bench --bin
//!   reproduce -- all` regenerates every table and figure at laptop scale
//!   (use `--size` to scale up towards the paper's setting);
//! * Criterion micro-benchmarks under `benches/`, one per experiment family.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod measure;
pub mod report;
pub mod suite;

pub use experiments::{registry, select, ExperimentContext, ExperimentSpec};
pub use report::Report;
pub use suite::{build_index, BuiltIndex, IndexKind};
