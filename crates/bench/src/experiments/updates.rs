//! Figures 11 and 12: index updates and workload change.

use super::{workload_setup, ExperimentContext};
use crate::measure::{format_ns, measure_inserts, measure_range_queries};
use crate::report::Report;
use crate::suite::{build_index, IndexKind};
use wazi_workload::{
    drift_workload, generate_queries_with_seed, uniform_dataset, uniform_queries, Region,
    SELECTIVITIES,
};

/// Figure 11: insert latency and range-query latency while uniformly
/// sampled points are inserted in five equal batches (25% of the dataset in
/// total, mirroring the paper's 8M inserts into 32M-point indexes).
pub fn figure11(ctx: &ExperimentContext) -> Vec<Report> {
    let region = Region::NewYork;
    let selectivity = SELECTIVITIES[2];
    let (points, train, eval) = workload_setup(ctx, region, selectivity, ctx.dataset_size);
    let total_inserts = ctx.dataset_size / 4;
    let batches = 5usize;
    let insert_points = uniform_dataset(total_inserts, ctx.seed ^ 0x1157);

    let mut insert_report = Report::new(
        "figure11-insert",
        "Insert latency over five insert batches (Figure 11, left)",
    )
    .with_headers(&["% inserted", "WaZI", "CUR", "Flood"]);
    let mut range_report = Report::new(
        "figure11-range",
        "Range query latency after each insert batch (Figure 11, right)",
    )
    .with_headers(&["% inserted", "WaZI", "CUR", "Flood"]);

    let mut indexes: Vec<_> = IndexKind::INSERTABLE
        .iter()
        .map(|&kind| build_index(kind, &points, &train, ctx.leaf_capacity))
        .collect();

    let batch_size = total_inserts / batches;
    for batch in 0..batches {
        let slice = &insert_points[batch * batch_size..(batch + 1) * batch_size];
        let inserted_percent = 100.0 * ((batch + 1) * batch_size) as f64 / ctx.dataset_size as f64;
        let mut insert_row = vec![format!("{inserted_percent:.0}%")];
        let mut range_row = vec![format!("{inserted_percent:.0}%")];
        for built in &mut indexes {
            let m = measure_inserts(built.index.as_mut(), slice);
            // Per-batch maintenance: WaZI recomputes its look-ahead pointers
            // here. The paper charges that work to the insert path ("the
            // need to recompute the look-ahead pointers", Section 6.7), so
            // the maintenance time is amortised into the reported per-insert
            // latency.
            let maintain_start = std::time::Instant::now();
            built.index.maintain();
            let maintain_ns = maintain_start.elapsed().as_nanos() as f64;
            let amortised = m.mean_latency_ns + maintain_ns / slice.len().max(1) as f64;
            insert_row.push(format_ns(amortised));
            let r = measure_range_queries(built.index.as_ref(), &eval);
            range_row.push(format_ns(r.mean_latency_ns));
        }
        insert_report.push_row(insert_row);
        range_report.push_row(range_row);
    }
    insert_report.push_note("expected shape: WaZI inserts are the slowest (leaf splits + look-ahead maintenance); Flood and CUR are faster");
    range_report.push_note("expected shape: range latency degrades only mildly (logarithmically) with inserts for all three indexes");
    vec![insert_report, range_report]
}

/// Figure 12: range-query latency of Base and WaZI as the evaluated workload
/// drifts away from the training workload — towards a uniform workload
/// (left) and towards a differently skewed workload (right).
pub fn figure12(ctx: &ExperimentContext) -> Vec<Report> {
    let region = Region::NewYork;
    let other_region = Region::Japan; // a differently skewed check-in profile
    let selectivity = SELECTIVITIES[2];
    let (points, train, original_eval) = workload_setup(ctx, region, selectivity, ctx.dataset_size);

    let base = build_index(IndexKind::Base, &points, &train, ctx.leaf_capacity);
    let wazi = build_index(IndexKind::Wazi, &points, &train, ctx.leaf_capacity);

    let uniform = uniform_queries(ctx.workload_size, selectivity, ctx.seed ^ 0x12);
    let skewed = generate_queries_with_seed(
        other_region,
        ctx.workload_size,
        selectivity,
        ctx.seed ^ 0x13,
    );

    let mut reports = Vec::new();
    for (id, title, replacement) in [
        (
            "figure12-uniform",
            "Range query time under drift towards a uniform workload (Figure 12, left)",
            &uniform,
        ),
        (
            "figure12-skewed",
            "Range query time under drift towards a differently skewed workload (Figure 12, right)",
            &skewed,
        ),
    ] {
        let mut report =
            Report::new(id, title).with_headers(&["% change", "Base", "WaZI", "WaZI/Base"]);
        for change in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
            let drifted = drift_workload(&original_eval, replacement, change, ctx.seed ^ 0x14);
            let base_m = measure_range_queries(base.index.as_ref(), &drifted);
            let wazi_m = measure_range_queries(wazi.index.as_ref(), &drifted);
            report.push_row(vec![
                format!("{:.0}%", change * 100.0),
                format_ns(base_m.mean_latency_ns),
                format_ns(wazi_m.mean_latency_ns),
                format!(
                    "{:.2}",
                    wazi_m.mean_latency_ns / base_m.mean_latency_ns.max(1.0)
                ),
            ]);
        }
        report.push_note("expected shape: Base stays flat; WaZI degrades gracefully towards uniform workloads but can fall behind Base beyond ~60% drift towards a differently skewed workload");
        reports.push(report);
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_smoke_test() {
        let mut ctx = ExperimentContext::smoke_test();
        ctx.dataset_size = 2_000;
        ctx.workload_size = 30;
        ctx.training_size = 30;
        let reports = figure11(&ctx);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].rows.len(), 5);
        assert_eq!(reports[1].rows.len(), 5);
    }

    #[test]
    fn figure12_smoke_test() {
        let mut ctx = ExperimentContext::smoke_test();
        ctx.dataset_size = 2_000;
        ctx.workload_size = 40;
        ctx.training_size = 40;
        let reports = figure12(&ctx);
        assert_eq!(reports.len(), 2);
        for report in &reports {
            assert_eq!(report.rows.len(), 6);
            assert_eq!(report.rows[0][0], "0%");
            assert_eq!(report.rows[5][0], "100%");
        }
    }
}
