//! Figure 10: point-query latency over dataset sizes.

use super::{workload_setup, ExperimentContext};
use crate::measure::{format_ns, measure_point_queries};
use crate::report::Report;
use crate::suite::{build_index, IndexKind};
use wazi_workload::{sample_point_queries, Region, SELECTIVITIES};

/// Figure 10: mean point-query latency of every primary index as the dataset
/// grows. Point queries are sampled from the data distribution (Section 6.4).
pub fn figure10(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new(
        "figure10",
        "Point query time over dataset sizes (Figure 10)",
    )
    .with_headers(&["Size", "QUASII", "CUR", "STR", "Flood", "Base", "WaZI"]);
    let region = Region::NewYork;
    for size in ctx.size_sweep() {
        let (points, train, _) = workload_setup(ctx, region, SELECTIVITIES[2], size);
        let probes = sample_point_queries(&points, ctx.point_queries, ctx.seed ^ 0xF00D);
        let mut row = vec![size.to_string()];
        for kind in IndexKind::PRIMARY {
            let built = build_index(kind, &points, &train, ctx.leaf_capacity);
            let m = measure_point_queries(built.index.as_ref(), &probes);
            debug_assert!(m.hit_rate > 0.99, "{kind}: sampled probes must be found");
            row.push(format_ns(m.mean_latency_ns));
        }
        report.push_row(row);
    }
    report.push_note(format!(
        "{} point queries sampled from the data distribution per size",
        ctx.point_queries
    ));
    report.push_note("expected shape: WaZI and Base are fastest (cheap per-node computations); QUASII is slowest due to its fractured layout");
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure10_smoke_test() {
        let mut ctx = ExperimentContext::smoke_test();
        ctx.dataset_size = 2_000;
        ctx.point_queries = 50;
        let reports = figure10(&ctx);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].rows.len(), ctx.size_sweep().len());
        for row in &reports[0].rows {
            assert_eq!(row.len(), 7);
        }
    }
}
