//! Tables 1 and 2: static descriptions of the evaluation setup.

use super::ExperimentContext;
use crate::report::Report;
use crate::suite::IndexKind;
use wazi_workload::SELECTIVITIES;

/// Table 1: key properties of the compared indexes.
pub fn table1(_ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new("table1", "Key properties of indexes in the experiments")
        .with_headers(&["Index", "SFC-based", "Query-Aware", "Learned"]);
    for kind in IndexKind::PRIMARY {
        let (sfc, query_aware, learned) = kind.properties();
        report.push_row(vec![
            kind.name().to_string(),
            tick(sfc),
            tick(query_aware),
            tick(learned),
        ]);
    }
    report.push_note("matches Table 1 of the paper by construction");
    vec![report]
}

/// Table 2: parameter settings actually used by this run, next to the
/// paper's values.
pub fn table2(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new("table2", "Parameter setting").with_headers(&[
        "Parameter",
        "Paper",
        "This run",
    ]);
    let sweep: Vec<String> = ctx.size_sweep().iter().map(|s| s.to_string()).collect();
    report.push_row(vec![
        "Dataset size".into(),
        "[4, 8, 16, 32, 64] x 10^6 (default 32M)".into(),
        format!("[{}] (default {})", sweep.join(", "), ctx.dataset_size),
    ]);
    report.push_row(vec![
        "Query selectivity (%)".into(),
        "[0.0016, 0.0064, 0.0256, 0.1024]".into(),
        SELECTIVITIES
            .iter()
            .map(|s| format!("{:.4}", s * 100.0))
            .collect::<Vec<_>>()
            .join(", "),
    ]);
    report.push_row(vec![
        "Leaf-node size".into(),
        "256".into(),
        ctx.leaf_capacity.to_string(),
    ]);
    report.push_row(vec![
        "Range-query workload size".into(),
        "20,000".into(),
        ctx.workload_size.to_string(),
    ]);
    report.push_row(vec![
        "Point queries".into(),
        "50,000".into(),
        ctx.point_queries.to_string(),
    ]);
    report.push_note(
        "datasets and workloads are synthetic stand-ins for OSM/Gowalla; see DESIGN.md §3",
    );
    vec![report]
}

fn tick(value: bool) -> String {
    if value { "yes" } else { "-" }.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_the_six_primary_indexes() {
        let reports = table1(&ExperimentContext::smoke_test());
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].rows.len(), 6);
        let wazi_row = reports[0]
            .rows
            .iter()
            .find(|r| r[0] == "WaZI")
            .expect("WaZI row");
        assert_eq!(wazi_row[1..], ["yes", "yes", "yes"]);
    }

    #[test]
    fn table2_reflects_the_context() {
        let ctx = ExperimentContext::smoke_test();
        let reports = table2(&ctx);
        let text = reports[0].to_string();
        assert!(text.contains("Leaf-node size"));
        assert!(text.contains(&ctx.leaf_capacity.to_string()));
        assert!(text.contains("0.0016"));
    }
}
