//! One module per table/figure of the paper's evaluation (Section 6).
//!
//! Every experiment is a function taking an [`ExperimentContext`] and
//! returning one or more [`Report`]s. The `reproduce` binary dispatches on
//! experiment identifiers; DESIGN.md §2 maps each identifier to the paper's
//! table or figure.

pub mod ablation;
pub mod batch;
pub mod build;
pub mod calibrate;
pub mod point;
pub mod properties;
pub mod range;
pub mod service;
pub mod updates;

use crate::report::Report;
use wazi_core::BatchStrategy;

/// Which batch strategies the `batch` experiment compares (the `reproduce
/// --strategy` flag).
///
/// The default, [`StrategyFilter::Auto`], runs the *full* comparison suite —
/// sequential, fused, fused-parallel and the cost-based Auto scheduler — so
/// the emitted table shows Auto against every fixed strategy and the
/// misprediction asserts have their baselines. A fixed value narrows the
/// suite to `[sequential, value]` for focused runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrategyFilter {
    /// The full suite: sequential, fused, fused-parallel/N and auto.
    #[default]
    Auto,
    /// Sequential only.
    Sequential,
    /// Sequential vs fused.
    Fused,
    /// Sequential vs fused-parallel at the context's shard count.
    FusedParallel,
}

impl StrategyFilter {
    /// The labelled strategy list the batch experiment measures, always
    /// starting with the sequential baseline the asserts compare against.
    pub fn comparison(self, shards: usize) -> Vec<(String, BatchStrategy)> {
        let sequential = ("sequential".to_string(), BatchStrategy::Sequential);
        match self {
            StrategyFilter::Auto => vec![
                sequential,
                ("fused".to_string(), BatchStrategy::Fused),
                (
                    format!("fused-parallel/{shards}"),
                    BatchStrategy::FusedParallel { shards },
                ),
                ("auto".to_string(), BatchStrategy::Auto),
            ],
            StrategyFilter::Sequential => vec![sequential],
            StrategyFilter::Fused => {
                vec![sequential, ("fused".to_string(), BatchStrategy::Fused)]
            }
            StrategyFilter::FusedParallel => vec![
                sequential,
                (
                    format!("fused-parallel/{shards}"),
                    BatchStrategy::FusedParallel { shards },
                ),
            ],
        }
    }
}

/// Which transports the `service` experiment's transport table measures
/// (the `reproduce --transport` flag).
///
/// The default, [`TransportFilter::Both`], runs in-process submission and
/// loopback TCP at the same offered load so the table shows what the wire
/// costs; a single value narrows the table for focused runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportFilter {
    /// In-process and loopback-TCP rows at each load point.
    #[default]
    Both,
    /// In-process submission only.
    InProcess,
    /// Loopback TCP only.
    Tcp,
}

impl TransportFilter {
    /// Whether the in-process rows run under this filter.
    pub fn includes_in_process(self) -> bool {
        matches!(self, TransportFilter::Both | TransportFilter::InProcess)
    }

    /// Whether the loopback-TCP rows run under this filter.
    pub fn includes_tcp(self) -> bool {
        matches!(self, TransportFilter::Both | TransportFilter::Tcp)
    }
}

impl std::str::FromStr for TransportFilter {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "both" => Ok(TransportFilter::Both),
            "in-process" => Ok(TransportFilter::InProcess),
            "tcp" => Ok(TransportFilter::Tcp),
            other => Err(format!(
                "unknown transport '{other}' (expected both | in-process | tcp)"
            )),
        }
    }
}

impl std::str::FromStr for StrategyFilter {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(StrategyFilter::Auto),
            "sequential" => Ok(StrategyFilter::Sequential),
            "fused" => Ok(StrategyFilter::Fused),
            "fused-parallel" => Ok(StrategyFilter::FusedParallel),
            other => Err(format!(
                "unknown strategy '{other}' (expected auto | sequential | fused | fused-parallel)"
            )),
        }
    }
}

/// Global knobs of an experiment run. The defaults are laptop-scale
/// stand-ins for the paper's server-scale parameters (Table 2); the
/// `reproduce` binary exposes them as command-line flags so paper-scale runs
/// remain possible.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentContext {
    /// Default dataset size (the paper's default is 32 million).
    pub dataset_size: usize,
    /// Number of evaluation range queries per workload (paper: 20 000).
    pub workload_size: usize,
    /// Number of training queries handed to query-aware indexes.
    pub training_size: usize,
    /// Number of point queries (paper: 50 000).
    pub point_queries: usize,
    /// Leaf capacity `L` (paper: 256).
    pub leaf_capacity: usize,
    /// Base seed mixed into every generator.
    pub seed: u64,
    /// Shard count used by the batch experiment's `FusedParallel` rows
    /// (the `reproduce --shards N` flag).
    pub batch_shards: usize,
    /// Whether experiments may write machine-readable artifacts
    /// (`BENCH_batch.json`) into the working directory. Test contexts turn
    /// this off so tiny smoke runs never clobber the committed artifacts.
    pub emit_artifacts: bool,
    /// Which batch strategies the batch experiment compares (the
    /// `reproduce --strategy` flag).
    pub strategy: StrategyFilter,
    /// Which transports the service experiment's transport table compares
    /// (the `reproduce --transport` flag).
    pub transport: TransportFilter,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        Self {
            dataset_size: 100_000,
            workload_size: 2_000,
            training_size: 2_000,
            point_queries: 5_000,
            leaf_capacity: 256,
            seed: 7,
            batch_shards: 4,
            emit_artifacts: true,
            strategy: StrategyFilter::Auto,
            transport: TransportFilter::Both,
        }
    }
}

impl ExperimentContext {
    /// A very small context used by unit and integration tests.
    pub fn smoke_test() -> Self {
        Self {
            dataset_size: 4_000,
            workload_size: 100,
            training_size: 100,
            point_queries: 200,
            leaf_capacity: 64,
            seed: 7,
            batch_shards: 4,
            emit_artifacts: false,
            strategy: StrategyFilter::Auto,
            transport: TransportFilter::Both,
        }
    }

    /// The context of a `reproduce --smoke` run: the tiny test scale with
    /// artifact emission off, so CI smoke jobs exercise every assert without
    /// clobbering the committed artifacts.
    pub fn smoke_run() -> Self {
        Self::smoke_test()
    }

    /// The dataset-size sweep of Figures 8 and 10 and Tables 3 and 5,
    /// scaled around the context's default size the same way the paper
    /// sweeps 4–64 million around its 16/32-million defaults.
    pub fn size_sweep(&self) -> Vec<usize> {
        [1usize, 2, 4, 8, 16]
            .iter()
            .map(|f| (self.dataset_size / 4) * f)
            .filter(|&n| n > 0)
            .collect()
    }
}

/// Generates the dataset, training workload and (disjoint but identically
/// distributed) evaluation workload for one region at one selectivity.
pub(crate) fn workload_setup(
    ctx: &ExperimentContext,
    region: wazi_workload::Region,
    selectivity: f64,
    dataset_size: usize,
) -> (
    Vec<wazi_geom::Point>,
    Vec<wazi_geom::Rect>,
    Vec<wazi_geom::Rect>,
) {
    let points = wazi_workload::generate_dataset_with_seed(region, dataset_size, region.seed());
    let train = wazi_workload::generate_queries_with_seed(
        region,
        ctx.training_size,
        selectivity,
        region.seed() ^ ctx.seed,
    );
    let eval = wazi_workload::generate_queries_with_seed(
        region,
        ctx.workload_size,
        selectivity,
        region.seed() ^ ctx.seed ^ 0xABCD_EF01,
    );
    (points, train, eval)
}

/// Identifier, description and runner of one experiment.
pub struct ExperimentSpec {
    /// Identifier accepted by the `reproduce` binary (e.g. `"figure6"`).
    pub id: &'static str,
    /// What the experiment reproduces.
    pub description: &'static str,
    /// Runner producing one or more reports.
    pub run: fn(&ExperimentContext) -> Vec<Report>,
}

/// The registry of every experiment, in the order the paper presents them.
pub fn registry() -> Vec<ExperimentSpec> {
    vec![
        ExperimentSpec {
            id: "table1",
            description: "Key properties of the compared indexes (Table 1)",
            run: properties::table1,
        },
        ExperimentSpec {
            id: "table2",
            description: "Parameter settings of the evaluation (Table 2)",
            run: properties::table2,
        },
        ExperimentSpec {
            id: "figure4",
            description:
                "Average range-query latency of all indexes incl. rank-space Z-order (Figure 4)",
            run: range::figure4,
        },
        ExperimentSpec {
            id: "figure6",
            description: "Range-query latency per dataset and selectivity (Figure 6)",
            run: range::figure6,
        },
        ExperimentSpec {
            id: "figure7",
            description: "Percentage improvement over Base (Figure 7)",
            run: range::figure7,
        },
        ExperimentSpec {
            id: "figure8",
            description: "Range-query latency over dataset sizes (Figure 8)",
            run: range::figure8,
        },
        ExperimentSpec {
            id: "figure9",
            description: "Projection vs scan split of range-query time (Figure 9)",
            run: range::figure9,
        },
        ExperimentSpec {
            id: "figure10",
            description: "Point-query latency over dataset sizes (Figure 10)",
            run: point::figure10,
        },
        ExperimentSpec {
            id: "table3",
            description: "Index build times (Table 3)",
            run: build::table3,
        },
        ExperimentSpec {
            id: "table4",
            description: "Cost redemption against Base (Table 4)",
            run: build::table4,
        },
        ExperimentSpec {
            id: "table5",
            description: "Index sizes (Table 5)",
            run: build::table5,
        },
        ExperimentSpec {
            id: "figure11",
            description: "Insert latency and range latency under inserts (Figure 11)",
            run: updates::figure11,
        },
        ExperimentSpec {
            id: "figure12",
            description: "Range-query latency under workload change (Figure 12)",
            run: updates::figure12,
        },
        ExperimentSpec {
            id: "figure13",
            description: "Ablation study: partitioning vs skipping (Figure 13)",
            run: ablation::figure13,
        },
        ExperimentSpec {
            id: "ablation-extra",
            description: "Extra ablations beyond the paper: kappa, alpha and density estimation",
            run: ablation::extra,
        },
        ExperimentSpec {
            id: "batch",
            description: "Sequential vs fused vs parallel vs cost-based auto batched execution \
                 through the engine, with a shard-count sweep (BENCH_batch.json)",
            run: batch::batch,
        },
        ExperimentSpec {
            id: "calibrate",
            description: "Cost-model calibration: micro-fit the per-kernel constants and check \
                 the decision boundaries (BENCH_calibrate.json)",
            run: calibrate::calibrate,
        },
        ExperimentSpec {
            id: "service",
            description: "Concurrent query service under offered load: adaptive micro-batching \
                 vs per-query dispatch, throughput and tail latency (BENCH_service.json)",
            run: service::service,
        },
    ]
}

/// Looks up experiments by identifier (`"all"` returns the full registry).
pub fn select(ids: &[String]) -> Vec<ExperimentSpec> {
    let registry = registry();
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        return registry;
    }
    registry
        .into_iter()
        .filter(|spec| ids.iter().any(|i| i == spec.id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_selectable() {
        let registry = registry();
        let mut ids: Vec<&str> = registry.iter().map(|s| s.id).collect();
        assert!(ids.len() >= 15, "every table and figure must be present");
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), registry.len(), "ids must be unique");

        assert!(
            registry.iter().any(|s| s.id == "service"),
            "the service experiment must be registered"
        );
        let picked = select(&["figure6".to_string(), "table3".to_string()]);
        assert_eq!(picked.len(), 2);
        let all = select(&["all".to_string()]);
        assert_eq!(all.len(), registry.len());
        assert!(select(&["nonsense".to_string()]).is_empty());
    }

    #[test]
    fn strategy_filters_parse_and_expand() {
        assert_eq!("auto".parse::<StrategyFilter>(), Ok(StrategyFilter::Auto));
        assert_eq!(
            "fused-parallel".parse::<StrategyFilter>(),
            Ok(StrategyFilter::FusedParallel)
        );
        assert!("nonsense".parse::<StrategyFilter>().is_err());

        let full = StrategyFilter::Auto.comparison(4);
        assert_eq!(full.len(), 4);
        assert_eq!(full[0].0, "sequential");
        assert_eq!(full[2].0, "fused-parallel/4");
        assert_eq!(full[3].1, BatchStrategy::Auto);
        let fixed = StrategyFilter::Fused.comparison(4);
        assert_eq!(fixed.len(), 2);
        assert_eq!(fixed[1].1, BatchStrategy::Fused);
        assert_eq!(StrategyFilter::Sequential.comparison(4).len(), 1);
    }

    #[test]
    fn size_sweep_scales_with_context() {
        let ctx = ExperimentContext::default();
        let sweep = ctx.size_sweep();
        assert_eq!(sweep.len(), 5);
        assert_eq!(sweep[0] * 16, sweep[4]);
        assert_eq!(sweep[2], ctx.dataset_size);
    }
}
