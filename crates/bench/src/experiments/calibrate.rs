//! Cost-model calibration: where the numbers in
//! [`wazi_core::CalibrationTable::BAKED`] come from, and how to check them
//! on the host you are running on.
//!
//! The engine's [`wazi_core::BatchStrategy::Auto`] scheduler prices each
//! candidate schedule with per-kernel-class constants (nanoseconds per
//! request, per page fetch, per point comparison, ...). Those constants are
//! baked into the core crate so scheduling never needs a warm-up run — but
//! baked numbers age with hardware, so this experiment re-fits them from
//! targeted micro-measurements on two representative indexes (WaZI for the
//! page-backed class, Zpgm for the flat-array class), prints
//! baked-versus-fitted per constant, and *asserts* the two things that must
//! hold regardless of the hardware:
//!
//! * each fitted constant is within a loose sanity band of its baked value
//!   (an order-of-magnitude drift means the model's units are wrong, not
//!   that the machine is fast), and
//! * the decision boundaries come out right on the workloads built to pin
//!   them — Zpgm routes a scattered flat-array batch through the per-query
//!   loop and measures at least as fast there, while WaZI fuses a heavily
//!   overlapping batch and measures at least as fast fused.
//!
//! When artifact emission is on, the table is written to
//! `BENCH_calibrate.json`; regenerating the baked table after a hardware
//! change is a copy-paste of the fitted column into `engine/cost.rs`.

use super::{workload_setup, ExperimentContext};
use crate::measure::{format_ns, measure_query_batch, BatchMeasurement};
use crate::report::Report;
use crate::suite::{build_index, IndexKind};
use wazi_core::{
    BatchStrategy, CalibrationTable, ChosenStrategy, CostConstants, Query, SpatialIndex,
};
use wazi_workload::{generate_overlapping_batch, generate_scattered_batch, Region, SELECTIVITIES};

/// Region and selectivities mirrored from the batch experiment, so the
/// calibration workloads are the decision workloads.
const CALIBRATE_REGION: Region = Region::NewYork;
const OVERLAP_SELECTIVITY: f64 = SELECTIVITIES[3];
const SCATTERED_SELECTIVITY: f64 = SELECTIVITIES[0];

/// Sizes of the fitting batches: large enough that per-request terms
/// dominate timer resolution, small enough for a `--smoke` CI job.
const FIT_BATCH: usize = 512;

/// A fitted constant may drift this factor from its baked value in either
/// direction before the sanity assert trips: calibration tracks hardware,
/// the assert only catches unit-level mistakes.
const SANITY_BAND: f64 = 64.0;

/// Wall-clock slack for the decision-boundary asserts, absorbing scheduler
/// noise on sub-millisecond smoke batches.
const BOUNDARY_SLACK_NS: u64 = 2_000_000;

/// File the fitted table is serialised to when artifact emission is on.
pub const CALIBRATE_JSON_PATH: &str = "BENCH_calibrate.json";

/// One fitted constant: `None` means the host cannot fit it (for example
/// the parallel constants on a single-core container) and the baked value
/// stands.
struct Fitted {
    name: &'static str,
    baked: f64,
    fitted: Option<f64>,
}

/// Warm-up pass plus best-of-N measurement. The minimum is the right
/// statistic for the boundary asserts: a single run on a loaded one-core
/// host can absorb a multi-millisecond scheduler hiccup — larger than the
/// whole batch latency — and the comparisons here are about the work the
/// strategies do, not about the scheduler.
fn warm(index: &dyn SpatialIndex, batch: &[Query], strategy: BatchStrategy) -> BatchMeasurement {
    const RUNS: usize = 3;
    let _ = measure_query_batch(index, batch, strategy);
    let mut best = measure_query_batch(index, batch, strategy);
    for _ in 1..RUNS {
        let m = measure_query_batch(index, batch, strategy);
        if m.batch_latency_ns < best.batch_latency_ns {
            best = m;
        }
    }
    best
}

/// Per-point cost fitted from one full-space scan: every point of the
/// dataset is compared exactly once, so the latency divided by the points
/// scanned bounds the per-comparison cost (page fetches ride along —
/// acceptable for a loose fit, they are amortised over the leaf capacity).
fn fit_point_ns(index: &dyn SpatialIndex) -> Option<f64> {
    let full = vec![Query::range_count(wazi_geom::Rect::UNIT)];
    let m = warm(index, &full, BatchStrategy::Sequential);
    (m.totals.points_scanned > 0)
        .then(|| m.batch_latency_ns as f64 / m.totals.points_scanned as f64)
}

/// Per-request setup costs fitted from a scattered batch: subtract the
/// already-fitted data-touching terms from the batch latency and divide
/// what remains across the requests.
fn fit_per_query_ns(m: &BatchMeasurement, point_ns: f64, page_ns: f64) -> Option<f64> {
    let data_ns =
        m.totals.points_scanned as f64 * point_ns + m.totals.pages_scanned as f64 * page_ns;
    let residual = m.batch_latency_ns as f64 - data_ns;
    (m.queries > 0 && residual > 0.0).then(|| residual / m.queries as f64)
}

/// Fits the page-backed class on WaZI and the flat class on Zpgm, returning
/// the per-class constant rows plus the decision-boundary measurements the
/// asserts and the report both use.
pub fn calibrate(ctx: &ExperimentContext) -> Vec<Report> {
    let (points, train, _) =
        workload_setup(ctx, CALIBRATE_REGION, OVERLAP_SELECTIVITY, ctx.dataset_size);
    let scattered = generate_scattered_batch(
        CALIBRATE_REGION,
        FIT_BATCH,
        SCATTERED_SELECTIVITY,
        ctx.seed ^ 0xCA11,
    );
    let overlapping = generate_overlapping_batch(
        CALIBRATE_REGION,
        FIT_BATCH.max(ctx.workload_size),
        OVERLAP_SELECTIVITY,
        ctx.seed ^ 0xF17,
    );

    let mut table = Report::new(
        "calibrate-constants",
        "Cost-model constants: baked (engine/cost.rs) vs fitted on this host",
    )
    .with_headers(&["Class", "Constant", "Baked", "Fitted", "Ratio"]);
    let mut boundaries = Report::new(
        "calibrate-boundaries",
        "Decision boundaries under the baked table on this host",
    )
    .with_headers(&["Index", "Batch", "Chosen", "Sequential", "Fused", "Auto"]);

    for (kind, class_name, baked) in [
        (
            IndexKind::Wazi,
            "page-backed",
            CalibrationTable::BAKED.page_backed,
        ),
        (IndexKind::Zpgm, "flat", CalibrationTable::BAKED.flat),
    ] {
        let built = build_index(kind, &points, &train, ctx.leaf_capacity);
        let index = built.index.as_ref();

        let point_ns = fit_point_ns(index);
        // The page term only exists for the page-backed class; attribute a
        // leaf-capacity's worth of point cost per fetch as its loose fit.
        let page_ns = match kind {
            IndexKind::Wazi => point_ns.map(|p| p * ctx.leaf_capacity as f64 * 0.25),
            _ => None,
        };
        let seq_m = warm(index, &scattered, BatchStrategy::Sequential);
        let fused_m = warm(index, &scattered, BatchStrategy::Fused);
        let auto_m = warm(index, &scattered, BatchStrategy::Auto);
        let seq_query_ns = fit_per_query_ns(
            &seq_m,
            point_ns.unwrap_or(baked.point_ns),
            page_ns.unwrap_or(baked.page_ns),
        );
        let fused_query_ns = fit_per_query_ns(
            &fused_m,
            point_ns.unwrap_or(baked.point_ns),
            page_ns.unwrap_or(baked.page_ns),
        )
        // The fused sweep must price above the sequential loop per
        // request, or tiny disjoint batches would fuse: clamp the fit to
        // preserve the model's structural invariant.
        .map(|ns| ns.max(seq_query_ns.unwrap_or(0.0) * 1.1));

        let fits = constants_rows(&baked, point_ns, page_ns, seq_query_ns, fused_query_ns);
        for fit in &fits {
            let (fitted_cell, ratio_cell) = match fit.fitted {
                Some(f) => {
                    let ratio = if fit.baked > 0.0 { f / fit.baked } else { 0.0 };
                    assert!(
                        ratio < SANITY_BAND && (ratio > 1.0 / SANITY_BAND || fit.baked == 0.0),
                        "{class_name}/{}: fitted {f:.1} ns is outside the sanity band \
                         of baked {:.1} ns",
                        fit.name,
                        fit.baked
                    );
                    (format!("{f:.1}"), format!("{ratio:.2}x"))
                }
                None => ("-".to_string(), "-".to_string()),
            };
            table.push_row(vec![
                class_name.to_string(),
                fit.name.to_string(),
                format!("{:.1}", fit.baked),
                fitted_cell,
                ratio_cell,
            ]);
        }

        // Decision boundaries. Scattered: the flat class must go
        // sequential and measure no slower there; fused setup has nothing
        // to amortise against on either class.
        let chosen = auto_m
            .decisions
            .range
            .map(|d| d.chosen)
            .expect("the scattered batch has a range partition to decide");
        boundaries.push_row(vec![
            kind.name().to_string(),
            "scattered".to_string(),
            chosen.to_string(),
            format_ns(seq_m.batch_latency_ns as f64),
            format_ns(fused_m.batch_latency_ns as f64),
            format_ns(auto_m.batch_latency_ns as f64),
        ]);
        if kind == IndexKind::Zpgm {
            assert_ne!(
                chosen,
                ChosenStrategy::Fused,
                "calibration boundary: Zpgm's scattered batch must not take the \
                 plain fused sweep"
            );
            assert!(
                seq_m.batch_latency_ns <= fused_m.batch_latency_ns + BOUNDARY_SLACK_NS,
                "calibration boundary: Zpgm's sequential scattered batch ({}) \
                 measured slower than fused ({}) — the flat-class model is wrong",
                format_ns(seq_m.batch_latency_ns as f64),
                format_ns(fused_m.batch_latency_ns as f64)
            );
        }

        // Overlapping: the page-backed class must fuse and measure no
        // slower fused.
        let seq_o = warm(index, &overlapping, BatchStrategy::Sequential);
        let fused_o = warm(index, &overlapping, BatchStrategy::Fused);
        let auto_o = warm(index, &overlapping, BatchStrategy::Auto);
        let chosen_o = auto_o
            .decisions
            .range
            .map(|d| d.chosen)
            .expect("the overlapping batch has a range partition to decide");
        boundaries.push_row(vec![
            kind.name().to_string(),
            "overlapping".to_string(),
            chosen_o.to_string(),
            format_ns(seq_o.batch_latency_ns as f64),
            format_ns(fused_o.batch_latency_ns as f64),
            format_ns(auto_o.batch_latency_ns as f64),
        ]);
        if kind == IndexKind::Wazi {
            assert_ne!(
                chosen_o,
                ChosenStrategy::Sequential,
                "calibration boundary: WaZI's heavily overlapping batch must fuse"
            );
            assert!(
                fused_o.batch_latency_ns <= seq_o.batch_latency_ns + BOUNDARY_SLACK_NS,
                "calibration boundary: WaZI's fused overlapping batch ({}) measured \
                 slower than sequential ({}) — the page-backed model is wrong",
                format_ns(fused_o.batch_latency_ns as f64),
                format_ns(seq_o.batch_latency_ns as f64)
            );
        }
    }

    table.push_note(format!(
        "fits: point_ns from a full-space scan (latency / points compared), page_ns as \
         a quarter leaf-capacity of point cost per fetch, per-request constants from a \
         {FIT_BATCH}-query scattered batch after subtracting the fitted data-touching \
         terms; '-' marks constants this host cannot fit (the parallel constants need \
         worker threads — available_parallelism = {}). Asserted: every fitted constant \
         within {SANITY_BAND:.0}x of its baked value. To re-bake after a hardware \
         change, copy the fitted column into CalibrationTable::BAKED (engine/cost.rs) \
         and re-run `reproduce batch`",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    boundaries.push_note(
        "asserted: Zpgm (flat class) never takes the plain fused sweep on the \
         scattered batch and measures sequential <= fused there; WaZI (page-backed) \
         fuses the overlapping batch and measures fused <= sequential. These are the \
         decision boundaries the Auto scheduler exists to get right — a violation \
         fails the run, baked constants or not",
    );

    let reports = vec![table, boundaries];
    if ctx.emit_artifacts {
        match std::fs::write(CALIBRATE_JSON_PATH, Report::json_array(&reports)) {
            Ok(()) => eprintln!("   wrote {CALIBRATE_JSON_PATH}"),
            Err(e) => eprintln!("   could not write {CALIBRATE_JSON_PATH}: {e}"),
        }
    }
    reports
}

/// Lays out the per-class constant rows: fitted where this host could
/// measure, `None` (baked stands) elsewhere.
fn constants_rows(
    baked: &CostConstants,
    point_ns: Option<f64>,
    page_ns: Option<f64>,
    seq_query_ns: Option<f64>,
    fused_query_ns: Option<f64>,
) -> Vec<Fitted> {
    vec![
        Fitted {
            name: "seq_query_ns",
            baked: baked.seq_query_ns,
            fitted: seq_query_ns,
        },
        Fitted {
            name: "fused_query_ns",
            baked: baked.fused_query_ns,
            fitted: fused_query_ns,
        },
        Fitted {
            name: "page_ns",
            baked: baked.page_ns,
            fitted: page_ns,
        },
        Fitted {
            name: "check_ns",
            baked: baked.check_ns,
            fitted: None,
        },
        Fitted {
            name: "point_ns",
            baked: baked.point_ns,
            fitted: point_ns,
        },
        Fitted {
            name: "fused_point_penalty_ns",
            baked: baked.fused_point_penalty_ns,
            fitted: None,
        },
        Fitted {
            name: "spawn_ns",
            baked: baked.spawn_ns,
            fitted: None,
        },
        Fitted {
            name: "parallel_efficiency",
            baked: baked.parallel_efficiency,
            fitted: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The calibrate experiment's own acceptance: it runs at smoke scale
    /// without tripping its asserts, covers every constant of both classes,
    /// and records all four decision-boundary rows.
    #[test]
    fn calibrate_fits_both_classes_and_checks_the_boundaries() {
        let ctx = ExperimentContext::smoke_test();
        let reports = calibrate(&ctx);
        assert_eq!(reports.len(), 2);
        let [table, boundaries] = &reports[..] else {
            panic!("expected two reports");
        };
        // Eight constants per class, two classes.
        assert_eq!(table.rows.len(), 16);
        // Every fitted row has a numeric ratio; unfittable rows show '-'.
        assert!(table.rows.iter().any(|r| r[1] == "point_ns" && r[3] != "-"));
        assert!(table.rows.iter().all(|r| r[1] != "spawn_ns" || r[3] == "-"));
        // Two batches per representative index.
        assert_eq!(boundaries.rows.len(), 4);
        for (index, batch) in [
            ("wazi", "scattered"),
            ("wazi", "overlapping"),
            ("zpgm", "scattered"),
            ("zpgm", "overlapping"),
        ] {
            assert!(
                boundaries
                    .rows
                    .iter()
                    .any(|r| r[0].to_lowercase().contains(index) && r[1] == batch),
                "missing {index}/{batch} boundary row"
            );
        }
    }
}
