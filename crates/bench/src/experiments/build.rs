//! Tables 3, 4 and 5: build time, cost redemption and index size.

use super::{workload_setup, ExperimentContext};
use crate::measure::{format_ns, measure_range_queries};
use crate::report::Report;
use crate::suite::{build_index, IndexKind};
use wazi_workload::{Region, SELECTIVITIES};

/// Table 3: build time of every primary index over the dataset-size sweep.
pub fn table3(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new("table3", "Build time of all indexes (Table 3)")
        .with_headers(&["Size", "Base", "CUR", "Flood", "QUASII", "STR", "WaZI"]);
    let order = [
        IndexKind::Base,
        IndexKind::Cur,
        IndexKind::Flood,
        IndexKind::Quasii,
        IndexKind::Str,
        IndexKind::Wazi,
    ];
    for size in ctx.size_sweep() {
        let (points, train, _) = workload_setup(ctx, Region::NewYork, SELECTIVITIES[2], size);
        let mut row = vec![size.to_string()];
        for kind in order {
            let built = build_index(kind, &points, &train, ctx.leaf_capacity);
            row.push(format_ns(built.build_ns as f64));
        }
        report.push_row(row);
    }
    report.push_note("expected shape: STR fastest, Flood and Base next, WaZI roughly 3-6x Base (density estimation + candidate evaluation), QUASII slowest by far");
    vec![report]
}

/// Table 4: cost redemption — the number of queries after which an index's
/// cumulative (build + query) time drops below Base's.
pub fn table4(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new(
        "table4",
        "Cost-redemption value of indexes against Base (Table 4); lower is better",
    )
    .with_headers(&["Dataset", "CUR", "Flood", "QUASII", "STR", "WaZI"]);
    let kinds = [
        IndexKind::Cur,
        IndexKind::Flood,
        IndexKind::Quasii,
        IndexKind::Str,
        IndexKind::Wazi,
    ];
    for region in Region::ALL {
        let (points, train, eval) = workload_setup(ctx, region, SELECTIVITIES[2], ctx.dataset_size);
        let base = build_index(IndexKind::Base, &points, &train, ctx.leaf_capacity);
        let base_query = measure_range_queries(base.index.as_ref(), &eval).mean_latency_ns;
        let mut row = vec![region.name().to_string()];
        for kind in kinds {
            let built = build_index(kind, &points, &train, ctx.leaf_capacity);
            let query = measure_range_queries(built.index.as_ref(), &eval).mean_latency_ns;
            row.push(redemption_cell(
                built.build_ns as f64,
                base.build_ns as f64,
                query,
                base_query,
            ));
        }
        report.push_row(row);
    }
    report.push_note(
        "(+) slower to build but faster to query: redeems after the reported number of queries",
    );
    report.push_note("(-) faster to build but slower to query: falls behind after the reported number of queries");
    report.push_note("(+)/(-) without a number: better/worse regardless of the number of queries");
    vec![report]
}

/// Implements the paper's `red_X = (X.Build - Base.Build) / (Base.Query - X.Query)`
/// with the same sign conventions as Table 4.
fn redemption_cell(build: f64, base_build: f64, query: f64, base_query: f64) -> String {
    let build_delta = build - base_build;
    let query_gain = base_query - query;
    if build_delta > 0.0 && query_gain > 0.0 {
        format!("(+) {}", format_count(build_delta / query_gain))
    } else if build_delta < 0.0 && query_gain < 0.0 {
        format!("(-) {}", format_count(build_delta / query_gain))
    } else if build_delta <= 0.0 && query_gain >= 0.0 {
        "(+)".to_string()
    } else {
        "(-)".to_string()
    }
}

fn format_count(value: f64) -> String {
    if value >= 1e6 {
        format!("{:.1}M", value / 1e6)
    } else if value >= 1e3 {
        format!("{:.0}k", value / 1e3)
    } else {
        format!("{value:.0}")
    }
}

/// Table 5: index structure sizes.
pub fn table5(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new("table5", "Sizes of all indexes (Table 5)")
        .with_headers(&["Size", "Base", "CUR", "Flood", "QUASII", "STR", "WaZI"]);
    let order = [
        IndexKind::Base,
        IndexKind::Cur,
        IndexKind::Flood,
        IndexKind::Quasii,
        IndexKind::Str,
        IndexKind::Wazi,
    ];
    for size in ctx.size_sweep() {
        let (points, train, _) = workload_setup(ctx, Region::NewYork, SELECTIVITIES[2], size);
        let mut row = vec![size.to_string()];
        for kind in order {
            let built = build_index(kind, &points, &train, ctx.leaf_capacity);
            row.push(format_bytes(built.index.size_bytes()));
        }
        report.push_row(row);
    }
    report.push_note("structure size only (tree nodes, leaf metadata, learned components); the clustered data pages are common to all indexes");
    report.push_note("expected shape: WaZI is nearly identical to Base (workload-awareness costs no extra space); Flood and QUASII are smallest; sizes grow linearly with the dataset");
    vec![report]
}

fn format_bytes(bytes: usize) -> String {
    let b = bytes as f64;
    if b >= 1e6 {
        format!("{:.2} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1} KB", b / 1e3)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_and_table5_cover_the_size_sweep() {
        let mut ctx = ExperimentContext::smoke_test();
        ctx.dataset_size = 2_000;
        let t3 = table3(&ctx);
        assert_eq!(t3[0].rows.len(), ctx.size_sweep().len());
        let t5 = table5(&ctx);
        assert_eq!(t5[0].rows.len(), ctx.size_sweep().len());
        for row in &t5[0].rows {
            assert!(row[1..].iter().all(|c| c.contains('B')), "sizes rendered");
        }
    }

    #[test]
    fn redemption_cells_follow_the_sign_convention() {
        // Slower build, faster query: redeems after build_delta / gain queries.
        assert_eq!(redemption_cell(2_000.0, 1_000.0, 5.0, 10.0), "(+) 200");
        // Faster build, slower query.
        assert!(redemption_cell(500.0, 1_000.0, 20.0, 10.0).starts_with("(-)"));
        // Better on both axes.
        assert_eq!(redemption_cell(500.0, 1_000.0, 5.0, 10.0), "(+)");
        // Worse on both axes.
        assert_eq!(redemption_cell(2_000.0, 1_000.0, 20.0, 10.0), "(-)");
        assert_eq!(format_count(2_500_000.0), "2.5M");
        assert_eq!(format_count(2_600.0), "3k");
        assert_eq!(format_count(42.0), "42");
    }

    #[test]
    fn table4_smoke_test() {
        let mut ctx = ExperimentContext::smoke_test();
        ctx.dataset_size = 2_000;
        ctx.workload_size = 50;
        ctx.training_size = 50;
        let t4 = table4(&ctx);
        assert_eq!(t4[0].rows.len(), Region::ALL.len());
        for row in &t4[0].rows {
            for cell in &row[1..] {
                assert!(cell.starts_with("(+)") || cell.starts_with("(-)"), "{cell}");
            }
        }
    }
}
