//! Batched query execution: the engine experiment beyond the paper.
//!
//! The paper evaluates queries one at a time; production workloads arrive
//! in batches. This experiment drives every index through the typed query
//! engine's batch executor and compares the default sequential schedule
//! against the fused strategy, which routes a batch's range plans through
//! WaZI's batched leaf-interval kernel so pages shared by overlapping
//! queries are scanned once per batch. Besides the usual reports, the
//! experiment emits its tables as `BENCH_batch.json` in the working
//! directory, the machine-readable artifact CI and regression tooling
//! consume.

use super::{workload_setup, ExperimentContext};
use crate::measure::{format_ns, measure_query_batch, BatchMeasurement};
use crate::report::Report;
use crate::suite::{build_index, IndexKind};
use wazi_core::{BatchStrategy, Query};
use wazi_workload::{generate_mixed_batch, Region, SELECTIVITIES};

/// The overlapping-range workload: the highest selectivity of Table 2 over
/// the most concentrated query profile, so consecutive queries hit shared
/// pages — the case batching exists for.
const BATCH_REGION: Region = Region::NewYork;
const BATCH_SELECTIVITY: f64 = SELECTIVITIES[3];

/// File the experiment's reports are serialised to (JSON array, same format
/// as the `reproduce` binary's `--json` output).
pub const BATCH_JSON_PATH: &str = "BENCH_batch.json";

fn pages_row(kind: IndexKind, m: &BatchMeasurement, strategy: &str) -> Vec<String> {
    vec![
        kind.name().to_string(),
        strategy.to_string(),
        format!("{}", m.totals.pages_scanned),
        format!("{}", m.totals.points_scanned),
        format!("{}", m.totals.bbs_checked),
        format!("{}", m.total_results),
        format_ns(m.batch_latency_ns as f64),
    ]
}

/// The batch experiment: sequential vs fused execution of an overlapping
/// range batch on every primary index, plus a mixed range/point/kNN batch
/// exercising the heterogeneous path.
pub fn batch(ctx: &ExperimentContext) -> Vec<Report> {
    let (points, train, eval) =
        workload_setup(ctx, BATCH_REGION, BATCH_SELECTIVITY, ctx.dataset_size);
    let range_batch: Vec<Query> = eval.iter().copied().map(Query::range_count).collect();
    let mixed_batch = generate_mixed_batch(
        BATCH_REGION,
        ctx.workload_size,
        BATCH_SELECTIVITY,
        ctx.seed ^ 0xBA7C,
    );

    let mut overlap = Report::new(
        "batch-range",
        "Sequential vs fused execution of an overlapping range batch",
    )
    .with_headers(&[
        "Index",
        "Strategy",
        "Pages scanned",
        "Points scanned",
        "BBs checked",
        "Results",
        "Batch latency",
    ]);
    let mut mixed = Report::new(
        "batch-mixed",
        "Mixed range/point/kNN batch through the query engine",
    )
    .with_headers(&[
        "Index",
        "Strategy",
        "Fused queries",
        "Results",
        "Pages scanned",
        "Batch latency",
    ]);

    for &kind in &IndexKind::PRIMARY {
        let built = build_index(kind, &points, &train, ctx.leaf_capacity);
        let index = built.index.as_ref();
        let sequential = measure_query_batch(index, &range_batch, BatchStrategy::Sequential);
        let fused = measure_query_batch(index, &range_batch, BatchStrategy::Fused);
        debug_assert_eq!(sequential.total_results, fused.total_results);
        overlap.push_row(pages_row(kind, &sequential, "sequential"));
        overlap.push_row(pages_row(kind, &fused, "fused"));

        let mixed_sequential = measure_query_batch(index, &mixed_batch, BatchStrategy::Sequential);
        let mixed_fused = measure_query_batch(index, &mixed_batch, BatchStrategy::Fused);
        debug_assert_eq!(mixed_sequential.total_results, mixed_fused.total_results);
        for (m, strategy) in [(&mixed_sequential, "sequential"), (&mixed_fused, "fused")] {
            mixed.push_row(vec![
                kind.name().to_string(),
                strategy.to_string(),
                m.fused_queries.to_string(),
                m.total_results.to_string(),
                m.totals.pages_scanned.to_string(),
                format_ns(m.batch_latency_ns as f64),
            ]);
        }
    }
    overlap.push_note(format!(
        "region {BATCH_REGION}, selectivity {:.4}%, {} queries per batch, {} points",
        BATCH_SELECTIVITY * 100.0,
        range_batch.len(),
        ctx.dataset_size
    ));
    overlap.push_note(
        "expected shape: WaZI fused scans strictly fewer pages than WaZI sequential; \
         indexes without a batch kernel show identical rows for both strategies",
    );
    mixed.push_note(
        "fused queries counts the range plans routed through the batched kernel; \
         point and kNN plans always execute sequentially",
    );

    let reports = vec![overlap, mixed];
    match emit_batch_json(&reports, BATCH_JSON_PATH) {
        Ok(()) => eprintln!("   wrote {BATCH_JSON_PATH}"),
        Err(e) => eprintln!("   could not write {BATCH_JSON_PATH}: {e}"),
    }
    reports
}

/// Serialises the batch reports to `path` as a JSON array (the
/// `BENCH_batch.json` artifact).
pub fn emit_batch_json(reports: &[Report], path: &str) -> std::io::Result<()> {
    std::fs::write(path, Report::json_array(reports))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance property behind `BENCH_batch.json`: on an overlapping
    /// range batch, WaZI's fused kernel visits fewer pages than
    /// query-at-a-time execution, at identical results.
    #[test]
    fn fused_wazi_scans_fewer_pages_than_sequential() {
        let ctx = ExperimentContext::smoke_test();
        let (points, train, eval) =
            workload_setup(&ctx, BATCH_REGION, BATCH_SELECTIVITY, ctx.dataset_size);
        let batch: Vec<Query> = eval.iter().copied().map(Query::range_count).collect();
        let built = build_index(IndexKind::Wazi, &points, &train, ctx.leaf_capacity);
        let sequential =
            measure_query_batch(built.index.as_ref(), &batch, BatchStrategy::Sequential);
        let fused = measure_query_batch(built.index.as_ref(), &batch, BatchStrategy::Fused);
        assert_eq!(sequential.total_results, fused.total_results);
        assert_eq!(fused.fused_queries, batch.len());
        assert!(
            fused.totals.pages_scanned < sequential.totals.pages_scanned,
            "fused {} pages vs sequential {}",
            fused.totals.pages_scanned,
            sequential.totals.pages_scanned
        );
    }

    #[test]
    fn batch_experiment_produces_rows_for_every_primary_index() {
        let ctx = ExperimentContext::smoke_test();
        let reports = batch(&ctx);
        assert_eq!(reports.len(), 2);
        for report in &reports {
            assert_eq!(report.rows.len(), IndexKind::PRIMARY.len() * 2);
        }
        // Every index appears with both strategies.
        for kind in IndexKind::PRIMARY {
            for strategy in ["sequential", "fused"] {
                assert!(
                    reports[0]
                        .rows
                        .iter()
                        .any(|r| r[0] == kind.name() && r[1] == strategy),
                    "missing {kind}/{strategy} row"
                );
            }
        }
    }
}
