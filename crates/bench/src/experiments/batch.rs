//! Batched query execution: the engine experiment beyond the paper.
//!
//! The paper evaluates queries one at a time; production workloads arrive
//! in batches. This experiment drives every index through the typed query
//! engine's batch executor and compares four schedules: the sequential
//! loop, the fused strategy (a batch's range plans share one sweep through
//! the index's batched kernel, so pages relevant to several overlapping
//! queries are scanned once per batch), the parallel fused strategy (the
//! sweep's address span is partitioned into work-balanced shards swept on
//! worker threads) and the cost-based `Auto` scheduler, which picks among
//! the fixed strategies per batch partition from cheap projection
//! statistics. Every overview index participates — the Z-indexes and
//! Flood, the tree baselines STR / CUR / QUASII over their own node
//! layouts, and Zpgm's shared BIGMIN sweep — so the comparison is
//! genuinely cross-index. A dedicated shard-scaling table sweeps the shard
//! count on a large overlapping batch for every index with a sharded
//! kernel (all seven, now that Zpgm's flat entry array splits by code
//! range), a scattered low-overlap table exercises the case fusion cannot
//! win, and a decision table prints what `Auto` chose with its predicted
//! versus measured costs. Besides the usual reports, the experiment emits
//! its tables as `BENCH_batch.json` in the working directory — the
//! machine-readable artifact CI and regression tooling consume — unless
//! the context disables artifact emission (test contexts do, so tiny smoke
//! runs never clobber the committed file).

use super::{workload_setup, ExperimentContext};
use crate::measure::{format_ns, measure_query_batch, BatchMeasurement};
use crate::report::Report;
use crate::suite::{build_index, IndexKind};
use wazi_core::{BatchStrategy, ChosenStrategy, Query, SpatialIndex, StrategyDecisions};
use wazi_workload::{
    generate_mixed_batch, generate_overlapping_batch, generate_scattered_batch, Region,
    SELECTIVITIES,
};

/// The overlapping-range workload: the highest selectivity of Table 2 over
/// the most concentrated query profile, so consecutive queries hit shared
/// pages — the case batching exists for.
const BATCH_REGION: Region = Region::NewYork;
const BATCH_SELECTIVITY: f64 = SELECTIVITIES[3];

/// The scattered workload: a modest batch of tiny stratified queries with
/// almost nothing to share, so the per-query loop must win and the cost
/// model must say so.
const SCATTERED_BATCH: usize = 256;
const SCATTERED_SELECTIVITY: f64 = SELECTIVITIES[0];

/// Shard counts swept by the shard-scaling table (1 = the single-threaded
/// fused sweep the parallel rows are judged against).
const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Minimum size of the overlapping batch used by the shard-scaling table:
/// parallel sweeps need enough stacked work to amortize thread spawning,
/// whatever the context's workload size is.
const MIN_PARALLEL_BATCH: usize = 2_000;

/// Hard misprediction budget: Auto's wall-clock must land within this
/// percentage of the best fixed strategy on the same batch...
const AUTO_TOLERANCE_PERCENT: u64 = 10;
/// ...plus this absolute slack, which absorbs scheduler noise on the
/// sub-millisecond batches of smoke-scale runs.
const AUTO_SLACK_NS: u64 = 3_000_000;

/// File the experiment's reports are serialised to (JSON array, same format
/// as the `reproduce` binary's `--json` output).
pub const BATCH_JSON_PATH: &str = "BENCH_batch.json";

/// The latency Auto must stay under to count as predicting well against the
/// best fixed strategy's wall-clock.
fn misprediction_budget(best_fixed_ns: u64) -> u64 {
    best_fixed_ns + best_fixed_ns * AUTO_TOLERANCE_PERCENT / 100 + AUTO_SLACK_NS
}

/// Decision sanity: the choices no calibration is allowed to make, checked
/// on every Auto measurement the experiment takes. A violation is a cost
/// model bug, not noise, so these fail the run outright.
fn assert_decisions_sane(
    kind: IndexKind,
    batch_name: &str,
    decisions: &StrategyDecisions,
    workers: usize,
) {
    for (partition, decision) in decisions.iter() {
        if workers == 1 {
            assert!(
                !matches!(decision.chosen, ChosenStrategy::FusedParallel { .. }),
                "{kind}/{batch_name}/{partition}: Auto chose a parallel schedule \
                 on a single-core host"
            );
        }
    }
    // Zpgm's flat code array has no page fetches to share: the plain fused
    // sweep can only add coordination overhead, so Auto must never pick it
    // for the range partition (and on a single-core host — where parallel
    // sweeps are off the table too — that leaves exactly the sequential
    // loop).
    if kind == IndexKind::Zpgm {
        if let Some(range) = decisions.range {
            assert_ne!(
                range.chosen,
                ChosenStrategy::Fused,
                "Zpgm/{batch_name}: Auto picked the plain fused sweep for a \
                 flat code array"
            );
            if workers == 1 {
                assert_eq!(
                    range.chosen,
                    ChosenStrategy::Sequential,
                    "Zpgm/{batch_name}: the only schedule that can win on a \
                     flat array without worker threads is the per-query loop"
                );
            }
        }
    }
}

fn pages_row(kind: IndexKind, m: &BatchMeasurement, strategy: &str) -> Vec<String> {
    vec![
        kind.name().to_string(),
        strategy.to_string(),
        format!("{}", m.totals.pages_scanned),
        format!("{}", m.totals.points_scanned),
        format!("{}", m.totals.bbs_checked),
        format!("{}", m.total_results),
        format_ns(m.batch_latency_ns as f64),
    ]
}

/// Warm-up pass plus best-of-N measurement, so every strategy is compared
/// on warm caches instead of paying first-touch page faults in whatever
/// strategy happens to run first. Keeping the minimum run makes the
/// wall-clock asserts robust on a loaded one-core host, where a single
/// scheduler hiccup can exceed the whole batch latency.
fn measure_warm(
    index: &dyn SpatialIndex,
    batch: &[Query],
    strategy: BatchStrategy,
) -> BatchMeasurement {
    const RUNS: usize = 3;
    let _ = measure_query_batch(index, batch, strategy);
    let mut best = measure_query_batch(index, batch, strategy);
    for _ in 1..RUNS {
        let m = measure_query_batch(index, batch, strategy);
        if m.batch_latency_ns < best.batch_latency_ns {
            best = m;
        }
    }
    best
}

/// Finds the auto measurement and the best fixed wall-clock of one labelled
/// strategy sweep, when the sweep included Auto.
fn auto_vs_best_fixed(measured: &[(String, BatchMeasurement)]) -> Option<(BatchMeasurement, u64)> {
    let auto = measured.iter().find(|(label, _)| label == "auto")?.1;
    let best_fixed = measured
        .iter()
        .filter(|(label, _)| label != "auto")
        .map(|(_, m)| m.batch_latency_ns)
        .min()?;
    Some((auto, best_fixed))
}

/// The batch experiment: sequential vs fused vs parallel-fused vs
/// cost-based auto execution of an overlapping range batch on every
/// overview index, a mixed range/point/kNN batch exercising the
/// heterogeneous path, a scattered low-overlap batch the scheduler must
/// route sequentially, a shard-count sweep on a large overlapping batch
/// for the sharded kernels, and the decision table of what Auto chose.
pub fn batch(ctx: &ExperimentContext) -> Vec<Report> {
    let (points, train, eval) =
        workload_setup(ctx, BATCH_REGION, BATCH_SELECTIVITY, ctx.dataset_size);
    let range_batch: Vec<Query> = eval.iter().copied().map(Query::range_count).collect();
    let mixed_batch = generate_mixed_batch(
        BATCH_REGION,
        ctx.workload_size,
        BATCH_SELECTIVITY,
        ctx.seed ^ 0xBA7C,
    );
    let parallel_batch = generate_overlapping_batch(
        BATCH_REGION,
        ctx.workload_size.max(MIN_PARALLEL_BATCH),
        BATCH_SELECTIVITY,
        ctx.seed ^ 0x5AAD,
    );
    let scattered_batch = generate_scattered_batch(
        BATCH_REGION,
        SCATTERED_BATCH,
        SCATTERED_SELECTIVITY,
        ctx.seed ^ 0x5CA7,
    );
    let strategies = ctx.strategy.comparison(ctx.batch_shards);
    let auto_enabled = strategies
        .iter()
        .any(|(_, strategy)| *strategy == BatchStrategy::Auto);
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut overlap = Report::new(
        "batch-range",
        "Sequential vs fused vs parallel vs auto execution of an overlapping range batch",
    )
    .with_headers(&[
        "Index",
        "Strategy",
        "Pages scanned",
        "Points scanned",
        "BBs checked",
        "Results",
        "Batch latency",
    ]);
    let mut mixed = Report::new(
        "batch-mixed",
        "Mixed range/point/kNN batch through the query engine",
    )
    .with_headers(&[
        "Index",
        "Strategy",
        "Fused r/p/k",
        "Results",
        "Pages r/p/k",
        "Time r/p/k",
        "Batch latency",
    ]);
    let mut scattered = Report::new(
        "batch-scattered",
        "Scattered low-overlap range batch: the case fusion cannot win",
    )
    .with_headers(&[
        "Index",
        "Strategy",
        "Pages scanned",
        "Points scanned",
        "BBs checked",
        "Results",
        "Batch latency",
    ]);
    let mut scaling = Report::new(
        "batch-shards",
        "Parallel fused sweep over a large overlapping batch: shard-count scaling",
    )
    .with_headers(&[
        "Index",
        "Shards",
        "Pages scanned",
        "BBs checked",
        "Results",
        "Batch latency",
        "Speedup vs 1 shard",
    ]);
    let mut decisions_table = Report::new(
        "batch-decisions",
        "Auto's per-partition decisions on the mixed batch: predicted vs measured cost",
    )
    .with_headers(&[
        "Index",
        "Partition",
        "Queries",
        "Chosen",
        "Pred sequential",
        "Pred fused",
        "Pred parallel",
        "Measured",
    ]);

    // One pass over the overview suite, each index built exactly once.
    // Since every index of the suite now implements the fused range kernel
    // — the Z-indexes and Flood since PRs 2–4, STR / CUR / QUASII over
    // their own node layouts, Zpgm through the shared BIGMIN sweep — the
    // overlap table covers all seven overview kinds and *asserts* the
    // fusion contract on every row: identical results, and never more
    // pages or bounding-box checks than the sequential loop. Auto rows
    // additionally assert the misprediction budget: the scheduled batch
    // must land within tolerance of the best fixed strategy.
    for &kind in &IndexKind::OVERVIEW {
        let built = build_index(kind, &points, &train, ctx.leaf_capacity);
        let index = built.index.as_ref();
        let baseline = measure_warm(index, &range_batch, BatchStrategy::Sequential);
        let mut measured: Vec<(String, BatchMeasurement)> = Vec::new();
        for (label, strategy) in &strategies {
            let m = measure_warm(index, &range_batch, *strategy);
            assert_eq!(
                baseline.total_results, m.total_results,
                "{kind}/{label}: fused range-batch results diverge from sequential"
            );
            assert!(
                m.totals.pages_scanned <= baseline.totals.pages_scanned,
                "{kind}/{label}: fused pages regressed ({} vs {} sequential)",
                m.totals.pages_scanned,
                baseline.totals.pages_scanned
            );
            assert!(
                m.totals.bbs_checked <= baseline.totals.bbs_checked,
                "{kind}/{label}: fused BB checks regressed ({} vs {} sequential)",
                m.totals.bbs_checked,
                baseline.totals.bbs_checked
            );
            overlap.push_row(pages_row(kind, &m, label));
            measured.push((label.clone(), m));
        }
        if let Some((auto_m, best_fixed)) = auto_vs_best_fixed(&measured) {
            assert!(
                auto_m.batch_latency_ns <= misprediction_budget(best_fixed),
                "{kind}/range: Auto mispredicted — {} vs best fixed {}",
                format_ns(auto_m.batch_latency_ns as f64),
                format_ns(best_fixed as f64)
            );
            assert_decisions_sane(kind, "overlap", &auto_m.decisions, workers);
        }

        // The scattered batch: stratified tiny queries with almost no
        // shared pages, so a fused sweep's setup buys nothing. The cost
        // model must keep Auto within budget of the winning strategy —
        // on Zpgm's flat array that winner is the per-query loop, and
        // choosing the plain fused sweep there fails the run.
        let scattered_baseline = measure_warm(index, &scattered_batch, BatchStrategy::Sequential);
        let mut scattered_measured: Vec<(String, BatchMeasurement)> = Vec::new();
        for (label, strategy) in &strategies {
            let m = measure_warm(index, &scattered_batch, *strategy);
            assert_eq!(
                scattered_baseline.total_results, m.total_results,
                "{kind}/{label}: scattered-batch results diverge from sequential"
            );
            scattered.push_row(pages_row(kind, &m, label));
            scattered_measured.push((label.clone(), m));
        }
        if let Some((auto_m, best_fixed)) = auto_vs_best_fixed(&scattered_measured) {
            assert!(
                auto_m.batch_latency_ns <= misprediction_budget(best_fixed),
                "{kind}/scattered: Auto mispredicted — {} vs best fixed {}",
                format_ns(auto_m.batch_latency_ns as f64),
                format_ns(best_fixed as f64)
            );
            assert_decisions_sane(kind, "scattered", &auto_m.decisions, workers);
        }

        // Shard scaling for every index whose kernel can split its sweep —
        // since Zpgm's entry array partitions by code range, that is the
        // whole overview suite. The closing `auto` row shows what the
        // scheduler does with the same big overlapping batch.
        if index
            .range_batch_kernel()
            .is_some_and(|k| k.sharded().is_some())
        {
            let mut one_shard_ns = None;
            for shards in SHARD_SWEEP {
                let m = measure_warm(
                    index,
                    &parallel_batch,
                    BatchStrategy::FusedParallel { shards },
                );
                let base = *one_shard_ns.get_or_insert(m.batch_latency_ns.max(1));
                scaling.push_row(vec![
                    kind.name().to_string(),
                    shards.to_string(),
                    m.totals.pages_scanned.to_string(),
                    m.totals.bbs_checked.to_string(),
                    m.total_results.to_string(),
                    format_ns(m.batch_latency_ns as f64),
                    format!("{:.2}x", base as f64 / m.batch_latency_ns.max(1) as f64),
                ]);
            }
            if auto_enabled {
                let m = measure_warm(index, &parallel_batch, BatchStrategy::Auto);
                assert_decisions_sane(kind, "parallel", &m.decisions, workers);
                // On this heavily overlapping batch the page-backed
                // indexes have real fetches to share: a scheduler that
                // falls back to the per-query loop here has its
                // calibration upside down.
                if let Some(range) = m.decisions.range {
                    if kind != IndexKind::Zpgm {
                        assert_ne!(
                            range.chosen,
                            ChosenStrategy::Sequential,
                            "{kind}/parallel: Auto refused to fuse a heavily \
                             overlapping batch on a page-backed index"
                        );
                    }
                }
                let base = one_shard_ns.unwrap_or(1);
                scaling.push_row(vec![
                    kind.name().to_string(),
                    format!(
                        "auto ({})",
                        m.decisions
                            .range
                            .map_or("-".to_string(), |d| d.chosen.to_string())
                    ),
                    m.totals.pages_scanned.to_string(),
                    m.totals.bbs_checked.to_string(),
                    m.total_results.to_string(),
                    format_ns(m.batch_latency_ns as f64),
                    format!("{:.2}x", base as f64 / m.batch_latency_ns.max(1) as f64),
                ]);
            }
        }

        // The mixed batch runs on every overview index — Zpgm included,
        // since its point and range kernels joined the fused path — and the
        // experiment *asserts* the engine's equivalence contract on every
        // row: fused and fused-parallel mixed execution must produce
        // exactly the sequential loop's result counts (overall and per plan
        // type), and the fused strategies must never scan more pages than
        // sequential on any partition of a kernel-backed index. CI runs
        // this experiment at 1 and 4 shards on every push, so a divergence
        // fails the build.
        let mut mixed_measured: Vec<(String, BatchMeasurement)> = Vec::new();
        for (label, strategy) in &strategies {
            let m = measure_warm(index, &mixed_batch, *strategy);
            if let Some((_, reference)) = mixed_measured.first() {
                assert_eq!(
                    m.total_results, reference.total_results,
                    "{kind}/{label}: fused mixed-batch results diverge from sequential"
                );
                for (plan, fused_kind, sequential_kind) in [
                    ("range", &m.range_kind, &reference.range_kind),
                    ("point", &m.point_kind, &reference.point_kind),
                    ("knn", &m.knn_kind, &reference.knn_kind),
                ] {
                    assert_eq!(
                        fused_kind.results, sequential_kind.results,
                        "{kind}/{label}: {plan} partition results diverge"
                    );
                    if index.range_batch_kernel().is_some() {
                        assert!(
                            fused_kind.pages_scanned <= sequential_kind.pages_scanned,
                            "{kind}/{label}: {plan} partition pages regressed \
                             ({} fused vs {} sequential)",
                            fused_kind.pages_scanned,
                            sequential_kind.pages_scanned
                        );
                    }
                }
            }
            mixed.push_row(vec![
                kind.name().to_string(),
                label.clone(),
                format!("{}/{}/{}", m.fused_queries, m.fused_points, m.fused_knn),
                m.total_results.to_string(),
                format!(
                    "{}/{}/{}",
                    m.range_kind.pages_scanned,
                    m.point_kind.pages_scanned,
                    m.knn_kind.pages_scanned
                ),
                format!(
                    "{} / {} / {}",
                    format_ns(m.range_kind.time_ns as f64),
                    format_ns(m.point_kind.time_ns as f64),
                    format_ns(m.knn_kind.time_ns as f64)
                ),
                format_ns(m.batch_latency_ns as f64),
            ]);
            mixed_measured.push((label.clone(), m));
        }
        if let Some((auto_m, _)) = auto_vs_best_fixed(&mixed_measured) {
            assert_decisions_sane(kind, "mixed", &auto_m.decisions, workers);
            for (partition, decision) in auto_m.decisions.iter() {
                let (pred_seq, pred_fused, pred_par) = match decision.estimate {
                    Some(e) => (
                        format_ns(e.sequential_ns as f64),
                        format_ns(e.fused_ns as f64),
                        e.fused_parallel_ns.map_or("-".to_string(), |ns| {
                            format!("{} ({} shards)", format_ns(ns as f64), e.shards)
                        }),
                    ),
                    None => ("-".to_string(), "-".to_string(), "-".to_string()),
                };
                decisions_table.push_row(vec![
                    kind.name().to_string(),
                    partition.to_string(),
                    decision.queries.to_string(),
                    decision.chosen.to_string(),
                    pred_seq,
                    pred_fused,
                    pred_par,
                    format_ns(decision.actual_ns as f64),
                ]);
            }
            // The satellite fix this table exists to guard: under Auto,
            // Zpgm's mixed batch must not regress against the sequential
            // loop (the fused-mixed caveat of earlier revisions).
            if kind == IndexKind::Zpgm {
                let sequential_ns = mixed_measured[0].1.batch_latency_ns;
                assert!(
                    auto_m.batch_latency_ns
                        <= sequential_ns + sequential_ns * 15 / 100 + AUTO_SLACK_NS,
                    "Zpgm/mixed: Auto ({}) regressed against sequential ({})",
                    format_ns(auto_m.batch_latency_ns as f64),
                    format_ns(sequential_ns as f64)
                );
            }
        }
    }

    overlap.push_note(format!(
        "region {BATCH_REGION}, selectivity {:.4}%, {} queries per batch, {} points",
        BATCH_SELECTIVITY * 100.0,
        range_batch.len(),
        ctx.dataset_size
    ));
    overlap.push_note(
        "asserted per row (all seven overview indexes fuse range batches through their \
         own kernels): fused results equal sequential, fused pages and BB checks never \
         exceed sequential, and the auto row lands within 10% (+3 ms slack) of the best \
         fixed strategy. Expected shape: the page-backed indexes (WaZI, Base, STR, \
         CUR, Flood, QUASII) scan strictly fewer pages fused on this overlapping batch; \
         Zpgm's flat code array charges no pages, so Auto routes its range partitions \
         away from the plain fused sweep",
    );
    mixed.push_note(
        "r/p/k columns split each quantity by plan type (range / point probe / kNN); \
         'Fused r/p/k' counts the plans routed through each fused kernel — range plans \
         through the range kernel, point probes leaf-grouped through the point-batch \
         kernel, kNN plans through grouped expanding-ring sweeps over the range kernel",
    );
    mixed.push_note(
        "asserted per row: fused results (overall and per plan type) equal sequential, \
         and no kernel-backed partition scans more pages fused than sequential — the \
         point partition's fused pages drop below sequential wherever probes share \
         owning pages. Zpgm's flat code array has no fetches to save, so the plain \
         fused sweep used to trade coordination time for nothing on mixed batches; \
         Auto recognises the flat kernel class and routes that partition through the \
         per-query loop instead (asserted: Zpgm's auto mixed latency does not regress \
         against sequential)",
    );
    scattered.push_note(format!(
        "{SCATTERED_BATCH} tiny counting queries stratified over a jittered grid \
         (generate_scattered_batch) at selectivity {:.4}%: coverage ≈ union of covered \
         addresses, so a fused sweep has almost no shared fetches to amortize its \
         setup against. Asserted: identical results across strategies, the auto row \
         within 10% (+slack) of the best fixed strategy, and Zpgm's range decision \
         never the plain fused sweep (sequential on a single-core host)",
        SCATTERED_SELECTIVITY * 100.0
    ));
    scaling.push_note(format!(
        "{} heavily overlapping counting queries (generate_overlapping_batch), shard \
         bounds planned work-weighted from per-address point counts over the batch's \
         sweep span; shards = 1 is the single-threaded fused sweep. Address spaces: \
         leaf list (WaZI/Base), column grid (Flood), clustered page list (STR/CUR), \
         x-slice list (QUASII), flat code-entry array (Zpgm). BB checks are \
         shard-invariant (owner-based sharding executes every query's whole walk in \
         one shard); pages may rise slightly with the shard count because a crossing \
         query's tail refetches pages another shard also scans — still far below the \
         sequential loop's count. The closing auto row shows the cost model's pick \
         for the same batch (never a parallel schedule without worker threads; never \
         the per-query loop for a page-backed index on this much overlap)",
        parallel_batch.len()
    ));
    scaling.push_note(format!(
        "host available_parallelism = {workers}: parallel speedup requires hardware \
         threads; on a single-core host the engine sweeps the planned shards inline, \
         so >1-shard rows measure sharding overhead only"
    ));
    decisions_table.push_note(
        "one row per partition of the mixed batch the Auto scheduler decided \
         (range partitions carry the full cost estimate; point and kNN partitions \
         are routed by kernel-class rules, so their predicted columns are '-'). \
         'Measured' is the partition's wall-clock under the chosen schedule",
    );
    if !auto_enabled {
        decisions_table.push_note(
            "empty: the run's --strategy filter excluded auto, so no decisions were taken",
        );
    }

    let reports = vec![overlap, mixed, scattered, scaling, decisions_table];
    if ctx.emit_artifacts {
        match emit_batch_json(&reports, BATCH_JSON_PATH) {
            Ok(()) => eprintln!("   wrote {BATCH_JSON_PATH}"),
            Err(e) => eprintln!("   could not write {BATCH_JSON_PATH}: {e}"),
        }
    }
    reports
}

/// Serialises the batch reports to `path` as a JSON array (the
/// `BENCH_batch.json` artifact).
pub fn emit_batch_json(reports: &[Report], path: &str) -> std::io::Result<()> {
    std::fs::write(path, Report::json_array(reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wazi_storage::ExecStats;

    /// The acceptance property behind `BENCH_batch.json`: on an overlapping
    /// range batch, WaZI's fused kernel visits fewer pages than
    /// query-at-a-time execution — and never checks more bounding boxes —
    /// at identical results.
    #[test]
    fn fused_wazi_scans_fewer_pages_than_sequential() {
        let ctx = ExperimentContext::smoke_test();
        let (points, train, eval) =
            workload_setup(&ctx, BATCH_REGION, BATCH_SELECTIVITY, ctx.dataset_size);
        let batch: Vec<Query> = eval.iter().copied().map(Query::range_count).collect();
        let built = build_index(IndexKind::Wazi, &points, &train, ctx.leaf_capacity);
        let sequential =
            measure_query_batch(built.index.as_ref(), &batch, BatchStrategy::Sequential);
        let fused = measure_query_batch(built.index.as_ref(), &batch, BatchStrategy::Fused);
        assert_eq!(sequential.total_results, fused.total_results);
        assert_eq!(fused.fused_queries, batch.len());
        assert!(
            fused.totals.pages_scanned < sequential.totals.pages_scanned,
            "fused {} pages vs sequential {}",
            fused.totals.pages_scanned,
            sequential.totals.pages_scanned
        );
        assert!(
            fused.totals.bbs_checked <= sequential.totals.bbs_checked,
            "fused {} bbs vs sequential {}",
            fused.totals.bbs_checked,
            sequential.totals.bbs_checked
        );
    }

    /// The parallel acceptance shape (counters only — wall-clock belongs to
    /// the real benchmark run): every shard count returns identical answers
    /// and point comparisons over the big overlapping batch, and — thanks
    /// to owner-based sharding — exactly the single sweep's bounding-box
    /// checks and skips, while page visits never exceed the sequential
    /// loop's.
    #[test]
    fn shard_sweep_preserves_answers_on_the_overlapping_batch() {
        let ctx = ExperimentContext::smoke_test();
        let (points, train, _) =
            workload_setup(&ctx, BATCH_REGION, BATCH_SELECTIVITY, ctx.dataset_size);
        let batch = generate_overlapping_batch(BATCH_REGION, 500, BATCH_SELECTIVITY, 3);
        let built = build_index(IndexKind::Wazi, &points, &train, ctx.leaf_capacity);
        let sequential =
            measure_query_batch(built.index.as_ref(), &batch, BatchStrategy::Sequential);
        let mut reference: Option<(u64, ExecStats)> = None;
        for shards in SHARD_SWEEP {
            let m = measure_query_batch(
                built.index.as_ref(),
                &batch,
                BatchStrategy::FusedParallel { shards },
            );
            assert!(m.shards_used >= 1, "{shards} shards: kernel path not taken");
            assert!(m.shards_used <= shards.max(1));
            assert!(
                m.totals.pages_scanned <= sequential.totals.pages_scanned,
                "{shards} shards: pages exceed the sequential loop"
            );
            match &reference {
                Some((results, totals)) => {
                    assert_eq!(m.total_results, *results, "{shards} shards");
                    assert_eq!(m.totals.points_scanned, totals.points_scanned);
                    // Owner-based sharding: every request's walk is its solo
                    // walk, so check and skip counts are shard-invariant.
                    assert_eq!(m.totals.bbs_checked, totals.bbs_checked);
                    assert_eq!(m.totals.leaves_skipped, totals.leaves_skipped);
                }
                None => reference = Some((m.total_results, m.totals)),
            }
        }
    }

    #[test]
    fn batch_experiment_produces_rows_for_every_overview_index() {
        let ctx = ExperimentContext::smoke_test();
        let reports = batch(&ctx);
        assert_eq!(reports.len(), 5);
        let [overlap, mixed, scattered, scaling, decisions] = &reports[..] else {
            panic!("expected five reports");
        };
        // The overlap, scattered and mixed tables cover the whole overview
        // suite (all seven indexes fuse range batches now) under all four
        // strategies of the full comparison.
        assert_eq!(overlap.rows.len(), IndexKind::OVERVIEW.len() * 4);
        assert_eq!(mixed.rows.len(), IndexKind::OVERVIEW.len() * 4);
        assert_eq!(scattered.rows.len(), IndexKind::OVERVIEW.len() * 4);
        // Every overview index has a sharded kernel now (Zpgm's entry array
        // splits by code range since this revision); the scaling table has
        // one row per swept shard count for each, plus the auto row.
        assert_eq!(
            scaling.rows.len(),
            IndexKind::OVERVIEW.len() * (SHARD_SWEEP.len() + 1)
        );
        // Every index appears with every strategy.
        for kind in IndexKind::OVERVIEW {
            for strategy in ["sequential", "fused", "fused-parallel/4", "auto"] {
                assert!(
                    overlap
                        .rows
                        .iter()
                        .any(|r| r[0] == kind.name() && r[1] == strategy),
                    "missing {kind}/{strategy} row"
                );
            }
        }
        // The fused mixed rows show nonzero fused range/point/kNN counts
        // for every overview index: the tree baselines joined the Z-indexes,
        // Flood and Zpgm in the fused path.
        for kind in IndexKind::OVERVIEW {
            let row = mixed
                .rows
                .iter()
                .find(|r| r[0] == kind.name() && r[1] == "fused")
                .unwrap_or_else(|| panic!("missing {kind}/fused mixed row"));
            let fused_counts: Vec<u64> = row[2]
                .split('/')
                .map(|n| n.parse().expect("fused counts are numeric"))
                .collect();
            assert_eq!(fused_counts.len(), 3, "{kind}: r/p/k triple");
            assert!(
                fused_counts.iter().all(|&n| n > 0),
                "{kind}: expected nonzero fused range/point/kNN counts, got {:?}",
                fused_counts
            );
        }
        // The decision table records at least the range decision of every
        // overview index's mixed batch.
        for kind in IndexKind::OVERVIEW {
            assert!(
                decisions
                    .rows
                    .iter()
                    .any(|r| r[0] == kind.name() && r[1] == "range"),
                "missing {kind} range decision row"
            );
        }
    }

    /// A narrowed `--strategy` filter shrinks the comparison to
    /// `[sequential, value]` and leaves the decision table empty.
    #[test]
    fn fixed_strategy_filter_narrows_the_comparison() {
        let mut ctx = ExperimentContext::smoke_test();
        ctx.strategy = super::super::StrategyFilter::Fused;
        let reports = batch(&ctx);
        let [overlap, mixed, scattered, _scaling, decisions] = &reports[..] else {
            panic!("expected five reports");
        };
        assert_eq!(overlap.rows.len(), IndexKind::OVERVIEW.len() * 2);
        assert_eq!(mixed.rows.len(), IndexKind::OVERVIEW.len() * 2);
        assert_eq!(scattered.rows.len(), IndexKind::OVERVIEW.len() * 2);
        assert!(decisions.rows.is_empty());
        assert!(overlap.rows.iter().all(|r| r[1] != "auto"));
    }

    /// The tree-baseline acceptance shape behind `BENCH_batch.json`: on the
    /// overlapping range batch, STR, CUR and QUASII answer through their
    /// fused `RangeBatchKernel` with results and BB-check counts *equal* to
    /// the sequential walk (an active-set descent prunes exactly like the
    /// solo walks) while scanning strictly fewer pages (an R-tree node
    /// overlapped by k queries is fetched once, not k times).
    #[test]
    fn fused_tree_baselines_share_pages_at_identical_walks() {
        let ctx = ExperimentContext::smoke_test();
        let (points, train, eval) =
            workload_setup(&ctx, BATCH_REGION, BATCH_SELECTIVITY, ctx.dataset_size);
        let batch: Vec<Query> = eval.iter().copied().map(Query::range_count).collect();
        for kind in [IndexKind::Str, IndexKind::Cur, IndexKind::Quasii] {
            let built = build_index(kind, &points, &train, ctx.leaf_capacity);
            let sequential =
                measure_query_batch(built.index.as_ref(), &batch, BatchStrategy::Sequential);
            let fused = measure_query_batch(built.index.as_ref(), &batch, BatchStrategy::Fused);
            assert_eq!(fused.fused_queries, batch.len(), "{kind}");
            assert_eq!(fused.total_results, sequential.total_results, "{kind}");
            assert_eq!(
                fused.totals.bbs_checked, sequential.totals.bbs_checked,
                "{kind}: the active-set descent must replicate the solo walks"
            );
            assert_eq!(
                fused.totals.points_scanned, sequential.totals.points_scanned,
                "{kind}: fusion changed the points compared"
            );
            assert!(
                fused.totals.pages_scanned < sequential.totals.pages_scanned,
                "{kind}: overlapping queries must share page fetches \
                 ({} fused vs {} sequential)",
                fused.totals.pages_scanned,
                sequential.totals.pages_scanned
            );
        }
    }

    /// The point-probe acceptance shape behind `BENCH_batch.json`: on a
    /// probe batch with hot-key duplicates, WaZI's leaf-grouped point
    /// kernel visits strictly fewer pages than the per-probe loop, at
    /// identical answers.
    #[test]
    fn fused_point_partition_scans_fewer_pages_on_wazi() {
        let ctx = ExperimentContext::smoke_test();
        let (points, train, _) =
            workload_setup(&ctx, BATCH_REGION, BATCH_SELECTIVITY, ctx.dataset_size);
        let batch = wazi_workload::generate_point_batch(BATCH_REGION, 400, 29);
        let built = build_index(IndexKind::Wazi, &points, &train, ctx.leaf_capacity);
        let sequential =
            measure_query_batch(built.index.as_ref(), &batch, BatchStrategy::Sequential);
        let fused = measure_query_batch(built.index.as_ref(), &batch, BatchStrategy::Fused);
        assert_eq!(fused.fused_points, batch.len());
        assert_eq!(fused.total_results, sequential.total_results);
        assert_eq!(fused.point_kind.results, sequential.point_kind.results);
        assert!(
            fused.point_kind.pages_scanned < sequential.point_kind.pages_scanned,
            "duplicate probes must share page visits: fused {} vs sequential {}",
            fused.point_kind.pages_scanned,
            sequential.point_kind.pages_scanned
        );
        assert_eq!(
            fused.totals.points_scanned, sequential.totals.points_scanned,
            "fusion must not change the points compared"
        );
    }
}
