//! Range-query experiments: Figures 4, 6, 7, 8 and 9.
//!
//! All measurements execute through the typed query engine's counting plans
//! (`Query::range_count` via [`crate::measure::measure_range_queries`]), so
//! the work reported matches the paper's cost model; the `batch` experiment
//! (`experiments/batch.rs`) covers the engine's batched schedules.

use super::{workload_setup, ExperimentContext};
use crate::measure::{format_ns, measure_range_queries, RangeMeasurement};
use crate::report::Report;
use crate::suite::{build_index, IndexKind};
use wazi_workload::{Region, SELECTIVITIES};

/// Default region and selectivity used when a figure needs a single
/// representative workload (the paper's defaults are the 32M dataset at
/// 0.0256% selectivity).
const DEFAULT_REGION: Region = Region::NewYork;
const DEFAULT_SELECTIVITY: f64 = SELECTIVITIES[2];

/// Builds the requested indexes for one workload and measures the evaluation
/// queries on each.
fn measure_kinds(
    ctx: &ExperimentContext,
    kinds: &[IndexKind],
    region: Region,
    selectivity: f64,
    dataset_size: usize,
) -> Vec<(IndexKind, RangeMeasurement)> {
    let (points, train, eval) = workload_setup(ctx, region, selectivity, dataset_size);
    kinds
        .iter()
        .map(|&kind| {
            let built = build_index(kind, &points, &train, ctx.leaf_capacity);
            (kind, measure_range_queries(built.index.as_ref(), &eval))
        })
        .collect()
}

/// Figure 4: average range-query latency of every index, including the
/// rank-space Z-order representative that the detailed experiments discard.
pub fn figure4(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new(
        "figure4",
        "Average range query performance of all indexes (Figure 4)",
    )
    .with_headers(&["Index", "Range latency", "Points scanned", "BBs checked"]);
    let results = measure_kinds(
        ctx,
        &IndexKind::OVERVIEW,
        DEFAULT_REGION,
        DEFAULT_SELECTIVITY,
        ctx.dataset_size,
    );
    for (kind, m) in &results {
        report.push_row(vec![
            kind.name().to_string(),
            format_ns(m.mean_latency_ns),
            format!("{:.0}", m.mean_points_scanned),
            format!("{:.0}", m.mean_bbs_checked),
        ]);
    }
    report.push_note(format!(
        "region {DEFAULT_REGION}, selectivity {:.4}%, {} points, {} queries",
        DEFAULT_SELECTIVITY * 100.0,
        ctx.dataset_size,
        ctx.workload_size
    ));
    report.push_note("expected shape: the rank-space Z-order baseline (Zpgm) trails the primary indexes; WaZI leads or ties");
    vec![report]
}

/// Figure 6: range-query latency for every dataset at every selectivity.
pub fn figure6(ctx: &ExperimentContext) -> Vec<Report> {
    let mut reports = Vec::new();
    for &selectivity in &SELECTIVITIES {
        let mut report = Report::new(
            format!("figure6-{:.4}", selectivity * 100.0),
            format!(
                "Range query latency at {:.4}% selectivity (Figure 6)",
                selectivity * 100.0
            ),
        )
        .with_headers(&["Dataset", "QUASII", "CUR", "STR", "Flood", "Base", "WaZI"]);
        for region in Region::ALL {
            let results = measure_kinds(
                ctx,
                &IndexKind::PRIMARY,
                region,
                selectivity,
                ctx.dataset_size,
            );
            let mut row = vec![region.name().to_string()];
            row.extend(results.iter().map(|(_, m)| format_ns(m.mean_latency_ns)));
            report.push_row(row);
        }
        report.push_note(
            "expected shape: WaZI has the lowest (or tied-lowest) latency in every cell",
        );
        reports.push(report);
    }
    reports
}

/// Figure 7: percentage improvement over Base, aggregated by dataset and by
/// selectivity.
pub fn figure7(ctx: &ExperimentContext) -> Vec<Report> {
    let kinds = [
        IndexKind::Quasii,
        IndexKind::Cur,
        IndexKind::Str,
        IndexKind::Flood,
        IndexKind::Wazi,
    ];

    // Collect latencies for every (region, selectivity) pair once.
    let mut by_region: Vec<(Region, Vec<Vec<f64>>)> = Vec::new();
    let mut base_by_region: Vec<Vec<f64>> = Vec::new();
    for region in Region::ALL {
        let mut improvements_per_kind: Vec<Vec<f64>> = vec![Vec::new(); kinds.len()];
        let mut base_latencies = Vec::new();
        for &selectivity in &SELECTIVITIES {
            let all = measure_kinds(
                ctx,
                &IndexKind::PRIMARY,
                region,
                selectivity,
                ctx.dataset_size,
            );
            let base = all
                .iter()
                .find(|(k, _)| *k == IndexKind::Base)
                .map(|(_, m)| m.mean_latency_ns)
                .unwrap_or(1.0);
            base_latencies.push(base);
            for (slot, kind) in kinds.iter().enumerate() {
                let latency = all
                    .iter()
                    .find(|(k, _)| k == kind)
                    .map(|(_, m)| m.mean_latency_ns)
                    .unwrap_or(base);
                improvements_per_kind[slot].push(100.0 * (base - latency) / base);
            }
        }
        by_region.push((region, improvements_per_kind));
        base_by_region.push(base_latencies);
    }

    let mut by_dataset = Report::new(
        "figure7-datasets",
        "Percentage improvement over Base per data distribution (Figure 7, top)",
    )
    .with_headers(&["Dataset", "QUASII", "CUR", "STR", "Flood", "WaZI"]);
    for (region, improvements) in &by_region {
        let mut row = vec![region.name().to_string()];
        row.extend(
            improvements
                .iter()
                .map(|values| format!("{:+.1}%", values.iter().sum::<f64>() / values.len() as f64)),
        );
        by_dataset.push_row(row);
    }
    by_dataset.push_note("positive numbers are improvements; WaZI should be the only index that is positive everywhere");

    let mut by_selectivity = Report::new(
        "figure7-selectivities",
        "Percentage improvement over Base per selectivity (Figure 7, bottom)",
    )
    .with_headers(&["Selectivity (%)", "QUASII", "CUR", "STR", "Flood", "WaZI"]);
    for (sel_index, &selectivity) in SELECTIVITIES.iter().enumerate() {
        let mut row = vec![format!("{:.4}", selectivity * 100.0)];
        for (slot, _) in kinds.iter().enumerate() {
            let mean: f64 = by_region
                .iter()
                .map(|(_, improvements)| improvements[slot][sel_index])
                .sum::<f64>()
                / by_region.len() as f64;
            row.push(format!("{mean:+.1}%"));
        }
        by_selectivity.push_row(row);
    }
    by_selectivity
        .push_note("expected shape: WaZI's improvement shrinks as selectivity grows (fewer false positives relative to result size)");
    let _ = base_by_region;
    vec![by_dataset, by_selectivity]
}

/// Figure 8: range-query latency as the dataset grows, at mid selectivity.
pub fn figure8(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new(
        "figure8",
        "Range query time over dataset sizes at 0.0256% selectivity (Figure 8)",
    )
    .with_headers(&["Size", "QUASII", "CUR", "STR", "Flood", "Base", "WaZI"]);
    for size in ctx.size_sweep() {
        let results = measure_kinds(
            ctx,
            &IndexKind::PRIMARY,
            DEFAULT_REGION,
            SELECTIVITIES[2],
            size,
        );
        let mut row = vec![size.to_string()];
        row.extend(results.iter().map(|(_, m)| format_ns(m.mean_latency_ns)));
        report.push_row(row);
    }
    report.push_note(
        "expected shape: near-linear growth for every index, with WaZI lowest at every size",
    );
    vec![report]
}

/// Figure 9: the projection/scan split of range-query time.
pub fn figure9(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new(
        "figure9",
        "Range query latency split into Projection and Scan (Figure 9)",
    )
    .with_headers(&["Index", "Projection", "Scan", "Scan share"]);
    let results = measure_kinds(
        ctx,
        &IndexKind::PRIMARY,
        DEFAULT_REGION,
        DEFAULT_SELECTIVITY,
        ctx.dataset_size,
    );
    for (kind, m) in &results {
        let total = (m.mean_projection_ns + m.mean_scan_ns).max(1.0);
        report.push_row(vec![
            kind.name().to_string(),
            format_ns(m.mean_projection_ns),
            format_ns(m.mean_scan_ns),
            format!("{:.0}%", 100.0 * m.mean_scan_ns / total),
        ]);
    }
    report.push_note("expected shape: Flood has the fastest projection (no tree traversal); WaZI projects much faster than Base thanks to skipping; the scan phase dominates everywhere");
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_and_figure9_smoke_test() {
        let ctx = ExperimentContext::smoke_test();
        let fig4 = figure4(&ctx);
        assert_eq!(fig4.len(), 1);
        assert_eq!(fig4[0].rows.len(), IndexKind::OVERVIEW.len());

        let fig9 = figure9(&ctx);
        assert_eq!(fig9[0].rows.len(), IndexKind::PRIMARY.len());
        // Every row must carry a projection and a scan figure.
        for row in &fig9[0].rows {
            assert_eq!(row.len(), 4);
        }
    }

    #[test]
    fn figure6_covers_all_regions_and_selectivities() {
        let mut ctx = ExperimentContext::smoke_test();
        ctx.workload_size = 40;
        ctx.training_size = 40;
        let reports = figure6(&ctx);
        assert_eq!(reports.len(), SELECTIVITIES.len());
        for report in &reports {
            assert_eq!(report.rows.len(), Region::ALL.len());
            assert_eq!(report.headers.len(), 7);
        }
    }
}
