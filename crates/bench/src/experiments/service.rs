//! The concurrent query service under offered load: the experiment behind
//! `BENCH_service.json`.
//!
//! The `batch` experiment shows what fusing an *existing* batch saves;
//! this one shows the piece that forms batches in the first place.
//! Clients replay a deterministic open-loop arrival schedule
//! ([`wazi_workload::poisson_arrivals`] / [`wazi_workload::bursty_arrivals`])
//! against a running [`wazi_service::Service`] over WaZI, and the table
//! compares service configurations at two offered-load points:
//!
//! * **dispatch** — `max_batch = 1`: every query wakes a worker and runs
//!   alone. The per-query baseline coalescing must beat.
//! * **adaptive (auto)** — the full service: adaptive micro-batching
//!   window, batches executed under the cost-based `Auto` strategy.
//! * **adaptive (sequential)** — same coalescing, but batches execute as
//!   per-query loops: isolates what coalescing alone (amortised wakeups)
//!   buys without fused kernels.
//! * **fixed 1ms (auto)** — a pinned window: what the adaptation is worth
//!   against a hand-tuned constant.
//!
//! Latency is measured open-loop — from each query's *scheduled* arrival
//! to its response — so queueing delay from falling behind the schedule is
//! visible instead of hidden. Two hard asserts back the committed
//! artifact: every response output is bit-identical to a solo
//! `QueryEngine::execute` of the same query, and at the saturating load
//! point adaptive coalescing beats dispatch on throughput (and on p95
//! latency at full scale).

use std::sync::Arc;
use std::time::{Duration, Instant};

use super::ExperimentContext;
use crate::measure::format_ns;
use crate::report::Report;
use crate::suite::{build_index, build_versioned_index, IndexKind};
use wazi_core::{
    BatchStrategy, Query, QueryEngine, QueryOutput, Snapshot, SnapshotSource, SpatialIndex,
};
use wazi_net::{Client as NetClient, ClientConfig as NetClientConfig, Server};
use wazi_service::{
    Fault, FaultPlan, FullQueuePolicy, Service, ServiceError, ServiceStats, Submit, SubmitOptions,
};
use wazi_workload::{
    bursty_arrivals, fault_schedule, generate_overlapping_batch, mixed_read_write_schedule,
    poisson_arrivals, reconnect_sessions, Arrival, FaultKind, Region, RwStep, SELECTIVITIES,
};

/// The overlapping counting-range workload of the batch experiment: the
/// shape coalescing exists for (shared hot pages, fused sweeps win big).
const SERVICE_REGION: Region = Region::NewYork;
const SERVICE_SELECTIVITY: f64 = SELECTIVITIES[3];

/// Client threads replaying the arrival schedule.
const CLIENTS: usize = 2;

/// Offered load as a multiple of the measured solo drain rate: well under
/// capacity, and far enough over it that the queue stays pressured.
const MODERATE_LOAD_FACTOR: f64 = 0.5;
const SATURATING_LOAD_FACTOR: f64 = 4.0;

/// Open-loop pacing fidelity ceiling for the *moderate* load point.
/// `thread::sleep` on Linux overshoots by tens of microseconds (default
/// timer slack), so one client cannot pace much more than ~16k arrivals/s;
/// the moderate rate is capped below [`CLIENTS`] times that so "moderate"
/// stays both genuinely under capacity and replayable on schedule. The
/// saturating point is deliberately uncapped: clients falling behind and
/// offering as fast as they can is exactly what it measures.
const MODERATE_OFFERED_CAP_QPS: f64 = 20_000.0;

/// Adaptive window bounds (the service defaults, restated here so the
/// table is self-describing even if the defaults move).
const MIN_WINDOW: Duration = Duration::from_micros(50);
const MAX_WINDOW: Duration = Duration::from_millis(5);
/// The pinned window of the fixed-window comparison row.
const FIXED_WINDOW: Duration = Duration::from_millis(1);

/// Queue capacity for the shedding demonstration row (small enough that a
/// saturating open loop actually fills it).
const REJECT_QUEUE_CAPACITY: usize = 64;

/// The throughput and p95 asserts need enough queries that the drain time
/// dwarfs single-core scheduling noise (thread wakeups land with hundreds
/// of microseconds of jitter, which at 100 x ~2.5 us of work is the whole
/// measurement). Tiny test contexts still run every correctness assert;
/// CI's perf gate passes `--queries 2000` to arm these two as well.
const PERF_ASSERT_MIN_QUERIES: usize = 500;

/// File the experiment's reports are serialised to (JSON array, same
/// format as the `reproduce` binary's `--json` output).
pub const SERVICE_JSON_PATH: &str = "BENCH_service.json";

/// One service configuration the experiment compares.
#[derive(Clone, Copy)]
struct Variant {
    name: &'static str,
    max_batch: usize,
    window: (Duration, Duration),
    strategy: BatchStrategy,
}

const VARIANTS: [Variant; 4] = [
    Variant {
        name: "dispatch",
        max_batch: 1,
        window: (MIN_WINDOW, MIN_WINDOW),
        strategy: BatchStrategy::Auto,
    },
    Variant {
        name: "adaptive auto",
        max_batch: 256,
        window: (MIN_WINDOW, MAX_WINDOW),
        strategy: BatchStrategy::Auto,
    },
    Variant {
        name: "adaptive sequential",
        max_batch: 256,
        window: (MIN_WINDOW, MAX_WINDOW),
        strategy: BatchStrategy::Sequential,
    },
    Variant {
        name: "fixed 1ms auto",
        max_batch: 256,
        window: (FIXED_WINDOW, FIXED_WINDOW),
        strategy: BatchStrategy::Auto,
    },
];

/// Everything one replay produces: open-loop latencies, outputs for the
/// bit-identity assert, and the service's own counters.
struct RunOutcome {
    /// Response output per arrival index; `None` when the query was shed.
    outputs: Vec<Option<QueryOutput>>,
    /// Open-loop latencies (scheduled arrival → response) of completed
    /// queries, sorted ascending.
    latencies_ns: Vec<u64>,
    /// Wall-clock from replay start to the last response, nanoseconds.
    elapsed_ns: u64,
    stats: ServiceStats,
}

impl RunOutcome {
    fn completed(&self) -> usize {
        self.latencies_ns.len()
    }

    fn throughput_qps(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.completed() as f64 * 1e9 / self.elapsed_ns as f64
        }
    }

    fn percentile_ns(&self, p: f64) -> u64 {
        percentile_sorted(&self.latencies_ns, p)
    }
}

/// Percentile of an ascending-sorted latency slice (0 when empty).
fn percentile_sorted(latencies_ns: &[u64], p: f64) -> u64 {
    if latencies_ns.is_empty() {
        return 0;
    }
    let rank = ((latencies_ns.len() - 1) as f64 * p).round() as usize;
    latencies_ns[rank]
}

/// Replays `arrivals` open-loop from [`CLIENTS`] threads against a fresh
/// service over `index`, waits for every accepted response, shuts the
/// service down, and returns the measurements.
fn replay(
    index: &Arc<dyn SpatialIndex>,
    arrivals: &[Arrival],
    variant: Variant,
    queue_capacity: usize,
    on_full: FullQueuePolicy,
) -> RunOutcome {
    let service = Service::builder(Arc::clone(index))
        .max_batch(variant.max_batch)
        .window(variant.window.0, variant.window.1)
        .strategy(variant.strategy)
        .queue_capacity(queue_capacity)
        .on_full(on_full)
        .start();
    let start = Instant::now();
    let per_client: Vec<Vec<(usize, u64, QueryOutput)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let service = &service;
                s.spawn(move || {
                    // Submit this client's share on schedule (sleep only
                    // when ahead; once behind, offer as fast as possible).
                    let mut accepted = Vec::new();
                    for (i, arrival) in arrivals.iter().enumerate() {
                        if i % CLIENTS != client {
                            continue;
                        }
                        let scheduled = Duration::from_nanos(arrival.offset_ns);
                        if let Some(ahead) = scheduled.checked_sub(start.elapsed()) {
                            std::thread::sleep(ahead);
                        }
                        match service.submit(arrival.query.clone()) {
                            Ok(Submit::Accepted(ticket)) => {
                                let submitted_ns = start.elapsed().as_nanos() as u64;
                                accepted.push((i, submitted_ns, ticket));
                            }
                            Ok(Submit::Rejected) => {}
                            Err(err) => panic!("submission {i} refused: {err}"),
                        }
                    }
                    // Redeem the tickets: open-loop latency is the gap from
                    // the scheduled arrival to the (service-side) response.
                    accepted
                        .into_iter()
                        .map(|(i, submitted_ns, ticket)| {
                            let response = ticket
                                .wait()
                                .unwrap_or_else(|err| panic!("response {i} lost: {err}"));
                            let completion_ns = submitted_ns + response.total_ns;
                            let latency = completion_ns.saturating_sub(arrivals[i].offset_ns);
                            (i, latency, response.report.output)
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed_ns = start.elapsed().as_nanos().max(1) as u64;
    let stats = service.shutdown();

    let mut outputs: Vec<Option<QueryOutput>> = vec![None; arrivals.len()];
    let mut latencies_ns = Vec::with_capacity(arrivals.len());
    for (i, latency, output) in per_client.into_iter().flatten() {
        outputs[i] = Some(output);
        latencies_ns.push(latency);
    }
    latencies_ns.sort_unstable();
    RunOutcome {
        outputs,
        latencies_ns,
        elapsed_ns,
        stats,
    }
}

/// Builds the service variant's backing service and a loopback-TCP server
/// fronting it.
fn tcp_server(index: &Arc<dyn SpatialIndex>, variant: Variant) -> Server {
    let service = Service::builder(Arc::clone(index))
        .max_batch(variant.max_batch)
        .window(variant.window.0, variant.window.1)
        .strategy(variant.strategy)
        .on_full(FullQueuePolicy::Block)
        .start();
    Server::bind(service, "127.0.0.1:0").expect("bind loopback server")
}

/// The TCP bench client's configuration: generous attempt deadline (the
/// saturating load point queues deeply), a few retries for robustness.
fn bench_client(addr: std::net::SocketAddr, seed: u64) -> NetClient {
    NetClient::connect(
        addr,
        NetClientConfig {
            request_timeout: Duration::from_secs(60),
            max_retries: 4,
            jitter_seed: seed,
            ..NetClientConfig::default()
        },
    )
    .expect("connect bench client")
}

/// One TCP client's share of a replay: `(index, latency_ns, output)` per
/// answered query, plus its retry counter.
type ClientReplay = (Vec<(usize, u64, QueryOutput)>, u64);

/// Replays `arrivals` over loopback TCP from [`CLIENTS`] connections, one
/// in-flight request per connection (the wire's pipelining unit), and
/// returns the measurements plus the clients' summed retry counter.
fn replay_tcp(
    index: &Arc<dyn SpatialIndex>,
    arrivals: &[Arrival],
    variant: Variant,
) -> (RunOutcome, u64) {
    let server = tcp_server(index, variant);
    let addr = server.local_addr();
    let start = Instant::now();
    let per_client: Vec<ClientReplay> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                s.spawn(move || {
                    let tcp = bench_client(addr, 0x0BE7_C0DE ^ client as u64);
                    let mut results = Vec::new();
                    for (i, arrival) in arrivals.iter().enumerate() {
                        if i % CLIENTS != client {
                            continue;
                        }
                        let scheduled = Duration::from_nanos(arrival.offset_ns);
                        if let Some(ahead) = scheduled.checked_sub(start.elapsed()) {
                            std::thread::sleep(ahead);
                        }
                        let response = tcp
                            .request(arrival.query.clone())
                            .unwrap_or_else(|err| panic!("tcp request {i} failed: {err}"));
                        let completion_ns = start.elapsed().as_nanos() as u64;
                        let latency = completion_ns.saturating_sub(arrival.offset_ns);
                        results.push((i, latency, response.report.output));
                    }
                    (results, tcp.retries())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tcp client thread"))
            .collect()
    });
    let elapsed_ns = start.elapsed().as_nanos().max(1) as u64;
    let stats = server.shutdown();

    let mut outputs: Vec<Option<QueryOutput>> = vec![None; arrivals.len()];
    let mut latencies_ns = Vec::with_capacity(arrivals.len());
    let mut retries = 0u64;
    for (results, client_retries) in per_client {
        retries += client_retries;
        for (i, latency, output) in results {
            outputs[i] = Some(output);
            latencies_ns.push(latency);
        }
    }
    latencies_ns.sort_unstable();
    (
        RunOutcome {
            outputs,
            latencies_ns,
            elapsed_ns,
            stats,
        },
        retries,
    )
}

/// Replays a reconnect-heavy session schedule over loopback TCP: each
/// client opens a fresh connection per epoch (the drop-and-reconnect shape
/// [`reconnect_sessions`] encodes). Outputs are verified against solo
/// execution inline; returns (measurements, retries, connections opened).
fn replay_tcp_sessions(
    index: &Arc<dyn SpatialIndex>,
    schedules: &[wazi_workload::ClientSchedule],
    variant: Variant,
) -> (RunOutcome, u64) {
    let server = tcp_server(index, variant);
    let addr = server.local_addr();
    let engine = QueryEngine::new(index.as_ref());
    let start = Instant::now();
    let per_client: Vec<(Vec<u64>, u64)> = std::thread::scope(|s| {
        let engine = &engine;
        let handles: Vec<_> = schedules
            .iter()
            .map(|schedule| {
                s.spawn(move || {
                    let mut latencies = Vec::new();
                    let mut retries = 0u64;
                    for epoch in &schedule.epochs {
                        let tcp = bench_client(addr, 0x5E55_0000 ^ schedule.client as u64);
                        for arrival in &epoch.arrivals {
                            let scheduled = Duration::from_nanos(arrival.offset_ns);
                            if let Some(ahead) = scheduled.checked_sub(start.elapsed()) {
                                std::thread::sleep(ahead);
                            }
                            let response = tcp
                                .request(arrival.query.clone())
                                .unwrap_or_else(|err| panic!("session request failed: {err}"));
                            let completion_ns = start.elapsed().as_nanos() as u64;
                            latencies.push(completion_ns.saturating_sub(arrival.offset_ns));
                            let solo = engine
                                .execute(&arrival.query)
                                .expect("solo execution")
                                .output;
                            assert_eq!(
                                response.report.output, solo,
                                "reconnect session response diverged from solo execution"
                            );
                        }
                        retries += tcp.retries();
                    }
                    (latencies, retries)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session client thread"))
            .collect()
    });
    let elapsed_ns = start.elapsed().as_nanos().max(1) as u64;
    let stats = server.shutdown();
    let mut latencies_ns = Vec::new();
    let mut retries = 0u64;
    for (client_latencies, client_retries) in per_client {
        latencies_ns.extend(client_latencies);
        retries += client_retries;
    }
    latencies_ns.sort_unstable();
    (
        RunOutcome {
            outputs: Vec::new(), // verified inline against solo execution
            latencies_ns,
            elapsed_ns,
            stats,
        },
        retries,
    )
}

/// What one mixed read/write replay produced.
struct RwOutcome {
    /// Read responses `(query index into the flattened read schedule,
    /// epoch, output)`, verified later against the pinned snapshots.
    responses: Vec<(usize, u64, QueryOutput)>,
    /// Per-response service latencies (`total_ns`), sorted ascending.
    latencies_ns: Vec<u64>,
    /// One pinned snapshot per published epoch, `snapshots[e]` at epoch
    /// `e` — the versions the bit-identity assert replays against.
    snapshots: Vec<Snapshot>,
    /// Write bursts whose ops fell back to a full rebuild.
    rebuilds: u64,
    stats: ServiceStats,
}

/// Replays a [`mixed_read_write_schedule`] against a versioned service
/// with a **live writer**: a writer thread walks the schedule's write
/// bursts (publishing a new index version per burst and pinning its
/// snapshot) while the reader threads submit every read burst's queries
/// concurrently — reads race writes on purpose. Returns the responses
/// tagged with the epoch each one executed against.
fn replay_rw(label: &str, source: &Arc<dyn SnapshotSource>, schedule: &[RwStep]) -> RwOutcome {
    let service = Service::builder_versioned(Arc::clone(source))
        .max_batch(64)
        .window(MIN_WINDOW, MAX_WINDOW)
        .strategy(BatchStrategy::Auto)
        .on_full(FullQueuePolicy::Block)
        .start();
    let snapshots = std::sync::Mutex::new(vec![source.snapshot()]);
    let (responses, latencies_ns, rebuilds) = std::thread::scope(|s| {
        let writer = s.spawn(|| {
            let mut rebuilds = 0u64;
            for step in schedule {
                let RwStep::Writes(ops) = step else { continue };
                let receipt = service
                    .apply_write(ops)
                    .unwrap_or_else(|err| panic!("{label}: write burst failed: {err}"));
                let snapshot = source.snapshot();
                assert_eq!(
                    snapshot.epoch(),
                    receipt.epoch,
                    "{label}: the single writer sees its own publish"
                );
                snapshots.lock().expect("snapshot registry").push(snapshot);
                rebuilds += u64::from(receipt.rebuilt);
                // A short pause per burst so reads land across many epochs
                // instead of all racing the first one.
                std::thread::sleep(Duration::from_micros(200));
            }
            rebuilds
        });
        let mut tickets = Vec::new();
        let mut flat_index = 0usize;
        for step in schedule {
            let RwStep::Queries(queries) = step else {
                continue;
            };
            for query in queries {
                let ticket = service
                    .submit(query.clone())
                    .unwrap_or_else(|err| panic!("{label}: submission refused: {err}"))
                    .ticket()
                    .expect("blocking policy never sheds");
                tickets.push((flat_index, ticket));
                flat_index += 1;
            }
        }
        let mut responses = Vec::with_capacity(tickets.len());
        let mut latencies_ns = Vec::with_capacity(tickets.len());
        for (i, ticket) in tickets {
            let response = ticket
                .wait()
                .unwrap_or_else(|err| panic!("{label}: response {i} lost: {err}"));
            latencies_ns.push(response.total_ns);
            responses.push((i, response.batch.epoch, response.report.output));
        }
        let rebuilds = writer.join().expect("writer thread");
        (responses, latencies_ns, rebuilds)
    });
    let stats = service.shutdown();
    let mut latencies_ns = latencies_ns;
    latencies_ns.sort_unstable();
    RwOutcome {
        responses,
        latencies_ns,
        snapshots: snapshots.into_inner().expect("snapshot registry"),
        rebuilds,
        stats,
    }
}

/// What one fault-schedule replay produced: how every ticket terminated,
/// plus the service's recovery counters.
struct RecoveryOutcome {
    completed: u64,
    panicked: u64,
    worker_died: u64,
    stats: ServiceStats,
    /// Faults that actually fired (0 for the control row).
    fired: u64,
}

/// One recovery-table row's configuration: the fault schedule (if any),
/// the uniform per-query deadline (if any), and the service shape it
/// replays under.
struct RecoveryCase {
    plan: Option<Arc<FaultPlan>>,
    deadline: Option<Duration>,
    window: (Duration, Duration),
    max_batch: usize,
    label: &'static str,
}

/// Replays `queries` (closed-loop, single client so submission order ==
/// sequence order) against a service carrying the case's fault plan, waits
/// every ticket to a terminal outcome, then probes the service with a
/// fresh query to prove the pool recovered. Panics if any non-faulty
/// response diverges from `reference` or any ticket is stranded — the
/// chaos acceptance property behind the recovery table.
fn replay_recovery(
    index: &Arc<dyn SpatialIndex>,
    queries: &[Query],
    reference: &[QueryOutput],
    case: RecoveryCase,
) -> RecoveryOutcome {
    let RecoveryCase {
        plan,
        deadline,
        window,
        max_batch,
        label,
    } = case;
    let mut builder = Service::builder(Arc::clone(index))
        .max_batch(max_batch)
        .window(window.0, window.1)
        .on_full(FullQueuePolicy::Block);
    if let Some(plan) = &plan {
        builder = builder.fault_plan(Arc::clone(plan));
    }
    let service = builder.start();
    let options = deadline.map_or_else(SubmitOptions::new, |d| SubmitOptions::new().deadline(d));
    let tickets: Vec<_> = queries
        .iter()
        .map(|q| {
            service
                .submit_with(q.clone(), options)
                .unwrap_or_else(|err| panic!("{label}: submission refused: {err}"))
                .ticket()
                .expect("blocking policy never sheds")
        })
        .collect();

    let faulty: Vec<u64> = plan.as_ref().map(|p| p.kernel_panics()).unwrap_or_default();
    let (mut completed, mut panicked, mut worker_died, mut timed_out) = (0u64, 0u64, 0u64, 0u64);
    for (i, ticket) in tickets.into_iter().enumerate() {
        // `wait` is the no-ticket-left-behind assert: stranded would hang.
        match ticket.wait() {
            Ok(response) => {
                assert_eq!(
                    response.report.output, reference[i],
                    "{label}: response {i} diverged from solo execution"
                );
                completed += 1;
            }
            Err(ServiceError::ExecutionPanicked { .. }) => {
                assert!(
                    faulty.contains(&(i as u64)),
                    "{label}: query {i} panicked without a planned fault"
                );
                panicked += 1;
            }
            Err(ServiceError::WorkerDied) => worker_died += 1,
            Err(ServiceError::DeadlineExceeded) => timed_out += 1,
            Err(other) => panic!("{label}: query {i} failed with {other}"),
        }
    }
    assert_eq!(
        completed + panicked + worker_died + timed_out,
        queries.len() as u64,
        "{label}: every ticket must reach exactly one terminal outcome"
    );
    assert_eq!(
        panicked,
        faulty.len() as u64,
        "{label}: exactly the planned kernel panics must surface"
    );

    // Recovery probe: the pool must still answer fresh traffic (and the
    // probe carries no deadline, so it cannot be culled).
    let probe = service
        .submit(queries[0].clone())
        .unwrap_or_else(|err| panic!("{label}: post-fault submission refused: {err}"))
        .ticket()
        .expect("queue has room");
    let response = probe
        .wait()
        .unwrap_or_else(|err| panic!("{label}: post-fault probe lost: {err}"));
    assert_eq!(
        response.report.output, reference[0],
        "{label}: post-fault probe diverged"
    );

    let stats = service.shutdown();
    RecoveryOutcome {
        completed: completed + 1, // the probe
        panicked,
        worker_died,
        stats,
        fired: plan.map(|p| p.injected()).unwrap_or(0),
    }
}

/// Maps a workload-level fault schedule onto the service's registry.
fn plan_from_schedule(schedule: &[wazi_workload::FaultSpec]) -> FaultPlan {
    schedule.iter().fold(FaultPlan::new(), |plan, spec| {
        let fault = match spec.kind {
            FaultKind::KernelPanic => Fault::KernelPanic,
            FaultKind::ExecDelay => Fault::ExecDelay(Duration::from_micros(spec.micros)),
            FaultKind::QueueStall => Fault::QueueStall(Duration::from_micros(spec.micros)),
        };
        plan.with(spec.index, fault)
    })
}

/// The hard bit-identity assert behind the committed artifact: every
/// response the service routed equals a solo `execute` of the same query.
fn assert_outputs_identical(label: &str, outcome: &RunOutcome, reference: &[QueryOutput]) {
    for (i, output) in outcome.outputs.iter().enumerate() {
        if let Some(output) = output {
            assert_eq!(
                output, &reference[i],
                "{label}: response {i} diverged from solo execution"
            );
        }
    }
}

fn load_row(
    load_name: &str,
    offered_qps: f64,
    variant_name: &str,
    outcome: &RunOutcome,
) -> Vec<String> {
    vec![
        load_name.to_string(),
        format!("{offered_qps:.0}"),
        variant_name.to_string(),
        outcome.completed().to_string(),
        format!("{:.0}", outcome.throughput_qps()),
        format!("{:.1}", outcome.stats.mean_batch_size()),
        format_ns(outcome.percentile_ns(0.50) as f64),
        format_ns(outcome.percentile_ns(0.95) as f64),
        format_ns(outcome.percentile_ns(0.99) as f64),
        format_ns(outcome.stats.window_ns as f64),
    ]
}

fn stats_row(load_name: &str, variant_name: &str, stats: &ServiceStats) -> Vec<String> {
    vec![
        load_name.to_string(),
        variant_name.to_string(),
        stats.batches.to_string(),
        format!("{:.1}", stats.mean_batch_size()),
        stats.max_batch_size.to_string(),
        stats.flushed_on_capacity.to_string(),
        stats.flushed_on_timer.to_string(),
        stats.shed.to_string(),
        format_ns(stats.mean_queue_wait_ns()),
        format_ns(stats.window_ns as f64),
    ]
}

/// The `service` experiment: offered-load sweep over service
/// configurations, plus a service-counters table, emitting
/// `BENCH_service.json`.
pub fn service(ctx: &ExperimentContext) -> Vec<Report> {
    let queries = generate_overlapping_batch(
        SERVICE_REGION,
        ctx.workload_size.max(24),
        SERVICE_SELECTIVITY,
        ctx.seed ^ 0x5E41_1CE5,
    );
    let points = wazi_workload::generate_dataset_with_seed(
        SERVICE_REGION,
        ctx.dataset_size,
        SERVICE_REGION.seed(),
    );
    let train = wazi_workload::generate_queries_with_seed(
        SERVICE_REGION,
        ctx.training_size,
        SERVICE_SELECTIVITY,
        SERVICE_REGION.seed() ^ ctx.seed,
    );
    let built = build_index(IndexKind::Wazi, &points, &train, ctx.leaf_capacity);
    let index: Arc<dyn SpatialIndex> = Arc::from(built.index);

    // Solo reference pass: the outputs every service response must equal,
    // and the drain-rate calibration the offered loads are expressed in.
    let engine = QueryEngine::new(index.as_ref());
    let solo_started = Instant::now();
    let reference: Vec<QueryOutput> = queries
        .iter()
        .map(|q| engine.execute(q).expect("solo execution").output)
        .collect();
    let solo_ns = solo_started.elapsed().as_nanos().max(1) as u64;
    let mean_solo_ns = (solo_ns / queries.len() as u64).max(1);
    let solo_qps = 1e9 / mean_solo_ns as f64;

    let moderate_qps = (MODERATE_LOAD_FACTOR * solo_qps).min(MODERATE_OFFERED_CAP_QPS);
    let loads = [
        ("moderate", moderate_qps),
        ("saturating", SATURATING_LOAD_FACTOR * solo_qps),
    ];

    let mut table = Report::new(
        "service-load",
        format!(
            "Service throughput and open-loop latency vs offered load ({} overlapping \
             counting queries on WaZI, {} clients)",
            queries.len(),
            CLIENTS
        ),
    )
    .with_headers(&[
        "Load",
        "Offered qps",
        "Config",
        "Completed",
        "Achieved qps",
        "Mean batch",
        "p50",
        "p95",
        "p99",
        "Window end",
    ]);
    let mut counters = Report::new(
        "service-stats",
        "Service counters per configuration (ServiceStats surface)",
    )
    .with_headers(&[
        "Load",
        "Config",
        "Batches",
        "Mean batch",
        "Max batch",
        "Capacity cuts",
        "Timer cuts",
        "Shed",
        "Mean queue wait",
        "Window end",
    ]);

    for (load_name, offered_qps) in loads {
        let mut dispatch: Option<RunOutcome> = None;
        let mut adaptive: Option<RunOutcome> = None;
        for variant in VARIANTS {
            let arrivals = poisson_arrivals(queries.clone(), offered_qps, ctx.seed);
            let outcome = replay(
                &index,
                &arrivals,
                variant,
                ServiceConfigDefaults::QUEUE_CAPACITY,
                FullQueuePolicy::Block,
            );
            let label = format!("{load_name}/{}", variant.name);
            assert_outputs_identical(&label, &outcome, &reference);
            assert_eq!(
                outcome.completed(),
                queries.len(),
                "{label}: the blocking policy must be lossless"
            );
            table.push_row(load_row(load_name, offered_qps, variant.name, &outcome));
            counters.push_row(stats_row(load_name, variant.name, &outcome.stats));
            match variant.name {
                "dispatch" => dispatch = Some(outcome),
                "adaptive auto" => adaptive = Some(outcome),
                _ => {}
            }
        }
        // The acceptance property of BENCH_service.json: under a
        // saturating offered load, coalescing into fused batches beats
        // per-query dispatch. (Tiny test contexts skip the assert: with a
        // handful of queries the tail is a single sample.)
        if load_name == "saturating" {
            let (dispatch, adaptive) = (dispatch.unwrap(), adaptive.unwrap());
            if queries.len() >= PERF_ASSERT_MIN_QUERIES {
                assert!(
                    adaptive.throughput_qps() >= dispatch.throughput_qps(),
                    "adaptive coalescing ({:.0} qps) must beat per-query dispatch \
                     ({:.0} qps) at saturating load",
                    adaptive.throughput_qps(),
                    dispatch.throughput_qps()
                );
            }
            if queries.len() >= PERF_ASSERT_MIN_QUERIES {
                assert!(
                    adaptive.percentile_ns(0.95) <= dispatch.percentile_ns(0.95),
                    "adaptive coalescing p95 ({}) must not exceed dispatch p95 ({}) \
                     at saturating load",
                    format_ns(adaptive.percentile_ns(0.95) as f64),
                    format_ns(dispatch.percentile_ns(0.95) as f64)
                );
            }
        }
    }

    // Bursty traffic: the adaptive window's reason to exist — the right
    // window differs between the burst and the lull.
    let bursty = bursty_arrivals(
        queries.clone(),
        SATURATING_LOAD_FACTOR * solo_qps / 2.0,
        4.0,
        64,
        ctx.seed,
    );
    let outcome = replay(
        &index,
        &bursty,
        VARIANTS[1],
        ServiceConfigDefaults::QUEUE_CAPACITY,
        FullQueuePolicy::Block,
    );
    assert_outputs_identical("bursty/adaptive auto", &outcome, &reference);
    table.push_row(load_row(
        "bursty",
        SATURATING_LOAD_FACTOR * solo_qps / 2.0,
        "adaptive auto",
        &outcome,
    ));
    counters.push_row(stats_row("bursty", "adaptive auto", &outcome.stats));

    // Load shedding: the Reject policy against a deliberately small queue
    // under saturating load. Completed responses must still be
    // bit-identical; the shed count is the backpressure surface at work.
    let arrivals = poisson_arrivals(queries.clone(), SATURATING_LOAD_FACTOR * solo_qps, ctx.seed);
    let outcome = replay(
        &index,
        &arrivals,
        VARIANTS[1],
        REJECT_QUEUE_CAPACITY,
        FullQueuePolicy::Reject,
    );
    assert_outputs_identical("reject/adaptive auto", &outcome, &reference);
    assert_eq!(
        outcome.completed() + outcome.stats.shed as usize,
        queries.len(),
        "every offered query is either answered or counted as shed"
    );
    counters.push_row(stats_row(
        "saturating (reject)",
        &format!("adaptive auto, queue {REJECT_QUEUE_CAPACITY}"),
        &outcome.stats,
    ));

    table.push_note(format!(
        "open-loop replay of a Poisson (rows 1-8) or on/off bursty (row 9) arrival \
         schedule over {} clients; latency runs from each query's scheduled arrival \
         to its response, so falling behind the schedule shows up as queueing delay. \
         Offered loads are multiples of the measured solo drain rate ({} per query): \
         {}x (moderate, capped at {:.0} qps so the schedule stays paceable against \
         sleep granularity) and {}x (saturating)",
        CLIENTS,
        format_ns(mean_solo_ns as f64),
        MODERATE_LOAD_FACTOR,
        MODERATE_OFFERED_CAP_QPS,
        SATURATING_LOAD_FACTOR
    ));
    table.push_note(
        "hard-asserted on every row: response outputs bit-identical to solo \
         QueryEngine::execute, the blocking policy lossless; at saturating load, \
         adaptive coalescing >= dispatch throughput (and <= dispatch p95 at full \
         scale)",
    );
    table.push_note(format!(
        "configs: dispatch = max_batch 1 (per-query execution); adaptive = window \
         {}..{} adapting by arrival rate and the cost model's predicted fusion \
         saving; fixed = window pinned at {}; strategies are the engine's \
         (auto = cost-based per partition)",
        format_ns(MIN_WINDOW.as_nanos() as f64),
        format_ns(MAX_WINDOW.as_nanos() as f64),
        format_ns(FIXED_WINDOW.as_nanos() as f64)
    ));
    counters.push_note(format!(
        "capacity cuts flush at max_batch pending queries and double the window; \
         underfilled timer cuts halve it; the closing row sheds under \
         FullQueuePolicy::Reject against a {REJECT_QUEUE_CAPACITY}-slot queue at \
         saturating load (shed + completed = offered)"
    ));

    // Recovery under injected faults: the fault-tolerance surface measured
    // the same way the chaos tests assert it — no ticket left behind,
    // non-faulty answers bit-identical, the pool recovered by a probe.
    let mut recovery = Report::new(
        "service-recovery",
        format!(
            "Service recovery under deterministic fault injection ({} queries per \
             schedule, single client)",
            queries.len()
        ),
    )
    .with_headers(&[
        "Schedule",
        "Planned",
        "Fired",
        "Completed",
        "Panicked",
        "Worker died",
        "Timed out",
        "Degraded batches",
        "Restarts",
    ]);
    let recovery_row = |name: &str, planned: usize, outcome: &RecoveryOutcome| -> Vec<String> {
        vec![
            name.to_string(),
            planned.to_string(),
            outcome.fired.to_string(),
            outcome.completed.to_string(),
            outcome.panicked.to_string(),
            outcome.worker_died.to_string(),
            outcome.stats.timed_out.to_string(),
            outcome.stats.degraded_batches.to_string(),
            outcome.stats.worker_restarts.to_string(),
        ]
    };
    let chaos_window = (Duration::from_micros(100), Duration::from_millis(2));
    let chaos_batch = 32.max(queries.len() / 8);

    let control = replay_recovery(
        &index,
        &queries,
        &reference,
        RecoveryCase {
            plan: None,
            deadline: None,
            window: chaos_window,
            max_batch: chaos_batch,
            label: "recovery/control",
        },
    );
    assert_eq!(control.panicked + control.worker_died, 0);
    recovery.push_row(recovery_row("none (control)", 0, &control));

    let schedule = fault_schedule(
        queries.len() as u64,
        (queries.len() / 40).max(3),
        ctx.seed ^ 0xFA17,
    );
    let chaos_plan = Arc::new(plan_from_schedule(&schedule));
    let chaos = replay_recovery(
        &index,
        &queries,
        &reference,
        RecoveryCase {
            plan: Some(Arc::clone(&chaos_plan)),
            deadline: None,
            window: chaos_window,
            max_batch: chaos_batch,
            label: "recovery/chaos",
        },
    );
    assert!(
        chaos.panicked >= 1,
        "the chaos schedule must panic somewhere"
    );
    assert!(chaos.stats.degraded_batches >= 1);
    assert_eq!(
        chaos.stats.worker_panics, 0,
        "kernel panics must never escape the execution boundary"
    );
    recovery.push_row(recovery_row("seeded chaos", schedule.len(), &chaos));

    let kill_plan = Arc::new(FaultPlan::new().with(queries.len() as u64 / 2, Fault::WorkerKill));
    let kill = replay_recovery(
        &index,
        &queries,
        &reference,
        RecoveryCase {
            plan: Some(kill_plan),
            deadline: None,
            window: chaos_window,
            max_batch: chaos_batch,
            label: "recovery/worker-kill",
        },
    );
    assert!(
        kill.worker_died >= 1,
        "the killed batch must surface WorkerDied"
    );
    assert_eq!(kill.stats.worker_panics, 1);
    assert_eq!(kill.stats.worker_restarts, 1);
    recovery.push_row(recovery_row("worker kill", 1, &kill));

    // Deadlines: a 30ms fixed window against 1ms deadlines expires every
    // query in the queue — all culled at batch formation, none executed
    // late, none silently dropped (only the deadline-free probe completes).
    let expired = replay_recovery(
        &index,
        &queries,
        &reference,
        RecoveryCase {
            plan: None,
            deadline: Some(Duration::from_millis(1)),
            window: (Duration::from_millis(30), Duration::from_millis(30)),
            // No capacity flushes: every query must sit out the window so
            // its deadline expires in the queue.
            max_batch: queries.len() + 1,
            label: "recovery/deadline",
        },
    );
    assert_eq!(expired.stats.timed_out, queries.len() as u64);
    assert_eq!(expired.completed, 1, "only the probe survives its deadline");
    recovery.push_row(recovery_row("deadline 1ms, window 30ms", 0, &expired));

    recovery.push_note(
        "fault kinds: kernel panics inside the execution boundary (batch degrades \
         to one-by-one re-execution; only the faulty query fails), worker kills \
         outside it (tickets in the dead worker's batch resolve to WorkerDied; the \
         supervisor respawns the thread), submit stalls and execution delays; \
         schedules are seeded and deterministic (wazi_workload::fault_schedule)",
    );
    recovery.push_note(
        "hard-asserted on every row: each submission reaches exactly one terminal \
         outcome (completed + panicked + worker died + timed out = offered + probe), \
         completed answers bit-identical to solo execution, exactly the planned \
         kernel panics surface, and a post-fault probe completes (the pool \
         recovered)",
    );

    // The transport table: the same offered load routed in-process (direct
    // `submit`) and over loopback TCP (`wazi-net`), the adaptive-auto
    // service behind both. The wire's pinned guarantee — it changes
    // transport, never answers — is hard-asserted on every completed
    // response; the throughput/latency deltas are what framing, sockets
    // and one-in-flight-per-connection pipelining cost.
    let mut transport = Report::new(
        "service-transport",
        format!(
            "In-process vs loopback-TCP transport at the same offered load \
             ({} queries, {} clients, adaptive auto service)",
            queries.len(),
            CLIENTS
        ),
    )
    .with_headers(&[
        "Load",
        "Offered qps",
        "Transport",
        "Completed",
        "Achieved qps",
        "p50",
        "p95",
        "p99",
        "Connections",
        "Retries",
    ]);
    let transport_row = |load: &str,
                         offered: f64,
                         name: &str,
                         outcome: &RunOutcome,
                         connections: u64,
                         retries: u64|
     -> Vec<String> {
        vec![
            load.to_string(),
            format!("{offered:.0}"),
            name.to_string(),
            outcome.completed().to_string(),
            format!("{:.0}", outcome.throughput_qps()),
            format_ns(outcome.percentile_ns(0.50) as f64),
            format_ns(outcome.percentile_ns(0.95) as f64),
            format_ns(outcome.percentile_ns(0.99) as f64),
            connections.to_string(),
            retries.to_string(),
        ]
    };
    for (load_name, offered_qps) in loads {
        let arrivals = poisson_arrivals(queries.clone(), offered_qps, ctx.seed);
        if ctx.transport.includes_in_process() {
            let outcome = replay(
                &index,
                &arrivals,
                VARIANTS[1],
                ServiceConfigDefaults::QUEUE_CAPACITY,
                FullQueuePolicy::Block,
            );
            let label = format!("transport/{load_name}/in-process");
            assert_outputs_identical(&label, &outcome, &reference);
            transport.push_row(transport_row(
                load_name,
                offered_qps,
                "in-process",
                &outcome,
                0,
                0,
            ));
        }
        if ctx.transport.includes_tcp() {
            let (outcome, retries) = replay_tcp(&index, &arrivals, VARIANTS[1]);
            let label = format!("transport/{load_name}/tcp");
            assert_outputs_identical(&label, &outcome, &reference);
            assert_eq!(
                outcome.completed(),
                queries.len(),
                "{label}: the blocking policy over TCP must be lossless"
            );
            assert_eq!(
                outcome.stats.connections_opened, outcome.stats.connections_drained,
                "{label}: every connection must drain"
            );
            transport.push_row(transport_row(
                load_name,
                offered_qps,
                "tcp",
                &outcome,
                outcome.stats.connections_opened,
                retries,
            ));
        }
    }
    if ctx.transport.includes_tcp() {
        // The reconnect-heavy row: per-client session epochs with a fresh
        // connection per epoch and a shared hot-key subset — the client
        // schedule shape `wazi_workload::reconnect_sessions` generates.
        let schedules = reconnect_sessions(
            queries.clone(),
            CLIENTS,
            moderate_qps,
            (queries.len() / (CLIENTS * 6)).max(4),
            0.25,
            ctx.seed,
        );
        let offered: usize = schedules.iter().map(|s| s.total_queries()).sum();
        let connections: usize = schedules.iter().map(|s| s.epochs.len()).sum();
        let (outcome, retries) = replay_tcp_sessions(&index, &schedules, VARIANTS[1]);
        assert_eq!(
            outcome.completed(),
            offered,
            "transport/reconnect: every session query must complete"
        );
        assert_eq!(
            outcome.stats.connections_opened, outcome.stats.connections_drained,
            "transport/reconnect: every connection must drain"
        );
        assert!(
            outcome.stats.connections_opened as usize >= connections,
            "transport/reconnect: each epoch dials a fresh connection"
        );
        transport.push_row(transport_row(
            "reconnect-heavy",
            moderate_qps,
            "tcp",
            &outcome,
            outcome.stats.connections_opened,
            retries,
        ));
    }
    transport.push_note(
        "same arrival schedules and adaptive-auto service on both transports; the \
         TCP path adds framing, checksums, loopback sockets and a pipelining unit \
         of one in-flight request per connection, so its open-loop latency upper-\
         bounds the wire cost. Hard-asserted: every completed response \
         bit-identical to solo execution (the wire changes transport, never \
         answers), lossless under the blocking policy, connections opened = \
         drained",
    );
    transport.push_note(
        "the reconnect-heavy row replays wazi_workload::reconnect_sessions: \
         per-client Poisson epochs with a fresh connection per epoch and 25% \
         hot-key substitution, so connection churn and skew land on the server \
         together",
    );

    // The read/write table: the snapshot-versioned writer path under a
    // live writer. A writer thread publishes a new index version per write
    // burst while clients read concurrently; every response names the
    // epoch it executed against and is hard-asserted bit-identical to a
    // solo execution on that epoch's pinned snapshot.
    let mut rw = Report::new(
        "service-rw",
        "Snapshot reads under a live writer (mixed read/write schedule, \
         epoch-versioned index)",
    )
    .with_headers(&[
        "Index",
        "Reads",
        "Writes",
        "Versions",
        "Epochs read",
        "Retired",
        "Rebuilds",
        "p50",
        "p95",
    ]);
    let rw_rounds = 4usize;
    let rw_reads = (ctx.workload_size / (rw_rounds + 1)).max(6);
    let rw_writes = (ctx.dataset_size / 200).clamp(4, 64);
    let rw_schedule = mixed_read_write_schedule(
        SERVICE_REGION,
        rw_rounds,
        rw_reads,
        rw_writes,
        SERVICE_SELECTIVITY,
        ctx.seed ^ 0x0DD_5EED,
    );
    let rw_queries: Vec<Query> = rw_schedule
        .iter()
        .filter_map(|step| match step {
            RwStep::Queries(queries) => Some(queries.clone()),
            RwStep::Writes(_) => None,
        })
        .flatten()
        .collect();
    let rw_bursts = rw_schedule.iter().filter(|s| s.write_count() > 0).count() as u64;
    let rw_ops: u64 = rw_schedule.iter().map(|s| s.write_count() as u64).sum();
    // Three writer temperaments: in-place inserts (WaZI), full
    // insert+delete support (Flood), and rebuild-per-burst (QUASII).
    for kind in [IndexKind::Wazi, IndexKind::Flood, IndexKind::Quasii] {
        let source = build_versioned_index(kind, &points, &train, ctx.leaf_capacity);
        let label = format!("rw/{kind}");
        let outcome = replay_rw(&label, &source, &rw_schedule);
        assert_eq!(
            outcome.responses.len(),
            rw_queries.len(),
            "{label}: the blocking policy must be lossless under writes"
        );
        assert_eq!(outcome.stats.writes_applied, rw_ops, "{label}");
        assert_eq!(outcome.stats.snapshots_published, rw_bursts, "{label}");
        assert_eq!(outcome.stats.current_epoch, rw_bursts, "{label}");
        assert_eq!(outcome.snapshots.len(), rw_bursts as usize + 1, "{label}");
        // The live-writer bit-identity assert: each response equals a solo
        // execution on the pinned snapshot of exactly the epoch it names.
        let mut epochs_read = std::collections::BTreeSet::new();
        for (i, epoch, output) in &outcome.responses {
            epochs_read.insert(*epoch);
            let snapshot = &outcome.snapshots[*epoch as usize];
            let solo = QueryEngine::new(snapshot)
                .execute(&rw_queries[*i])
                .expect("solo execution on pinned snapshot")
                .output;
            assert_eq!(
                output, &solo,
                "{label}: response {i} diverged from its epoch-{epoch} snapshot"
            );
        }
        rw.push_row(vec![
            kind.name().to_string(),
            outcome.responses.len().to_string(),
            outcome.stats.writes_applied.to_string(),
            outcome.stats.snapshots_published.to_string(),
            epochs_read.len().to_string(),
            outcome.stats.epochs_retired.to_string(),
            outcome.rebuilds.to_string(),
            format_ns(percentile_sorted(&outcome.latencies_ns, 0.50) as f64),
            format_ns(percentile_sorted(&outcome.latencies_ns, 0.95) as f64),
        ]);
    }
    rw.push_note(format!(
        "a writer thread applies {rw_bursts} write bursts of {rw_writes} ops \
         (inserts, deletes of earlier inserts, closing maintain) while clients \
         submit {} reads concurrently; every response carries the epoch of the \
         index version it executed against",
        rw_queries.len()
    ));
    rw.push_note(
        "hard-asserted per index: lossless under the blocking policy, one \
         published version per burst, and every response bit-identical to a solo \
         execution on the pinned snapshot of exactly the epoch it names — a \
         snapshot never changes answers, writes only change which snapshot you \
         read. WaZI applies inserts in place, Flood also deletes in place, \
         QUASII rebuilds from the point mirror every burst",
    );

    let reports = vec![table, counters, transport, recovery, rw];
    if ctx.emit_artifacts {
        match emit_service_json(&reports, SERVICE_JSON_PATH) {
            Ok(()) => eprintln!("   wrote {SERVICE_JSON_PATH}"),
            Err(e) => eprintln!("   could not write {SERVICE_JSON_PATH}: {e}"),
        }
    }
    reports
}

/// The service's own queue-capacity default, restated as a named constant
/// so the experiment reads clearly.
struct ServiceConfigDefaults;

impl ServiceConfigDefaults {
    const QUEUE_CAPACITY: usize = 1024;
}

/// Serialises the service reports to `path` as a JSON array (the
/// `BENCH_service.json` artifact).
pub fn emit_service_json(reports: &[Report], path: &str) -> std::io::Result<()> {
    std::fs::write(path, Report::json_array(reports))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The experiment's own asserts (bit-identity, losslessness, the
    /// saturating-load throughput bound) all run inside `service`; this
    /// test exercises them at smoke scale and checks the report shape the
    /// artifact is built from.
    #[test]
    fn smoke_run_produces_wellformed_reports() {
        let ctx = ExperimentContext::smoke_test();
        let reports = service(&ctx);
        assert_eq!(reports.len(), 5);
        let load = &reports[0];
        assert_eq!(load.id, "service-load");
        // 4 configs x 2 loads + the bursty row.
        assert_eq!(load.rows.len(), 2 * VARIANTS.len() + 1);
        for row in &load.rows {
            assert_eq!(row.len(), load.headers.len());
        }
        let counters = &reports[1];
        assert_eq!(counters.id, "service-stats");
        assert_eq!(counters.rows.len(), 2 * VARIANTS.len() + 2);
        let transport = &reports[2];
        assert_eq!(transport.id, "service-transport");
        // (in-process + tcp) x 2 loads + the reconnect-heavy row.
        assert_eq!(transport.rows.len(), 5);
        for row in &transport.rows {
            assert_eq!(row.len(), transport.headers.len());
        }
        let recovery = &reports[3];
        assert_eq!(recovery.id, "service-recovery");
        // control + seeded chaos + worker kill + deadline.
        assert_eq!(recovery.rows.len(), 4);
        for row in &recovery.rows {
            assert_eq!(row.len(), recovery.headers.len());
        }
        let rw = &reports[4];
        assert_eq!(rw.id, "service-rw");
        // One row per writer temperament: WaZI, Flood, QUASII.
        assert_eq!(rw.rows.len(), 3);
        for row in &rw.rows {
            assert_eq!(row.len(), rw.headers.len());
        }
    }
}
