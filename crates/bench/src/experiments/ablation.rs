//! Figure 13: ablation study of adaptive partitioning and look-ahead
//! skipping, plus extra ablations of design knobs called out in DESIGN.md §5.

use super::{workload_setup, ExperimentContext};
use crate::measure::{format_ns, measure_range_queries};
use crate::report::Report;
use crate::suite::{build_index, IndexKind};
use wazi_core::{BuildStrategy, DensityMode, ZIndexBuilder, ZIndexConfig};
use wazi_workload::{generate_queries_with_seed, Region, ABLATION_SELECTIVITIES, SELECTIVITIES};

/// Figure 13: query time, excess points, bounding boxes checked and pages
/// scanned for Base, Base+SK, WaZI−SK and WaZI across the ablation
/// selectivity range.
pub fn figure13(ctx: &ExperimentContext) -> Vec<Report> {
    let region = Region::NewYork;
    let mut query_time = Report::new(
        "figure13-time",
        "Ablation: query time (Figure 13, top-left)",
    )
    .with_headers(&["Selectivity (%)", "Base", "Base+SK", "WaZI-SK", "WaZI"]);
    let mut excess = Report::new(
        "figure13-excess",
        "Ablation: excess points compared (Figure 13, top-right)",
    )
    .with_headers(&["Selectivity (%)", "Base", "Base+SK", "WaZI-SK", "WaZI"]);
    let mut bbs = Report::new(
        "figure13-bbs",
        "Ablation: bounding boxes checked (Figure 13, bottom-left)",
    )
    .with_headers(&["Selectivity (%)", "Base", "Base+SK", "WaZI-SK", "WaZI"]);
    let mut pages = Report::new(
        "figure13-pages",
        "Ablation: pages scanned (Figure 13, bottom-right)",
    )
    .with_headers(&["Selectivity (%)", "Base", "Base+SK", "WaZI-SK", "WaZI"]);

    for &selectivity in &ABLATION_SELECTIVITIES {
        let (points, train, eval) = workload_setup(ctx, region, selectivity, ctx.dataset_size);
        let mut time_row = vec![format!("{:.4}", selectivity * 100.0)];
        let mut excess_row = time_row.clone();
        let mut bbs_row = time_row.clone();
        let mut pages_row = time_row.clone();
        for kind in IndexKind::ABLATION {
            let built = build_index(kind, &points, &train, ctx.leaf_capacity);
            let m = measure_range_queries(built.index.as_ref(), &eval);
            time_row.push(format_ns(m.mean_latency_ns));
            excess_row.push(format!("{:.0}", m.mean_excess_points));
            bbs_row.push(format!("{:.0}", m.mean_bbs_checked));
            pages_row.push(format!("{:.0}", m.mean_pages_scanned));
        }
        query_time.push_row(time_row);
        excess.push_row(excess_row);
        bbs.push_row(bbs_row);
        pages.push_row(pages_row);
    }
    bbs.push_note(
        "expected shape: the +SK variants check orders of magnitude fewer bounding boxes",
    );
    excess.push_note("expected shape: adaptive partitioning (WaZI, WaZI-SK) reduces excess points and pages scanned; skipping alone does not");
    query_time.push_note("expected shape: WaZI is fastest; Base+SK approaches Base and WaZI-SK approaches WaZI as selectivity grows");
    vec![query_time, excess, bbs, pages]
}

/// Extra ablations beyond the paper: sensitivity of WaZI to the number of
/// candidate splits `κ`, the skip-cost constant `α`, and the density
/// estimation mode (RFDE vs exact counting).
pub fn extra(ctx: &ExperimentContext) -> Vec<Report> {
    let region = Region::NewYork;
    let selectivity = SELECTIVITIES[1];
    let (points, train, eval) = workload_setup(ctx, region, selectivity, ctx.dataset_size);
    let train_small: Vec<_> = train.iter().copied().take(ctx.training_size).collect();
    let eval_small: Vec<_> = eval.iter().copied().take(ctx.workload_size).collect();

    let mut kappa_report = Report::new(
        "ablation-kappa",
        "Extra ablation: candidate split samples (kappa) vs build time and query latency",
    )
    .with_headers(&["kappa", "Build", "Range latency", "Points scanned"]);
    for kappa in [1usize, 4, 16, 64] {
        let config = ZIndexConfig::wazi()
            .with_leaf_capacity(ctx.leaf_capacity)
            .with_kappa(kappa);
        let (build_ns, index) = timed_build(config, BuildStrategy::Adaptive, &points, &train_small);
        let m = measure_range_queries(&index, &eval_small);
        kappa_report.push_row(vec![
            kappa.to_string(),
            format_ns(build_ns),
            format_ns(m.mean_latency_ns),
            format!("{:.0}", m.mean_points_scanned),
        ]);
    }
    kappa_report.push_note("build time grows with kappa; query latency improvements flatten out");

    let mut alpha_report = Report::new(
        "ablation-alpha",
        "Extra ablation: skip-cost constant alpha vs query latency",
    )
    .with_headers(&["alpha", "Range latency", "BBs checked", "Points scanned"]);
    for alpha in [1e-5, 1e-2, 0.1, 0.5, 1.0] {
        let config = ZIndexConfig::wazi()
            .with_leaf_capacity(ctx.leaf_capacity)
            .with_alpha(alpha);
        let (_, index) = timed_build(config, BuildStrategy::Adaptive, &points, &train_small);
        let m = measure_range_queries(&index, &eval_small);
        alpha_report.push_row(vec![
            format!("{alpha}"),
            format_ns(m.mean_latency_ns),
            format!("{:.0}", m.mean_bbs_checked),
            format!("{:.0}", m.mean_points_scanned),
        ]);
    }
    alpha_report.push_note("small alpha (the paper uses 1e-5 with skipping) lets the optimiser tolerate spanning layouts whose skipped cells are nearly free");

    let mut density_report = Report::new(
        "ablation-density",
        "Extra ablation: RFDE-estimated vs exact cardinalities during construction",
    )
    .with_headers(&["Density mode", "Build", "Range latency", "Points scanned"]);
    for (label, mode) in [
        ("RFDE (paper)", DensityMode::default()),
        ("Exact counting", DensityMode::Exact),
    ] {
        let config = ZIndexConfig::wazi()
            .with_leaf_capacity(ctx.leaf_capacity)
            .with_density(mode);
        let (build_ns, index) = timed_build(config, BuildStrategy::Adaptive, &points, &train_small);
        let m = measure_range_queries(&index, &eval_small);
        density_report.push_row(vec![
            label.to_string(),
            format_ns(build_ns),
            format_ns(m.mean_latency_ns),
            format!("{:.0}", m.mean_points_scanned),
        ]);
    }
    density_report.push_note("the learned estimator trades a little layout quality for faster cost evaluation on large cells");

    // Workload-drift robustness of the drifted evaluation is covered by
    // Figure 12; the same infrastructure is reused here for a quick check
    // that a workload from another region degrades WaZI as expected.
    let other = generate_queries_with_seed(Region::Iberia, eval_small.len(), selectivity, 99);
    let config = ZIndexConfig::wazi().with_leaf_capacity(ctx.leaf_capacity);
    let (_, wazi) = timed_build(config, BuildStrategy::Adaptive, &points, &train_small);
    let own = measure_range_queries(&wazi, &eval_small);
    let foreign = measure_range_queries(&wazi, &other);
    let mut drift_report = Report::new(
        "ablation-foreign-workload",
        "Extra ablation: WaZI evaluated on its own vs a foreign workload",
    )
    .with_headers(&["Workload", "Range latency", "Points scanned"]);
    drift_report.push_row(vec![
        "trained (NewYork)".into(),
        format_ns(own.mean_latency_ns),
        format!("{:.0}", own.mean_points_scanned),
    ]);
    drift_report.push_row(vec![
        "foreign (Iberia)".into(),
        format_ns(foreign.mean_latency_ns),
        format!("{:.0}", foreign.mean_points_scanned),
    ]);

    vec![kappa_report, alpha_report, density_report, drift_report]
}

/// Builds a WaZI/Base variant with an explicit configuration, returning the
/// build time and the index.
fn timed_build(
    config: ZIndexConfig,
    strategy: BuildStrategy,
    points: &[wazi_geom::Point],
    train: &[wazi_geom::Rect],
) -> (f64, wazi_core::ZIndex) {
    let start = std::time::Instant::now();
    let index = ZIndexBuilder::new(config, strategy).build(points.to_vec(), train);
    (start.elapsed().as_nanos() as f64, index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure13_produces_four_panels() {
        let mut ctx = ExperimentContext::smoke_test();
        ctx.dataset_size = 3_000;
        ctx.workload_size = 50;
        ctx.training_size = 50;
        let reports = figure13(&ctx);
        assert_eq!(reports.len(), 4);
        for report in &reports {
            assert_eq!(report.rows.len(), ABLATION_SELECTIVITIES.len());
            assert_eq!(report.headers.len(), 5);
        }
    }

    #[test]
    fn extra_ablations_cover_kappa_alpha_density() {
        let mut ctx = ExperimentContext::smoke_test();
        ctx.dataset_size = 2_000;
        ctx.workload_size = 30;
        ctx.training_size = 30;
        let reports = extra(&ctx);
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0].rows.len(), 4); // kappa sweep
        assert_eq!(reports[1].rows.len(), 5); // alpha sweep
        assert_eq!(reports[2].rows.len(), 2); // density modes
        assert_eq!(reports[3].rows.len(), 2); // own vs foreign workload
    }
}
