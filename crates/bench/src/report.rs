//! Plain-text and JSON reporting of experiment results.

/// A rendered experiment result: one table with a title, headers and rows,
/// mirroring a table or figure of the paper.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment identifier, e.g. `"figure6"`.
    pub id: String,
    /// Human-readable title including the paper reference.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Table rows (same arity as `headers`).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (workload parameters, caveats).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report with the given identifier and title.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            headers: Vec::new(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Sets the column headers.
    pub fn with_headers(mut self, headers: &[&str]) -> Self {
        self.headers = headers.iter().map(|h| h.to_string()).collect();
        self
    }

    /// Appends one row.
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert!(
            self.headers.is_empty() || row.len() == self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(row);
    }

    /// Appends a note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Serialises the report to pretty JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, 0);
        out
    }

    /// Serialises a slice of reports to a pretty JSON array (the `--json`
    /// output of the `reproduce` binary).
    pub fn json_array(reports: &[Report]) -> String {
        if reports.is_empty() {
            return "[]".to_string();
        }
        let mut out = String::from("[\n");
        for (i, report) in reports.iter().enumerate() {
            out.push_str("  ");
            report.write_json(&mut out, 1);
            if i + 1 < reports.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out
    }

    fn write_json(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        out.push_str("{\n");
        out.push_str(&format!("{pad}\"id\": {},\n", json_string(&self.id)));
        out.push_str(&format!("{pad}\"title\": {},\n", json_string(&self.title)));
        out.push_str(&format!(
            "{pad}\"headers\": {},\n",
            json_string_array(&self.headers)
        ));
        out.push_str(&format!("{pad}\"rows\": ["));
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n{pad}  {}", json_string_array(row)));
        }
        if !self.rows.is_empty() {
            out.push_str(&format!("\n{pad}"));
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "{pad}\"notes\": {}\n",
            json_string_array(&self.notes)
        ));
        out.push_str(&"  ".repeat(depth));
        out.push('}');
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_string_array(values: &[String]) -> String {
    let escaped: Vec<String> = values.iter().map(|v| json_string(v)).collect();
    format!("[{}]", escaped.join(", "))
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} ({}) ==", self.title, self.id)?;
        let columns = self.headers.len().max(1);
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < columns {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        if !self.headers.is_empty() {
            let header_line: Vec<String> = self
                .headers
                .iter()
                .enumerate()
                .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
                .collect();
            writeln!(f, "{}", header_line.join("  "))?;
            writeln!(
                f,
                "{}",
                widths
                    .iter()
                    .map(|w| "-".repeat(*w))
                    .collect::<Vec<_>>()
                    .join("  ")
            )?;
        }
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, cell)| {
                    format!(
                        "{cell:>width$}",
                        width = widths.get(i).copied().unwrap_or(0)
                    )
                })
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_aligned_table_and_json() {
        let mut report = Report::new("figX", "Demo").with_headers(&["Index", "Latency"]);
        report.push_row(vec!["WaZI".into(), "1.2 us".into()]);
        report.push_row(vec!["Base".into(), "2.4 us".into()]);
        report.push_note("synthetic data");
        let text = report.to_string();
        assert!(text.contains("== Demo (figX) =="));
        assert!(text.contains("WaZI"));
        assert!(text.contains("note: synthetic data"));
        let json = report.to_json();
        assert!(json.contains("\"figX\""));
        assert!(json.contains("Latency"));
    }
}
