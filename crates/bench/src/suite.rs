//! Uniform construction of every index compared in the evaluation.

use std::sync::Arc;
use std::time::Instant;
use wazi_baselines::{CurTree, FloodIndex, Quasii, StrRTree, ZOrderSorted};
use wazi_core::{SnapshotSource, SpatialIndex, VersionedIndex, ZIndexBuilder, ZIndexConfig};
use wazi_geom::{Point, Rect};

/// The indexes of the evaluation. The first six are the primary competitors
/// of Figures 6–13 and Tables 3–5; `Zpgm` is the rank-space representative
/// that only appears in Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// The paper's contribution (adaptive layout + skipping).
    Wazi,
    /// WaZI without look-ahead pointers (ablation).
    WaziNoSkip,
    /// Base Z-index with look-ahead pointers (ablation).
    BaseSkip,
    /// Base Z-index (median splits, `abcd`, no skipping).
    Base,
    /// Sort-Tile-Recursive R-tree.
    Str,
    /// Cost-based unbalanced R-tree.
    Cur,
    /// Simplified 2-D Flood grid.
    Flood,
    /// Converged query-aware cracking index.
    Quasii,
    /// Rank-space Z-order sorted array (Figure 4 only).
    Zpgm,
}

impl IndexKind {
    /// The six indexes compared in the detailed experiments (Figure 6
    /// onwards), in the order the paper's plots list them.
    pub const PRIMARY: [IndexKind; 6] = [
        IndexKind::Quasii,
        IndexKind::Cur,
        IndexKind::Str,
        IndexKind::Flood,
        IndexKind::Base,
        IndexKind::Wazi,
    ];

    /// Indexes shown in the Figure 4 overview (primary plus the rank-space
    /// representative).
    pub const OVERVIEW: [IndexKind; 7] = [
        IndexKind::Quasii,
        IndexKind::Cur,
        IndexKind::Str,
        IndexKind::Flood,
        IndexKind::Base,
        IndexKind::Wazi,
        IndexKind::Zpgm,
    ];

    /// The four variants of the ablation study (Figure 13).
    pub const ABLATION: [IndexKind; 4] = [
        IndexKind::Base,
        IndexKind::BaseSkip,
        IndexKind::WaziNoSkip,
        IndexKind::Wazi,
    ];

    /// The indexes of the insert experiment (Figure 11).
    pub const INSERTABLE: [IndexKind; 3] = [IndexKind::Wazi, IndexKind::Cur, IndexKind::Flood];

    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::Wazi => "WaZI",
            IndexKind::WaziNoSkip => "WaZI-SK",
            IndexKind::BaseSkip => "Base+SK",
            IndexKind::Base => "Base",
            IndexKind::Str => "STR",
            IndexKind::Cur => "CUR",
            IndexKind::Flood => "Flood",
            IndexKind::Quasii => "QUASII",
            IndexKind::Zpgm => "Zpgm",
        }
    }

    /// Table 1 properties: whether the index construction uses a space
    /// filling curve, whether it is query-aware and whether it uses learned
    /// components.
    pub fn properties(&self) -> (bool, bool, bool) {
        match self {
            IndexKind::Wazi | IndexKind::WaziNoSkip => (true, true, true),
            IndexKind::Base | IndexKind::BaseSkip => (true, false, false),
            IndexKind::Str => (false, false, false),
            IndexKind::Cur => (false, true, true),
            IndexKind::Flood => (false, true, true),
            IndexKind::Quasii => (false, true, false),
            IndexKind::Zpgm => (true, false, true),
        }
    }
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A built index together with its construction time.
pub struct BuiltIndex {
    /// The constructed index behind the shared trait.
    pub index: Box<dyn SpatialIndex>,
    /// Which kind it is.
    pub kind: IndexKind,
    /// Wall-clock construction time in nanoseconds.
    pub build_ns: u64,
}

/// Builds one index for a dataset and training workload using the shared
/// leaf capacity `L`, measuring wall-clock construction time.
pub fn build_index(
    kind: IndexKind,
    points: &[Point],
    queries: &[Rect],
    leaf_capacity: usize,
) -> BuiltIndex {
    let start = Instant::now();
    let index: Box<dyn SpatialIndex> = match kind {
        IndexKind::Wazi => Box::new(
            ZIndexBuilder::wazi()
                .with_config(ZIndexConfig::wazi().with_leaf_capacity(leaf_capacity))
                .build(points.to_vec(), queries),
        ),
        IndexKind::WaziNoSkip => Box::new(
            ZIndexBuilder::new(
                ZIndexConfig::wazi_without_skipping().with_leaf_capacity(leaf_capacity),
                wazi_core::BuildStrategy::Adaptive,
            )
            .build(points.to_vec(), queries),
        ),
        IndexKind::BaseSkip => Box::new(
            ZIndexBuilder::new(
                ZIndexConfig::base_with_skipping().with_leaf_capacity(leaf_capacity),
                wazi_core::BuildStrategy::Base,
            )
            .build(points.to_vec(), &[]),
        ),
        IndexKind::Base => Box::new(
            ZIndexBuilder::base()
                .with_config(ZIndexConfig::base().with_leaf_capacity(leaf_capacity))
                .build(points.to_vec(), &[]),
        ),
        IndexKind::Str => Box::new(StrRTree::build(points.to_vec(), leaf_capacity)),
        IndexKind::Cur => Box::new(CurTree::build(points.to_vec(), queries, leaf_capacity)),
        IndexKind::Flood => Box::new(FloodIndex::build(points.to_vec(), queries, leaf_capacity)),
        IndexKind::Quasii => Box::new(Quasii::build(points.to_vec(), queries, leaf_capacity)),
        IndexKind::Zpgm => Box::new(ZOrderSorted::with_default_bits(points.to_vec())),
    };
    BuiltIndex {
        index,
        kind,
        build_ns: start.elapsed().as_nanos() as u64,
    }
}

/// Builds one index and wraps it as an epoch-versioned writer-capable
/// source for the read/write service experiments.
///
/// Every kind gets the rebuild fallback
/// ([`VersionedIndex::with_rebuild`]), so even bulk-only indexes (QUASII)
/// and partially updatable ones (STR, CUR, Zpgm) advance through the
/// version chain: ops they reject with
/// `IndexError::UpdateUnsupported` rebuild from the updated point mirror
/// instead of failing the write. The rebuild closures capture the training
/// workload so query-aware indexes retrain on their original queries.
pub fn build_versioned_index(
    kind: IndexKind,
    points: &[Point],
    queries: &[Rect],
    leaf_capacity: usize,
) -> Arc<dyn SnapshotSource> {
    let points = points.to_vec();
    let queries = queries.to_vec();
    match kind {
        IndexKind::Wazi => {
            let build = move |pts: &[Point]| {
                ZIndexBuilder::wazi()
                    .with_config(ZIndexConfig::wazi().with_leaf_capacity(leaf_capacity))
                    .build(pts.to_vec(), &queries)
            };
            Arc::new(VersionedIndex::with_rebuild(build(&points), points, build))
        }
        IndexKind::WaziNoSkip => {
            let build = move |pts: &[Point]| {
                ZIndexBuilder::new(
                    ZIndexConfig::wazi_without_skipping().with_leaf_capacity(leaf_capacity),
                    wazi_core::BuildStrategy::Adaptive,
                )
                .build(pts.to_vec(), &queries)
            };
            Arc::new(VersionedIndex::with_rebuild(build(&points), points, build))
        }
        IndexKind::BaseSkip => {
            let build = move |pts: &[Point]| {
                ZIndexBuilder::new(
                    ZIndexConfig::base_with_skipping().with_leaf_capacity(leaf_capacity),
                    wazi_core::BuildStrategy::Base,
                )
                .build(pts.to_vec(), &[])
            };
            Arc::new(VersionedIndex::with_rebuild(build(&points), points, build))
        }
        IndexKind::Base => {
            let build = move |pts: &[Point]| {
                ZIndexBuilder::base()
                    .with_config(ZIndexConfig::base().with_leaf_capacity(leaf_capacity))
                    .build(pts.to_vec(), &[])
            };
            Arc::new(VersionedIndex::with_rebuild(build(&points), points, build))
        }
        IndexKind::Str => {
            let build = move |pts: &[Point]| StrRTree::build(pts.to_vec(), leaf_capacity);
            Arc::new(VersionedIndex::with_rebuild(build(&points), points, build))
        }
        IndexKind::Cur => {
            let build = move |pts: &[Point]| CurTree::build(pts.to_vec(), &queries, leaf_capacity);
            Arc::new(VersionedIndex::with_rebuild(build(&points), points, build))
        }
        IndexKind::Flood => {
            let build =
                move |pts: &[Point]| FloodIndex::build(pts.to_vec(), &queries, leaf_capacity);
            Arc::new(VersionedIndex::with_rebuild(build(&points), points, build))
        }
        IndexKind::Quasii => {
            let build = move |pts: &[Point]| Quasii::build(pts.to_vec(), &queries, leaf_capacity);
            Arc::new(VersionedIndex::with_rebuild(build(&points), points, build))
        }
        IndexKind::Zpgm => {
            let build = move |pts: &[Point]| ZOrderSorted::with_default_bits(pts.to_vec());
            Arc::new(VersionedIndex::with_rebuild(build(&points), points, build))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wazi_storage::ExecStats;
    use wazi_workload::{generate_dataset, generate_queries, Region, SELECTIVITIES};

    #[test]
    fn every_index_kind_builds_and_answers_queries_identically() {
        let points = generate_dataset(Region::NewYork, 4_000);
        let queries = generate_queries(Region::NewYork, 100, SELECTIVITIES[2]);
        let mut reference: Option<Vec<usize>> = None;
        for kind in IndexKind::OVERVIEW
            .into_iter()
            .chain([IndexKind::WaziNoSkip, IndexKind::BaseSkip])
        {
            let built = build_index(kind, &points, &queries, 64);
            assert_eq!(built.index.len(), points.len(), "{kind}");
            assert!(built.build_ns > 0);
            let mut stats = ExecStats::default();
            let counts: Vec<usize> = queries
                .iter()
                .take(25)
                .map(|q| built.index.range_query(q, &mut stats).len())
                .collect();
            match &reference {
                Some(expected) => assert_eq!(&counts, expected, "{kind} disagrees"),
                None => reference = Some(counts),
            }
        }
    }

    #[test]
    fn every_versioned_index_kind_applies_writes_and_advances_epochs() {
        let points = generate_dataset(Region::NewYork, 1_000);
        let queries = generate_queries(Region::NewYork, 50, SELECTIVITIES[2]);
        let extra = Point::new(0.5, 0.5);
        for kind in IndexKind::OVERVIEW {
            let source = build_versioned_index(kind, &points, &queries, 64);
            let before = source.snapshot();
            assert_eq!(before.epoch(), 0, "{kind}");
            assert_eq!(before.len(), points.len(), "{kind}");
            let receipt = source
                .apply(&[wazi_core::WriteOp::Insert(extra)])
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(receipt.epoch, 1, "{kind}");
            let after = source.snapshot();
            assert_eq!(after.len(), points.len() + 1, "{kind}");
            // The pinned snapshot never saw the write.
            assert_eq!(before.len(), points.len(), "{kind}");
        }
    }

    #[test]
    fn names_and_properties_are_consistent_with_table_1() {
        assert_eq!(IndexKind::Wazi.name(), "WaZI");
        assert_eq!(IndexKind::PRIMARY.len(), 6);
        // Table 1: STR is neither SFC-based, query-aware nor learned; WaZI is
        // all three; Base is SFC-based only.
        assert_eq!(IndexKind::Str.properties(), (false, false, false));
        assert_eq!(IndexKind::Wazi.properties(), (true, true, true));
        assert_eq!(IndexKind::Base.properties(), (true, false, false));
        assert_eq!(IndexKind::Quasii.properties(), (false, true, false));
    }
}
