//! Measurement helpers shared by every experiment.
//!
//! All query measurement funnels through the typed query-plan engine
//! ([`QueryEngine`]): experiments describe their workload as [`Query`]
//! plans, the engine owns the `ExecStats` plumbing, and the helpers here
//! reduce the resulting reports to the per-query means the paper's tables
//! print. The low-level `SpatialIndex` methods stay what they were — the
//! implementation layer underneath the engine.

use std::time::Instant;
use wazi_core::{BatchStrategy, Query, QueryEngine, QueryOutput, SpatialIndex, StrategyDecisions};
use wazi_geom::{Point, Rect};
use wazi_storage::ExecStats;

/// Aggregate measurement of a range-query workload on one index.
#[derive(Debug, Clone, Copy, Default)]
pub struct RangeMeasurement {
    /// Number of queries executed.
    pub queries: usize,
    /// Mean end-to-end latency per query in nanoseconds (wall clock).
    pub mean_latency_ns: f64,
    /// Mean projection-phase time per query in nanoseconds (as reported by
    /// the index's own instrumentation).
    pub mean_projection_ns: f64,
    /// Mean scan-phase time per query in nanoseconds.
    pub mean_scan_ns: f64,
    /// Mean result-set size per query.
    pub mean_results: f64,
    /// Mean points compared per query.
    pub mean_points_scanned: f64,
    /// Mean excess (non-result) points compared per query.
    pub mean_excess_points: f64,
    /// Mean bounding boxes checked per query.
    pub mean_bbs_checked: f64,
    /// Mean pages scanned per query.
    pub mean_pages_scanned: f64,
}

/// Runs every query once through the non-materializing counting path
/// ([`SpatialIndex::range_count`]) and averages latency and work counters.
///
/// Executing without materialization makes the measured work match the
/// paper's cost model (Eq. 5): queries are charged for bounding boxes
/// checked and points compared, not for allocating result vectors the
/// model never accounts for. Result cardinalities are taken from the
/// [`ExecStats`] counters the indexes maintain.
pub fn measure_range_queries(index: &dyn SpatialIndex, queries: &[Rect]) -> RangeMeasurement {
    if queries.is_empty() {
        return RangeMeasurement::default();
    }
    let engine = QueryEngine::new(index);
    let mut stats = ExecStats::default();
    let mut total_latency = 0u64;
    for query in queries {
        let report = engine
            .execute(&Query::range_count(*query))
            .expect("workload rectangles are finite");
        total_latency += report.latency_ns;
        stats.merge(&report.stats);
        std::hint::black_box(&report.output);
    }
    let n = queries.len() as f64;
    RangeMeasurement {
        queries: queries.len(),
        mean_latency_ns: total_latency as f64 / n,
        mean_projection_ns: stats.projection_ns as f64 / n,
        mean_scan_ns: stats.scan_ns as f64 / n,
        mean_results: stats.results as f64 / n,
        mean_points_scanned: stats.points_scanned as f64 / n,
        mean_excess_points: stats.excess_points() as f64 / n,
        mean_bbs_checked: stats.bbs_checked as f64 / n,
        mean_pages_scanned: stats.pages_scanned as f64 / n,
    }
}

/// Aggregate measurement of a point-query workload on one index.
#[derive(Debug, Clone, Copy, Default)]
pub struct PointMeasurement {
    /// Number of point queries executed.
    pub queries: usize,
    /// Mean latency per point query in nanoseconds.
    pub mean_latency_ns: f64,
    /// Fraction of probes that found their point.
    pub hit_rate: f64,
}

/// Runs every point query once and averages latency.
pub fn measure_point_queries(index: &dyn SpatialIndex, probes: &[Point]) -> PointMeasurement {
    if probes.is_empty() {
        return PointMeasurement::default();
    }
    let engine = QueryEngine::new(index);
    let mut total_latency = 0u64;
    let mut hits = 0usize;
    for probe in probes {
        let report = engine
            .execute(&Query::point(*probe))
            .expect("probe points are finite");
        total_latency += report.latency_ns;
        hits += usize::from(report.output == QueryOutput::Found(true));
    }
    PointMeasurement {
        queries: probes.len(),
        mean_latency_ns: total_latency as f64 / probes.len() as f64,
        hit_rate: hits as f64 / probes.len() as f64,
    }
}

/// Aggregate measurement of an insert batch on one index.
#[derive(Debug, Clone, Copy, Default)]
pub struct InsertMeasurement {
    /// Number of points inserted.
    pub inserts: usize,
    /// Mean latency per insert in nanoseconds.
    pub mean_latency_ns: f64,
}

/// Inserts every point once and averages latency. Points rejected by the
/// index (unsupported operation) are counted as zero-latency failures and
/// reflected in `inserts`.
pub fn measure_inserts(index: &mut dyn SpatialIndex, points: &[Point]) -> InsertMeasurement {
    if points.is_empty() {
        return InsertMeasurement::default();
    }
    let mut total_latency = 0u64;
    let mut inserted = 0usize;
    for p in points {
        let start = Instant::now();
        if index.insert(*p).is_ok() {
            total_latency += start.elapsed().as_nanos() as u64;
            inserted += 1;
        }
    }
    InsertMeasurement {
        inserts: inserted,
        mean_latency_ns: if inserted == 0 {
            0.0
        } else {
            total_latency as f64 / inserted as f64
        },
    }
}

/// Work and time attributed to one plan type (range / point / kNN) of a
/// mixed batch: the per-query counters of the type's plans plus the shared
/// work its fused partition performed on their behalf.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanKindMeasurement {
    /// Number of plans of this type in the batch.
    pub queries: usize,
    /// Pages scanned for this type (per-query plus partition-shared).
    pub pages_scanned: u64,
    /// Result points this type produced.
    pub results: u64,
    /// Instrumented projection + scan time for this type in nanoseconds
    /// (comparable across strategies, unlike per-query wall clocks, which
    /// the fused paths attribute to the batch as a whole).
    pub time_ns: u64,
}

impl PlanKindMeasurement {
    fn absorb(&mut self, stats: &ExecStats) {
        self.pages_scanned += stats.pages_scanned;
        self.results += stats.results;
        self.time_ns += stats.total_ns();
    }
}

/// Aggregate measurement of one typed query batch on one index.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchMeasurement {
    /// Number of queries in the batch.
    pub queries: usize,
    /// Number of range queries executed through the fused batch kernel.
    pub fused_queries: usize,
    /// Number of point probes executed through the fused point-batch
    /// kernel.
    pub fused_points: usize,
    /// Number of kNN plans executed through the shared expanding-ring
    /// sweep.
    pub fused_knn: usize,
    /// Number of sweep shards the fused kernel ran on (zero when the batch
    /// executed sequentially, one for the single-threaded fused sweep).
    pub shards_used: usize,
    /// Wall-clock latency of the whole batch in nanoseconds.
    pub batch_latency_ns: u64,
    /// Total result points across the batch.
    pub total_results: u64,
    /// Merged work counters (per-query plus batch-shared work).
    pub totals: ExecStats,
    /// Work attributed to the batch's range plans.
    pub range_kind: PlanKindMeasurement,
    /// Work attributed to the batch's point probes.
    pub point_kind: PlanKindMeasurement,
    /// Work attributed to the batch's kNN plans.
    pub knn_kind: PlanKindMeasurement,
    /// The per-partition strategy decisions, when the batch ran under
    /// [`wazi_core::BatchStrategy::Auto`] (every field `None` under a fixed
    /// strategy).
    pub decisions: StrategyDecisions,
}

/// Executes one mixed batch through the engine under the given strategy and
/// reduces the report to its aggregate work counters, overall and per plan
/// type.
pub fn measure_query_batch(
    index: &dyn SpatialIndex,
    batch: &[Query],
    strategy: BatchStrategy,
) -> BatchMeasurement {
    let engine = QueryEngine::new(index).with_strategy(strategy);
    let report = engine
        .execute_batch(batch)
        .expect("generated batches are valid");
    let mut range_kind = PlanKindMeasurement::default();
    let mut point_kind = PlanKindMeasurement::default();
    let mut knn_kind = PlanKindMeasurement::default();
    for (query, query_report) in batch.iter().zip(&report.reports) {
        let kind = match query {
            Query::Range { .. } => &mut range_kind,
            Query::Point(_) => &mut point_kind,
            Query::Knn { .. } => &mut knn_kind,
        };
        kind.queries += 1;
        kind.absorb(&query_report.stats);
    }
    range_kind.absorb(&report.range_shared_stats);
    point_kind.absorb(&report.point_shared_stats);
    knn_kind.absorb(&report.knn_shared_stats);
    BatchMeasurement {
        queries: report.len(),
        fused_queries: report.fused_queries,
        fused_points: report.fused_points,
        fused_knn: report.fused_knn,
        shards_used: report.shards_used,
        batch_latency_ns: report.latency_ns,
        total_results: report.total_results(),
        totals: report.merged_stats(),
        range_kind,
        point_kind,
        knn_kind,
        decisions: report.strategy_chosen,
    }
}

/// Formats a nanosecond quantity with an adaptive unit for table output.
pub fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{build_index, IndexKind};
    use wazi_workload::{generate_dataset, generate_queries, sample_point_queries, Region};

    #[test]
    fn range_measurement_reports_sane_numbers() {
        let points = generate_dataset(Region::Iberia, 3_000);
        let queries = generate_queries(Region::Iberia, 50, 0.001);
        let built = build_index(IndexKind::Wazi, &points, &queries, 64);
        let m = measure_range_queries(built.index.as_ref(), &queries);
        assert_eq!(m.queries, 50);
        assert!(m.mean_latency_ns > 0.0);
        assert!(m.mean_results > 0.0);
        assert!(m.mean_points_scanned >= m.mean_results);
        assert!(m.mean_excess_points >= 0.0);
        let empty = measure_range_queries(built.index.as_ref(), &[]);
        assert_eq!(empty.queries, 0);
    }

    #[test]
    fn point_measurement_hits_indexed_points() {
        let points = generate_dataset(Region::Japan, 2_000);
        let built = build_index(IndexKind::Base, &points, &[], 64);
        let probes = sample_point_queries(&points, 200, 1);
        let m = measure_point_queries(built.index.as_ref(), &probes);
        assert_eq!(m.queries, 200);
        assert_eq!(m.hit_rate, 1.0);
        assert!(m.mean_latency_ns > 0.0);
    }

    #[test]
    fn insert_measurement_counts_supported_inserts_only() {
        let points = generate_dataset(Region::CaliNev, 1_000);
        let queries = generate_queries(Region::CaliNev, 20, 0.001);
        let mut flood = build_index(IndexKind::Flood, &points, &queries, 64);
        let extra = generate_dataset(Region::CaliNev, 200);
        let m = measure_inserts(flood.index.as_mut(), &extra);
        assert_eq!(m.inserts, 200);
        assert!(m.mean_latency_ns > 0.0);

        // QUASII rejects inserts: the measurement reports zero successes.
        let mut quasii = build_index(IndexKind::Quasii, &points, &queries, 64);
        let m = measure_inserts(quasii.index.as_mut(), &extra);
        assert_eq!(m.inserts, 0);
    }

    #[test]
    fn batch_measurement_is_equivalent_across_strategies_and_shares_pages() {
        use wazi_workload::generate_mixed_batch;
        let points = generate_dataset(Region::NewYork, 4_000);
        let queries = generate_queries(Region::NewYork, 100, 0.001);
        let built = build_index(IndexKind::Wazi, &points, &queries, 64);
        let batch = generate_mixed_batch(Region::NewYork, 200, 0.001, 21);

        let sequential =
            measure_query_batch(built.index.as_ref(), &batch, BatchStrategy::Sequential);
        let fused = measure_query_batch(built.index.as_ref(), &batch, BatchStrategy::Fused);
        assert_eq!(sequential.queries, 200);
        assert_eq!(sequential.fused_queries, 0);
        assert!(fused.fused_queries > 0);
        assert_eq!(sequential.total_results, fused.total_results);
        assert_eq!(sequential.totals.results, fused.totals.results);
        assert!(
            fused.totals.pages_scanned < sequential.totals.pages_scanned,
            "fused {} pages vs sequential {}",
            fused.totals.pages_scanned,
            sequential.totals.pages_scanned
        );
    }

    #[test]
    fn auto_batches_surface_their_decisions() {
        use wazi_workload::generate_mixed_batch;
        let points = generate_dataset(Region::NewYork, 4_000);
        let queries = generate_queries(Region::NewYork, 100, 0.001);
        let built = build_index(IndexKind::Wazi, &points, &queries, 64);
        let batch = generate_mixed_batch(Region::NewYork, 200, 0.001, 21);
        let auto = measure_query_batch(built.index.as_ref(), &batch, BatchStrategy::Auto);
        assert!(auto.decisions.range.is_some(), "range partition decided");
        let fixed = measure_query_batch(built.index.as_ref(), &batch, BatchStrategy::Fused);
        assert_eq!(fixed.decisions.iter().count(), 0);
        assert_eq!(auto.total_results, fixed.total_results);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(500.0), "500 ns");
        assert_eq!(format_ns(2_500.0), "2.50 us");
        assert_eq!(format_ns(3_000_000.0), "3.00 ms");
        assert_eq!(format_ns(1.5e9), "1.50 s");
    }
}
