//! The retrieval-cost model of Section 4 (Eqs. 1, 2 and 5).
//!
//! The retrieval cost of a range query on a single-level Z-index is the
//! number of points compared against the query box during the scanning
//! phase: every point of a quadrant overlapped by the query is compared,
//! while quadrants that lie between the query's end quadrants in curve order
//! but do not overlap the query only contribute a fraction `α` of their
//! points (they are skipped after a bounding-box comparison, or nearly for
//! free when look-ahead pointers are enabled).
//!
//! The greedy construction (Algorithm 3) evaluates this cost for `κ`
//! candidate split points and both cell orderings, with quadrant
//! cardinalities either counted exactly or estimated by an RFDE model.

use wazi_density::Rfde;
use wazi_geom::{CellOrdering, Point, Quadrant, QueryCase, Rect};

/// Per-quadrant point cardinalities `n_A, n_B, n_C, n_D` for a candidate
/// split, indexed by [`Quadrant::label_index`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadrantCounts {
    counts: [f64; 4],
}

impl QuadrantCounts {
    /// Builds counts from explicit per-quadrant values (label order
    /// `A, B, C, D`).
    pub fn from_counts(counts: [f64; 4]) -> Self {
        Self { counts }
    }

    /// Counts the cell's points exactly against the candidate split.
    pub fn exact(points: &[Point], split: &Point) -> Self {
        let mut counts = [0.0f64; 4];
        for p in points {
            counts[Quadrant::of(p, split).label_index()] += 1.0;
        }
        Self { counts }
    }

    /// Estimates the counts with an RFDE model fitted on the full dataset.
    /// `cell` is the region of the cell being split; quadrant regions are
    /// clipped to it so the estimates refer to the cell's own points.
    pub fn estimated(rfde: &Rfde, cell: &Rect, split: &Point) -> Self {
        let mut counts = [0.0f64; 4];
        for q in Quadrant::ALL {
            let region = q.region(cell, split);
            counts[q.label_index()] = rfde.estimate_count(&region).max(0.0);
        }
        Self { counts }
    }

    /// Cardinality of one quadrant.
    #[inline]
    pub fn get(&self, q: Quadrant) -> f64 {
        self.counts[q.label_index()]
    }

    /// Total cardinality across quadrants.
    #[inline]
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }
}

/// Retrieval cost of a single query under a candidate `(split, ordering)`
/// (one `cost_X(R | x, y; o)` term of Eqs. 1 and 2, with the lower levels
/// approximated by `n_X` as in Eq. 5).
pub fn query_cost(
    query: &Rect,
    split: &Point,
    ordering: CellOrdering,
    counts: &QuadrantCounts,
    alpha: f64,
) -> f64 {
    let case = QueryCase::classify(query, split);
    if case.is_contained() {
        // δ_{R ∈ XX} n_X: the greedy upper bound for the recursion into the
        // child that wholly contains the query.
        return counts.get(case.bl);
    }
    let curve = ordering.curve();
    let start = ordering.position(case.bl);
    let end = ordering.position(case.tr);
    debug_assert!(start <= end, "monotone orderings visit BL before TR");
    let overlapped = case.overlapped();
    let mut cost = 0.0;
    for &quadrant in &curve[start..=end] {
        let n = counts.get(quadrant);
        if overlapped.contains(&quadrant) {
            cost += n;
        } else {
            // A quadrant scanned over but not overlapping the query: its
            // leaves are skipped after bounding-box comparisons, modelled by
            // the skip-cost constant α (Section 4.2 / Section 5.2).
            cost += alpha * n;
        }
    }
    cost
}

/// Total retrieval cost `C_X(Q | x, y; o)` of a workload under a candidate
/// split and ordering (Eq. 5).
pub fn workload_cost(
    queries: &[Rect],
    split: &Point,
    ordering: CellOrdering,
    counts: &QuadrantCounts,
    alpha: f64,
) -> f64 {
    queries
        .iter()
        .map(|q| query_cost(q, split, ordering, counts, alpha))
        .sum()
}

/// Evaluates both orderings for a candidate split and returns the cheaper
/// one together with its cost (the inner minimisation of Line 3 of
/// Algorithm 3).
pub fn best_ordering(
    queries: &[Rect],
    split: &Point,
    counts: &QuadrantCounts,
    alpha: f64,
) -> (CellOrdering, f64) {
    let mut best = (CellOrdering::Abcd, f64::INFINITY);
    for ordering in CellOrdering::ALL {
        let cost = workload_cost(queries, split, ordering, counts, alpha);
        if cost < best.1 {
            best = (ordering, cost);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPLIT: Point = Point::new(0.5, 0.5);

    fn counts() -> QuadrantCounts {
        // n_A = 10, n_B = 20, n_C = 30, n_D = 40
        QuadrantCounts::from_counts([10.0, 20.0, 30.0, 40.0])
    }

    #[test]
    fn exact_counts_match_partition() {
        let points = vec![
            Point::new(0.1, 0.1), // A
            Point::new(0.9, 0.1), // B
            Point::new(0.9, 0.2), // B
            Point::new(0.1, 0.9), // C
            Point::new(0.9, 0.9), // D
            Point::new(0.5, 0.5), // boundary -> A
        ];
        let c = QuadrantCounts::exact(&points, &SPLIT);
        assert_eq!(c.get(Quadrant::A), 2.0);
        assert_eq!(c.get(Quadrant::B), 2.0);
        assert_eq!(c.get(Quadrant::C), 1.0);
        assert_eq!(c.get(Quadrant::D), 1.0);
        assert_eq!(c.total(), 6.0);
    }

    #[test]
    fn contained_query_costs_its_quadrant() {
        // Query wholly inside D.
        let q = Rect::from_coords(0.6, 0.6, 0.9, 0.9);
        let cost = query_cost(&q, &SPLIT, CellOrdering::Abcd, &counts(), 0.1);
        assert_eq!(cost, 40.0);
        // Same under the alternative ordering: containment cost is
        // ordering-independent.
        let cost = query_cost(&q, &SPLIT, CellOrdering::Acbd, &counts(), 0.1);
        assert_eq!(cost, 40.0);
    }

    #[test]
    fn full_span_costs_everything_under_both_orderings() {
        // The δ_{R ∈ AD} case of Eqs. 1 and 2.
        let q = Rect::from_coords(0.1, 0.1, 0.9, 0.9);
        for ordering in CellOrdering::ALL {
            let cost = query_cost(&q, &SPLIT, ordering, &counts(), 0.1);
            assert_eq!(cost, 100.0);
        }
    }

    #[test]
    fn left_half_span_matches_equation_one_and_two() {
        // Query spanning A and C (the Figure 1b situation).
        let q = Rect::from_coords(0.1, 0.1, 0.4, 0.9);
        let alpha = 0.1;
        // abcd (Eq. 1): n_A + α n_B + n_C = 10 + 2 + 30 = 42.
        let abcd = query_cost(&q, &SPLIT, CellOrdering::Abcd, &counts(), alpha);
        assert!((abcd - 42.0).abs() < 1e-12);
        // acbd (Eq. 2): A and C adjacent, no skipped quadrant: 10 + 30 = 40.
        let acbd = query_cost(&q, &SPLIT, CellOrdering::Acbd, &counts(), alpha);
        assert!((acbd - 40.0).abs() < 1e-12);
    }

    #[test]
    fn bottom_half_span_swaps_between_orderings() {
        // Query spanning A and B.
        let q = Rect::from_coords(0.1, 0.1, 0.9, 0.4);
        let alpha = 0.5;
        // abcd: adjacent, 10 + 20 = 30.
        assert_eq!(
            query_cost(&q, &SPLIT, CellOrdering::Abcd, &counts(), alpha),
            30.0
        );
        // acbd: C sits between A and B in curve order: 10 + 0.5*30 + 20 = 45.
        assert_eq!(
            query_cost(&q, &SPLIT, CellOrdering::Acbd, &counts(), alpha),
            45.0
        );
    }

    #[test]
    fn right_half_and_top_half_spans() {
        let alpha = 0.0;
        // B to D (right half): abcd skips C, acbd is adjacent.
        let q = Rect::from_coords(0.6, 0.1, 0.9, 0.9);
        assert_eq!(
            query_cost(&q, &SPLIT, CellOrdering::Abcd, &counts(), alpha),
            60.0
        );
        assert_eq!(
            query_cost(&q, &SPLIT, CellOrdering::Acbd, &counts(), alpha),
            60.0
        );
        // C to D (top half): adjacent under abcd, skips B under acbd.
        let q = Rect::from_coords(0.1, 0.6, 0.9, 0.9);
        assert_eq!(
            query_cost(&q, &SPLIT, CellOrdering::Abcd, &counts(), alpha),
            70.0
        );
        assert_eq!(
            query_cost(&q, &SPLIT, CellOrdering::Acbd, &counts(), alpha),
            70.0
        );
    }

    #[test]
    fn alpha_scales_skipped_quadrants_only() {
        let q = Rect::from_coords(0.1, 0.1, 0.4, 0.9); // spans A, C under abcd
        let cheap = query_cost(&q, &SPLIT, CellOrdering::Abcd, &counts(), 1e-5);
        let expensive = query_cost(&q, &SPLIT, CellOrdering::Abcd, &counts(), 1.0);
        assert!(cheap < expensive);
        assert!((expensive - 60.0).abs() < 1e-12); // α=1: as if B were scanned fully
        assert!((cheap - 40.0).abs() < 0.01);
    }

    #[test]
    fn workload_cost_sums_and_best_ordering_picks_minimum() {
        // A workload dominated by left-half spans prefers acbd.
        let queries = vec![
            Rect::from_coords(0.1, 0.1, 0.4, 0.9),
            Rect::from_coords(0.05, 0.2, 0.45, 0.8),
            Rect::from_coords(0.2, 0.1, 0.3, 0.7),
        ];
        let alpha = 0.5;
        let total_abcd = workload_cost(&queries, &SPLIT, CellOrdering::Abcd, &counts(), alpha);
        let total_acbd = workload_cost(&queries, &SPLIT, CellOrdering::Acbd, &counts(), alpha);
        assert!(total_acbd < total_abcd);
        let (ordering, cost) = best_ordering(&queries, &SPLIT, &counts(), alpha);
        assert_eq!(ordering, CellOrdering::Acbd);
        assert_eq!(cost, total_acbd);

        // A workload of bottom-half spans prefers abcd.
        let queries = vec![Rect::from_coords(0.1, 0.1, 0.9, 0.4)];
        let (ordering, _) = best_ordering(&queries, &SPLIT, &counts(), alpha);
        assert_eq!(ordering, CellOrdering::Abcd);
    }

    #[test]
    fn estimated_counts_are_close_to_exact_on_a_grid() {
        let mut points = Vec::new();
        for i in 0..40 {
            for j in 0..40 {
                points.push(Point::new((i as f64 + 0.5) / 40.0, (j as f64 + 0.5) / 40.0));
            }
        }
        let rfde = Rfde::fit(&points, wazi_density::RfdeConfig::default());
        let split = Point::new(0.25, 0.75);
        let exact = QuadrantCounts::exact(&points, &split);
        let estimated = QuadrantCounts::estimated(&rfde, &Rect::UNIT, &split);
        for q in Quadrant::ALL {
            let e = exact.get(q);
            let s = estimated.get(q);
            assert!(
                (e - s).abs() <= 0.1 * points.len() as f64,
                "estimate {s} too far from exact {e} for {q:?}"
            );
        }
    }
}
