//! # wazi-core
//!
//! A from-scratch Rust implementation of **WaZI**, the learned and
//! workload-aware Z-index of Pai, Mathioudakis and Wang (EDBT 2024), together
//! with the base Z-index it generalizes.
//!
//! ## What the index does
//!
//! A Z-index partitions the data space hierarchically into quaternary cells
//! and orders the cells along a space-filling curve, which induces a
//! clustered layout of leaf pages. Range queries locate the leaves containing
//! the query's bottom-left and top-right corners and scan the leaf interval
//! between them (Algorithms 1 and 2 of the paper).
//!
//! WaZI generalizes the base index in two ways (Section 4):
//!
//! * the split point of every cell may be placed anywhere (not just at the
//!   data medians), and
//! * the child ordering of every cell may be `abcd` or `acbd`, both of which
//!   preserve dominance monotonicity.
//!
//! Both choices are made per cell by greedily minimising a retrieval-cost
//! function (Eq. 5) evaluated on an anticipated range-query workload, with
//! point cardinalities estimated by a Random Forest Density Estimation model.
//! A look-ahead pointer mechanism (Section 5) lets range queries skip runs of
//! irrelevant leaf pages.
//!
//! ## Quick start
//!
//! ```
//! use wazi_core::{SpatialIndex, ZIndex};
//! use wazi_geom::{Point, Rect};
//! use wazi_storage::ExecStats;
//!
//! // A small clustered dataset and an anticipated query workload.
//! let points: Vec<Point> = (0..5_000)
//!     .map(|i| Point::new((i % 100) as f64 / 100.0, (i / 100) as f64 / 50.0))
//!     .collect();
//! let workload: Vec<Rect> = (0..50)
//!     .map(|i| Rect::query_box(&Rect::UNIT, Point::new(0.2, 0.3 + i as f64 / 500.0), 0.001, 1.0))
//!     .collect();
//!
//! let index = ZIndex::build_wazi(points, &workload);
//! let mut stats = ExecStats::default();
//! let result = index.range_query(&workload[0], &mut stats);
//! assert_eq!(result.len() as u64, stats.results);
//! ```
//!
//! ## Batch execution through the query engine
//!
//! On top of the [`SpatialIndex`] trait sits the typed query-plan engine
//! (the [`engine`] module): [`Query`] plans executed by a [`QueryEngine`],
//! one at a time or as batches. The fused strategies partition a batch by
//! plan type and route each partition through the index's fused kernels,
//! so pages relevant to several co-located queries are fetched once per
//! batch — with outputs and per-query work counters identical to the
//! sequential loop by construction (see `docs/ENGINE.md` at the repository
//! root for the full pipeline guide):
//!
//! ```
//! use wazi_core::{BatchStrategy, Query, QueryEngine, QueryOutput, SpatialIndex, ZIndex};
//! use wazi_geom::{Point, Rect};
//!
//! let points: Vec<Point> = (0..2_000)
//!     .map(|i| Point::new((i % 50) as f64 / 50.0, (i / 50) as f64 / 40.0))
//!     .collect();
//! let index = ZIndex::build_base(points);
//!
//! // A mixed batch: overlapping range counts, a point probe, a kNN plan.
//! let batch = vec![
//!     Query::range_count(Rect::from_coords(0.10, 0.10, 0.45, 0.45)),
//!     Query::range_count(Rect::from_coords(0.15, 0.12, 0.50, 0.48)),
//!     Query::point(Point::new(0.5, 0.5)),
//!     Query::knn(Point::new(0.2, 0.2), 5),
//! ];
//!
//! let sequential = QueryEngine::new(&index)
//!     .with_strategy(BatchStrategy::Sequential)
//!     .execute_batch(&batch)
//!     .unwrap();
//! let fused = QueryEngine::new(&index)
//!     .with_strategy(BatchStrategy::Fused)
//!     .execute_batch(&batch)
//!     .unwrap();
//!
//! // Fusion changes the physical schedule, never the answers.
//! for (a, b) in fused.reports.iter().zip(&sequential.reports) {
//!     assert_eq!(a.output, b.output);
//! }
//! assert_eq!(fused.fused_queries, 2); // both range plans shared one sweep
//! assert!(matches!(fused.reports[3].output, QueryOutput::Neighbors(ref n) if n.len() == 5));
//!
//! // The engine's default is `BatchStrategy::Auto`: the cost model picks
//! // the schedule per partition — never changing results, only cost.
//! let auto = QueryEngine::new(&index).execute_batch(&batch).unwrap();
//! for (a, b) in auto.reports.iter().zip(&sequential.reports) {
//!     assert_eq!(a.output, b.output);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod config;
pub mod cost;
pub mod engine;
mod index;
mod lookahead;
mod node;
mod zindex;

pub use build::{BuildReport, BuildStrategy, ZIndexBuilder};
pub use config::{DensityMode, ZIndexConfig};
pub use engine::{
    catch_execution_panic, decide_knn_strategy, decide_point_strategy, decide_range_strategy,
    group_knn_plans, merge_shard_responses, panic_message, plan_shard_bounds,
    plan_shard_bounds_weighted, run_full_sweep, run_knn_batch, run_point_batch,
    run_point_batch_sharded, BatchProjection, BatchReport, BatchStrategy, CalibrationTable,
    ChosenStrategy, CostConstants, CostEstimate, EngineError, KernelClass, KnnBatchResponse,
    PartitionDecision, PointBatchKernel, PointBatchResponse, Query, QueryEngine, QueryOutput,
    QueryReport, RangeBatchKernel, RangeBatchOutput, RangeBatchRequest, RangeBatchResponse,
    RangeBatchStats, RangeMode, ShardBounds, ShardedRangeBatchKernel, Snapshot, SnapshotSource,
    StrategyDecisions, SweepInterval, VersionStats, VersionedIndex, WriteOp, WriteReceipt,
};
#[cfg(feature = "fault-injection")]
pub use engine::{WriteFault, WriteFaultPlan, WritePhase};
pub use index::{IndexError, SpatialIndex};
pub use node::{Leaf, Lookahead, SkipCriterion};
pub use zindex::ZIndex;

// Re-export the geometry the public API speaks in, so downstream crates can
// depend on `wazi-core` alone for simple uses.
pub use wazi_geom::{CellOrdering, Point, Quadrant, Rect};
pub use wazi_storage::{ExecStats, StatsSummary};
