//! Construction of the look-ahead pointers (Algorithm 4, Section 5.2).

use crate::node::{Leaf, Lookahead, SkipCriterion, LOOKAHEAD_END};

/// Returns `true` when `candidate` improves on `base` for the given
/// criterion, i.e. a query disqualifying `base` under that criterion is *not*
/// guaranteed to also disqualify `candidate`.
///
/// For `Below` this means the candidate's top edge is strictly higher than
/// the base's; the other criteria are symmetric.
#[inline]
fn improves(criterion: SkipCriterion, candidate: &Leaf, base: &Leaf) -> bool {
    let c = candidate.skip_rect();
    let b = base.skip_rect();
    match criterion {
        SkipCriterion::Below => c.hi.y > b.hi.y,
        SkipCriterion::Above => c.lo.y < b.lo.y,
        SkipCriterion::Left => c.hi.x > b.hi.x,
        SkipCriterion::Right => c.lo.x < b.lo.x,
    }
}

/// Builds the four look-ahead pointers of every leaf.
///
/// Leaves are processed in reverse leaf-list order; each pointer starts at
/// the plain `next` pointer and hops along the already-built pointers of the
/// suffix until a leaf that improves the criterion is found (Lines 2–6 of
/// Algorithm 4). The pointer of the last leaf — and any pointer that runs off
/// the end of the list — is the [`LOOKAHEAD_END`] sentinel ("dummy page").
pub(crate) fn build_lookahead(leaves: &mut [Leaf]) {
    let n = leaves.len();
    for i in (0..n).rev() {
        let mut lookahead = Lookahead::default();
        for criterion in SkipCriterion::ALL {
            let mut ptr = (i + 1) as u32;
            while (ptr as usize) < n && !improves(criterion, &leaves[ptr as usize], &leaves[i]) {
                ptr = leaves[ptr as usize]
                    .lookahead
                    .expect("look-ahead of the suffix is built first")
                    .get(criterion);
            }
            lookahead.set(
                criterion,
                if (ptr as usize) < n {
                    ptr
                } else {
                    LOOKAHEAD_END
                },
            );
        }
        leaves[i].lookahead = Some(lookahead);
    }
}

/// Validates the safety invariant of the look-ahead pointers: for every leaf
/// `i` and criterion `c`, every leaf strictly between `i` and its pointer
/// target does *not* improve the criterion (and would therefore be irrelevant
/// to any query that disqualified leaf `i` under `c`).
///
/// Used by tests and exposed to integration tests through
/// [`crate::ZIndex::verify_lookahead_invariant`].
pub(crate) fn verify_invariant(leaves: &[Leaf]) -> Result<(), String> {
    let n = leaves.len();
    for (i, leaf) in leaves.iter().enumerate() {
        let Some(lookahead) = leaf.lookahead else {
            return Err(format!("leaf {i} has no look-ahead pointers"));
        };
        for criterion in SkipCriterion::ALL {
            let target = lookahead.get(criterion);
            let end = if target == LOOKAHEAD_END {
                n
            } else {
                target as usize
            };
            if end <= i {
                return Err(format!(
                    "leaf {i}: {criterion:?} pointer {end} does not move forward"
                ));
            }
            for (j, skipped) in leaves.iter().enumerate().take(end).skip(i + 1) {
                if improves(criterion, skipped, leaf) {
                    return Err(format!(
                        "leaf {i}: {criterion:?} pointer skips over leaf {j} which improves the criterion"
                    ));
                }
            }
            // Note: stopping *early* (at a leaf that does not improve the
            // criterion) is allowed — update paths deliberately degrade the
            // pointers of freshly split leaves to their plain successor,
            // which is always safe. Only skipping over an improving leaf
            // (checked above) would be a correctness bug.
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wazi_geom::Rect;
    use wazi_storage::PageId;

    /// Builds a leaf whose skip rectangle is the given box.
    fn leaf(x0: f64, y0: f64, x1: f64, y1: f64) -> Leaf {
        let rect = Rect::from_coords(x0, y0, x1, y1);
        Leaf::new(rect, rect, PageId(0), 1)
    }

    #[test]
    fn staircase_points_skip_to_the_next_higher_leaf() {
        // Three leaves of increasing height followed by a low one.
        let mut leaves = vec![
            leaf(0.0, 0.0, 0.1, 0.1),
            leaf(0.1, 0.0, 0.2, 0.1), // same height: skipped by Below chains
            leaf(0.2, 0.0, 0.3, 0.5), // higher: improves Below
            leaf(0.3, 0.0, 0.4, 0.1),
        ];
        build_lookahead(&mut leaves);
        verify_invariant(&leaves).expect("invariant");
        // Leaf 0 disqualified by Below can jump straight to leaf 2.
        assert_eq!(leaves[0].lookahead.unwrap().get(SkipCriterion::Below), 2);
        // Leaf 2's Below pointer runs off the end (no later leaf is higher).
        assert_eq!(
            leaves[2].lookahead.unwrap().get(SkipCriterion::Below),
            LOOKAHEAD_END
        );
    }

    #[test]
    fn last_leaf_points_to_the_dummy_end() {
        let mut leaves = vec![leaf(0.0, 0.0, 1.0, 1.0)];
        build_lookahead(&mut leaves);
        let la = leaves[0].lookahead.unwrap();
        for c in SkipCriterion::ALL {
            assert_eq!(la.get(c), LOOKAHEAD_END);
        }
    }

    #[test]
    fn left_and_right_criteria_follow_x_extents() {
        let mut leaves = vec![
            leaf(0.0, 0.0, 0.1, 1.0),
            leaf(0.0, 0.0, 0.05, 1.0), // narrower: does not improve Left
            leaf(0.3, 0.0, 0.5, 1.0),  // wider: improves Left
            leaf(0.1, 0.0, 0.6, 1.0),  // starts further left: improves Right for leaf 2
        ];
        build_lookahead(&mut leaves);
        verify_invariant(&leaves).expect("invariant");
        assert_eq!(leaves[0].lookahead.unwrap().get(SkipCriterion::Left), 2);
        // Right criterion improves when a later leaf starts further left;
        // leaf 1 starts at the same x as leaf 0, so it does not improve and
        // leaf 0 must not stop there... but leaf 1 has lo.x == 0.0 which is
        // not strictly smaller, so the first improving leaf does not exist.
        assert_eq!(
            leaves[0].lookahead.unwrap().get(SkipCriterion::Right),
            LOOKAHEAD_END
        );
        assert_eq!(leaves[2].lookahead.unwrap().get(SkipCriterion::Right), 3);
    }

    #[test]
    fn empty_leaves_use_degenerate_skip_rects() {
        let mut leaves = vec![
            leaf(0.0, 0.0, 0.1, 0.1),
            Leaf::new(
                Rect::from_coords(0.1, 0.0, 0.2, 0.1),
                Rect::EMPTY,
                PageId(1),
                0,
            ),
            leaf(0.2, 0.0, 0.3, 0.9),
        ];
        build_lookahead(&mut leaves);
        verify_invariant(&leaves).expect("invariant");
        // The empty leaf's degenerate rectangle never improves Below, so the
        // first leaf can skip straight past it.
        assert_eq!(leaves[0].lookahead.unwrap().get(SkipCriterion::Below), 2);
    }

    #[test]
    fn invariant_detects_corrupted_pointers() {
        let mut leaves = vec![
            leaf(0.0, 0.0, 0.1, 0.1),
            leaf(0.1, 0.0, 0.2, 0.8),
            leaf(0.2, 0.0, 0.3, 0.9),
        ];
        build_lookahead(&mut leaves);
        verify_invariant(&leaves).expect("fresh pointers are valid");
        // Corrupt: make leaf 0 skip over leaf 1, which improves Below.
        let mut la = leaves[0].lookahead.unwrap();
        la.set(SkipCriterion::Below, 2);
        leaves[0].lookahead = Some(la);
        assert!(verify_invariant(&leaves).is_err());
    }
}
