//! In-memory representation of the quaternary Z-index tree.
//!
//! The tree is stored in two arenas: internal nodes and leaves. Leaves are
//! kept in curve order, so the leaf at position `i` is the `i`-th entry of
//! the `LeafList` and its `next` pointer is simply `i + 1`. This mirrors the
//! clustered layout the paper assumes (consecutive leaves map to consecutive
//! pages).

use wazi_geom::{CellOrdering, Point, Rect};
use wazi_storage::PageId;

/// Reference to a child node in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRef {
    /// An internal node, indexed into the internal-node arena.
    Internal(u32),
    /// A leaf node, indexed into the leaf arena (curve order position).
    Leaf(u32),
}

impl NodeRef {
    /// Returns the leaf index if this reference points to a leaf.
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    pub fn as_leaf(self) -> Option<u32> {
        match self {
            NodeRef::Leaf(i) => Some(i),
            NodeRef::Internal(_) => None,
        }
    }
}

/// An internal node: a split point, a child ordering and four children in
/// curve order (position 0 is visited first by the curve).
#[derive(Debug, Clone)]
pub struct InternalNode {
    /// The region of the data space covered by this node's cell.
    pub region: Rect,
    /// Split point `h = (x, y)` partitioning the cell into four quadrants.
    pub split: Point,
    /// Ordering `o` of the four child cells.
    pub ordering: CellOrdering,
    /// Children in curve order.
    pub children: [NodeRef; 4],
    /// Number of points stored below this node (maintained by updates).
    pub count: usize,
}

impl InternalNode {
    /// The child the point-query traversal descends into (Lines 4–9 of
    /// Algorithm 1).
    #[inline]
    pub fn child_for(&self, p: &Point) -> NodeRef {
        self.children[self.ordering.child_of(p, &self.split)]
    }
}

/// The four irrelevancy criteria of the skipping mechanism (Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum SkipCriterion {
    /// The leaf lies entirely below the query (`TR(P).y < BL(R).y`).
    Below = 0,
    /// The leaf lies entirely above the query (`BL(P).y > TR(R).y`).
    Above = 1,
    /// The leaf lies entirely to the left of the query (`TR(P).x < BL(R).x`).
    Left = 2,
    /// The leaf lies entirely to the right of the query (`BL(P).x > TR(R).x`).
    Right = 3,
}

impl SkipCriterion {
    /// All four criteria in storage order.
    pub const ALL: [SkipCriterion; 4] = [
        SkipCriterion::Below,
        SkipCriterion::Above,
        SkipCriterion::Left,
        SkipCriterion::Right,
    ];
}

/// Per-leaf look-ahead pointers, one per irrelevancy criterion. The value is
/// a leaf index; `u32::MAX` is the "dummy page" sentinel marking the end of
/// the leaf list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookahead {
    pointers: [u32; 4],
}

/// Sentinel marking the end of the leaf list for look-ahead pointers.
pub const LOOKAHEAD_END: u32 = u32::MAX;

impl Default for Lookahead {
    fn default() -> Self {
        Self {
            pointers: [LOOKAHEAD_END; 4],
        }
    }
}

impl Lookahead {
    /// Pointer for one criterion.
    #[inline]
    pub fn get(&self, criterion: SkipCriterion) -> u32 {
        self.pointers[criterion as usize]
    }

    /// Sets the pointer for one criterion.
    #[inline]
    pub fn set(&mut self, criterion: SkipCriterion, target: u32) {
        self.pointers[criterion as usize] = target;
    }
}

/// A leaf node of the Z-index.
#[derive(Debug, Clone)]
pub struct Leaf {
    /// The cell region assigned to this leaf by the hierarchical
    /// partitioning (used to route point queries and updates).
    pub region: Rect,
    /// Tight bounding box of the points stored in the leaf's page; this is
    /// the `bbs` compared against range queries in the scanning phase.
    pub bbox: Rect,
    /// Identifier of the clustered page storing the leaf's points.
    pub page: PageId,
    /// Number of points stored in the page.
    pub count: usize,
    /// Look-ahead pointers (Section 5); `None` until built.
    pub lookahead: Option<Lookahead>,
}

impl Leaf {
    /// Creates a leaf over a page.
    pub fn new(region: Rect, bbox: Rect, page: PageId, count: usize) -> Self {
        Self {
            region,
            bbox,
            page,
            count,
            lookahead: None,
        }
    }

    /// The rectangle used by the skipping machinery for this leaf: the cell
    /// region, i.e. the "bounding rectangle for the area spanned by the
    /// leaf" of Section 3.
    ///
    /// Using the (immutable) cell region rather than the tight point
    /// bounding box keeps the look-ahead pointers valid under inserts: a
    /// point inserted inside the data space always falls inside its leaf's
    /// region, so the geometry the pointers were built against never grows.
    #[inline]
    pub fn skip_rect(&self) -> Rect {
        self.region
    }

    /// Returns the skip criteria under which this leaf is irrelevant to
    /// `query`, i.e. the criteria whose look-ahead pointer may be followed.
    pub fn irrelevancy_criteria(&self, query: &Rect) -> impl Iterator<Item = SkipCriterion> {
        let rect = self.skip_rect();
        let below = rect.hi.y < query.lo.y;
        let above = rect.lo.y > query.hi.y;
        let left = rect.hi.x < query.lo.x;
        let right = rect.lo.x > query.hi.x;
        [
            (SkipCriterion::Below, below),
            (SkipCriterion::Above, above),
            (SkipCriterion::Left, left),
            (SkipCriterion::Right, right),
        ]
        .into_iter()
        .filter_map(|(c, active)| active.then_some(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_node_routes_by_ordering() {
        let node = InternalNode {
            region: Rect::UNIT,
            split: Point::new(0.5, 0.5),
            ordering: CellOrdering::Acbd,
            children: [
                NodeRef::Leaf(0),
                NodeRef::Leaf(1),
                NodeRef::Leaf(2),
                NodeRef::Leaf(3),
            ],
            count: 0,
        };
        // acbd: curve position 1 is the top-left quadrant.
        assert_eq!(node.child_for(&Point::new(0.2, 0.8)), NodeRef::Leaf(1));
        assert_eq!(node.child_for(&Point::new(0.8, 0.2)), NodeRef::Leaf(2));
        assert_eq!(node.child_for(&Point::new(0.2, 0.2)), NodeRef::Leaf(0));
        assert_eq!(node.child_for(&Point::new(0.8, 0.8)), NodeRef::Leaf(3));
    }

    #[test]
    fn lookahead_defaults_to_end_sentinel() {
        let mut la = Lookahead::default();
        for c in SkipCriterion::ALL {
            assert_eq!(la.get(c), LOOKAHEAD_END);
        }
        la.set(SkipCriterion::Left, 7);
        assert_eq!(la.get(SkipCriterion::Left), 7);
        assert_eq!(la.get(SkipCriterion::Right), LOOKAHEAD_END);
    }

    #[test]
    fn leaf_skip_rect_is_the_cell_region() {
        let empty = Leaf::new(
            Rect::from_coords(0.2, 0.2, 0.4, 0.4),
            Rect::EMPTY,
            PageId(0),
            0,
        );
        assert_eq!(empty.skip_rect(), Rect::from_coords(0.2, 0.2, 0.4, 0.4));

        let full = Leaf::new(
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            Rect::from_coords(0.3, 0.3, 0.6, 0.6),
            PageId(1),
            5,
        );
        assert_eq!(full.skip_rect(), Rect::UNIT);
    }

    #[test]
    fn irrelevancy_criteria_match_relative_position() {
        let leaf = Leaf::new(
            Rect::from_coords(0.0, 0.0, 0.2, 0.2),
            Rect::from_coords(0.05, 0.05, 0.15, 0.15),
            PageId(0),
            3,
        );
        // Query far to the upper-right: leaf is both below and to the left.
        let query = Rect::from_coords(0.5, 0.5, 0.9, 0.9);
        let criteria: Vec<_> = leaf.irrelevancy_criteria(&query).collect();
        assert!(criteria.contains(&SkipCriterion::Below));
        assert!(criteria.contains(&SkipCriterion::Left));
        assert!(!criteria.contains(&SkipCriterion::Above));
        assert!(!criteria.contains(&SkipCriterion::Right));

        // Overlapping query: no criterion applies.
        let query = Rect::from_coords(0.1, 0.1, 0.9, 0.9);
        assert_eq!(leaf.irrelevancy_criteria(&query).count(), 0);
    }

    #[test]
    fn node_ref_leaf_extraction() {
        assert_eq!(NodeRef::Leaf(3).as_leaf(), Some(3));
        assert_eq!(NodeRef::Internal(3).as_leaf(), None);
    }
}
