//! Configuration of Z-index construction.

use wazi_density::RfdeConfig;

/// How the greedy builder estimates the number of data points inside a
/// candidate quadrant when evaluating the retrieval cost (Eq. 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DensityMode {
    /// Count the points of the cell exactly (no learned component). This is
    /// the "non-learned" ablation of the construction procedure.
    Exact,
    /// Estimate counts with a Random Forest Density Estimation model fitted
    /// on the full dataset, as described in Section 4.3 of the paper.
    Rfde(RfdeConfig),
}

impl Default for DensityMode {
    fn default() -> Self {
        DensityMode::Rfde(RfdeConfig::default())
    }
}

/// Construction parameters shared by the base Z-index and WaZI.
#[derive(Debug, Clone, Copy)]
pub struct ZIndexConfig {
    /// Leaf capacity `L`: a cell stops splitting once it holds fewer than
    /// `leaf_capacity` points. The paper's default is 256.
    pub leaf_capacity: usize,
    /// Number of candidate split points `κ` sampled uniformly from each cell
    /// by the greedy builder (Line 2 of Algorithm 3).
    pub kappa: usize,
    /// Skip-cost constant `α` of the retrieval-cost function. The paper uses
    /// a value `< 1` for the plain cost model and `1e-5` when the index is
    /// built together with the look-ahead skipping mechanism (Section 5.2).
    pub alpha: f64,
    /// Whether look-ahead pointers are constructed and used at query time.
    pub skipping: bool,
    /// How quadrant cardinalities are estimated during construction.
    pub density: DensityMode,
    /// Maximum tree depth, a guard against adversarial or degenerate data.
    pub max_depth: usize,
    /// Seed for the deterministic pseudo-random sampling of candidate splits.
    pub seed: u64,
}

impl Default for ZIndexConfig {
    fn default() -> Self {
        Self {
            leaf_capacity: 256,
            kappa: 16,
            alpha: 1e-5,
            skipping: true,
            density: DensityMode::default(),
            max_depth: 40,
            seed: 0xC0FFEE,
        }
    }
}

impl ZIndexConfig {
    /// Configuration of the paper's WaZI index: adaptive partitioning and
    /// ordering, RFDE cardinality estimation, look-ahead skipping and
    /// `α = 1e-5`.
    pub fn wazi() -> Self {
        Self::default()
    }

    /// WaZI without the skipping mechanism (`WaZI−SK` in the ablation study,
    /// Section 6.9). The skip-cost constant reverts to a moderate `α < 1`
    /// because skipped leaves then cost a bounding-box comparison each.
    pub fn wazi_without_skipping() -> Self {
        Self {
            skipping: false,
            alpha: 0.1,
            ..Self::default()
        }
    }

    /// The base Z-index (median splits, fixed `abcd` ordering, no skipping).
    pub fn base() -> Self {
        Self {
            skipping: false,
            alpha: 0.1,
            ..Self::default()
        }
    }

    /// The base Z-index augmented with look-ahead pointers (`Base+SK` in the
    /// ablation study).
    pub fn base_with_skipping() -> Self {
        Self {
            skipping: true,
            ..Self::default()
        }
    }

    /// Overrides the leaf capacity.
    pub fn with_leaf_capacity(mut self, leaf_capacity: usize) -> Self {
        self.leaf_capacity = leaf_capacity;
        self
    }

    /// Overrides the number of sampled candidate splits.
    pub fn with_kappa(mut self, kappa: usize) -> Self {
        self.kappa = kappa;
        self
    }

    /// Overrides the skip-cost constant `α`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Overrides the density-estimation mode.
    pub fn with_density(mut self, density: DensityMode) -> Self {
        self.density = density;
        self
    }

    /// Overrides the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the configuration, returning a human-readable error for
    /// nonsensical settings.
    pub fn validate(&self) -> Result<(), String> {
        if self.leaf_capacity == 0 {
            return Err("leaf_capacity must be positive".into());
        }
        if self.kappa == 0 {
            return Err("kappa must be positive".into());
        }
        if !(self.alpha >= 0.0 && self.alpha <= 1.0) {
            return Err(format!("alpha must lie in [0, 1], got {}", self.alpha));
        }
        if self.max_depth == 0 {
            return Err("max_depth must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid_and_distinct() {
        for cfg in [
            ZIndexConfig::wazi(),
            ZIndexConfig::wazi_without_skipping(),
            ZIndexConfig::base(),
            ZIndexConfig::base_with_skipping(),
        ] {
            cfg.validate().expect("preset must validate");
        }
        assert!(ZIndexConfig::wazi().skipping);
        assert!(!ZIndexConfig::wazi_without_skipping().skipping);
        assert!(ZIndexConfig::base_with_skipping().skipping);
        assert!(ZIndexConfig::wazi().alpha < ZIndexConfig::wazi_without_skipping().alpha);
    }

    #[test]
    fn builder_style_overrides() {
        let cfg = ZIndexConfig::wazi()
            .with_leaf_capacity(64)
            .with_kappa(4)
            .with_alpha(0.5)
            .with_seed(42)
            .with_density(DensityMode::Exact);
        assert_eq!(cfg.leaf_capacity, 64);
        assert_eq!(cfg.kappa, 4);
        assert_eq!(cfg.alpha, 0.5);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.density, DensityMode::Exact);
        cfg.validate().expect("must stay valid");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(ZIndexConfig::wazi()
            .with_leaf_capacity(0)
            .validate()
            .is_err());
        assert!(ZIndexConfig::wazi().with_kappa(0).validate().is_err());
        assert!(ZIndexConfig::wazi().with_alpha(2.0).validate().is_err());
        assert!(ZIndexConfig::wazi().with_alpha(-0.1).validate().is_err());
        let mut cfg = ZIndexConfig::wazi();
        cfg.max_depth = 0;
        assert!(cfg.validate().is_err());
    }
}
