//! The fused point-probe batch seam: many exact-match probes answered in
//! one leaf-grouped pass over the index.
//!
//! A sequential batch of point probes pays one full projection (Algorithm-1
//! descent, grid lookup, code search — whatever the index's routing
//! structure is) *and one page visit per probe*, even when many probes land
//! in the same page: a skewed workload hammering a hot key range fetches the
//! same hot page over and over. The batched path exploits what the probes
//! share. The engine maps every probe to the address of its owning page
//! ([`PointBatchKernel::locate_probes`]), groups the probes by that address
//! in **one sorted pass**, and hands each group to the kernel
//! ([`PointBatchKernel::probe_page`]), which fetches the page once and
//! answers every probe of the group against it.
//!
//! The contract mirrors the fused range kernel's: answers and per-probe
//! counters are exactly those of the sequential
//! [`crate::SpatialIndex::point_query`] loop — every probe still pays its
//! own projection work and its own point comparisons — while the physical
//! page visit is charged once per *group* to the response's shared stats.
//! Fusion shares work; it never adds any.
//!
//! # Worked example
//!
//! Duplicate probes (the hot-key case) collapse onto one page visit:
//!
//! ```
//! use wazi_core::{run_point_batch, SpatialIndex, ZIndex};
//! use wazi_geom::Point;
//!
//! let points: Vec<Point> = (0..1_000)
//!     .map(|i| Point::new((i % 40) as f64 / 40.0, (i / 40) as f64 / 25.0))
//!     .collect();
//! let index = ZIndex::build_base(points.clone());
//! let kernel = index.point_batch_kernel().expect("the Z-index probes in batches");
//!
//! // Four probes, but only two distinct owning pages at most: the batch
//! // visits each owning page once, however many probes share it.
//! let probes = vec![points[3], points[3], points[3], points[700]];
//! let response = run_point_batch(kernel, &probes);
//! assert_eq!(response.found, vec![true, true, true, true]);
//! assert!(response.shared.pages_scanned <= 2);
//! // Every probe still pays its own comparisons, like the sequential loop.
//! assert!(response.per_query.iter().all(|s| s.points_scanned >= 1));
//! ```

use std::time::Instant;
use wazi_geom::Point;
use wazi_storage::ExecStats;

/// The kernel's answer to a point-probe batch: parallel to the probe slice.
#[derive(Debug, Clone, PartialEq)]
pub struct PointBatchResponse {
    /// Whether each probe found its point, in probe order.
    pub found: Vec<bool>,
    /// Work attributable to a single probe (its projection descent, its
    /// point comparisons, its result), charged exactly as the sequential
    /// [`crate::SpatialIndex::point_query`] charges it.
    pub per_query: Vec<ExecStats>,
    /// Work performed once on behalf of a whole probe group: the page
    /// visits of pages shared by several probes, plus the batch's grouping
    /// and phase timings.
    pub shared: ExecStats,
}

impl PointBatchResponse {
    /// A zero-work response shaped for `probes` probes: nothing found,
    /// default stats. Kernels fill it in group by group.
    pub fn zeroed(probes: usize) -> Self {
        Self {
            found: vec![false; probes],
            per_query: vec![ExecStats::default(); probes],
            shared: ExecStats::default(),
        }
    }
}

/// Fused execution of many exact-match point probes in one leaf-grouped
/// pass over the index.
///
/// # Contract
///
/// For every probe, the answer and the per-probe counters must be exactly
/// those of the sequential [`crate::SpatialIndex::point_query`] — same
/// boolean, same projection charges, same point comparisons — while the
/// physical page visit may be shared across the probes of one group and
/// charged once to [`PointBatchResponse::shared`]. The driver
/// ([`run_point_batch`]) owns the grouping; kernels only answer one page's
/// group at a time.
///
/// The trait requires `Sync` because probe groups are disjoint by
/// construction — no two groups touch the same response slot — so the
/// sharded driver ([`run_point_batch_sharded`]) answers runs of groups on
/// concurrent worker threads against the same kernel.
pub trait PointBatchKernel: Sync {
    /// Maps every probe to the address of its owning page (leaf index for
    /// the Z-index, grid column for Flood, Morton code for the sorted
    /// Z-order array), charging each probe's projection work — and nothing
    /// else — to its `per_query` slot.
    fn locate_probes(&self, probes: &[Point], per_query: &mut [ExecStats]) -> Vec<u64>;

    /// Answers every probe of one address group against the owning page,
    /// fetched once. `group` holds `(probe position, probe point)` pairs in
    /// input order; implementations write answers to
    /// `response.found[position]`, charge per-probe comparisons to
    /// `response.per_query[position]` and the single page visit to
    /// `response.shared`.
    fn probe_page(&self, address: u64, group: &[(usize, Point)], response: &mut PointBatchResponse);
}

/// Drives a [`PointBatchKernel`] over a whole probe batch: locate every
/// probe, group the probes by owning address in one sorted pass, and answer
/// each group with a single page visit.
///
/// Ties in the sort are broken by probe position, so duplicate probes are
/// grouped deterministically and answers are reproducible bit for bit.
/// Grouping and projection work is charged to the shared projection phase,
/// page probing to the shared scan phase (per-probe timings are folded into
/// the batch: attributing nanoseconds to individual probes would only add
/// clock noise).
pub fn run_point_batch(kernel: &dyn PointBatchKernel, probes: &[Point]) -> PointBatchResponse {
    run_point_batch_sharded(kernel, probes, 1).0
}

/// Answers every group of a contiguous, group-aligned slice of the sorted
/// probe order, one [`PointBatchKernel::probe_page`] call per group.
fn probe_group_run(
    kernel: &dyn PointBatchKernel,
    probes: &[Point],
    addresses: &[u64],
    order: &[usize],
    response: &mut PointBatchResponse,
) {
    let mut group: Vec<(usize, Point)> = Vec::new();
    let mut at = 0usize;
    while at < order.len() {
        let address = addresses[order[at]];
        group.clear();
        while at < order.len() && addresses[order[at]] == address {
            group.push((order[at], probes[order[at]]));
            at += 1;
        }
        kernel.probe_page(address, &group, response);
    }
}

/// Cuts the sorted probe order into at most `shards` contiguous,
/// probe-balanced chunks, **always at group boundaries** — a page's group is
/// never split, so each chunk's page visits and per-probe charges are
/// exactly those of the single-threaded pass over the same groups. `groups`
/// holds the half-open group ranges over the order array, in order.
fn plan_probe_chunks(
    groups: &[std::ops::Range<usize>],
    shards: usize,
) -> Vec<std::ops::Range<usize>> {
    if groups.is_empty() {
        return Vec::new();
    }
    let shards = shards.clamp(1, groups.len());
    let total = groups.last().expect("nonempty").end;
    let mut chunks = Vec::with_capacity(shards);
    let mut gi = 0usize;
    for chunk_index in 0..shards {
        if gi >= groups.len() {
            break;
        }
        let chunks_left = shards - chunk_index;
        let start = groups[gi].start;
        if chunks_left == 1 {
            chunks.push(start..total);
            break;
        }
        let target = (total - start).div_ceil(chunks_left);
        let mut end = start;
        // Take whole groups up to the fair share, leaving at least one
        // group for every chunk still to be planned.
        while gi <= groups.len() - chunks_left && end - start < target {
            end = groups[gi].end;
            gi += 1;
        }
        chunks.push(start..end);
    }
    chunks
}

/// The sharded variant of [`run_point_batch`]: the same locate-and-group
/// pass, with the sorted group list split at group boundaries into up to
/// `shards` probe-balanced chunks answered on scoped worker threads.
///
/// Groups are disjoint by construction — every response slot is written by
/// exactly one group — so chunked execution is output- and counter-identical
/// to the single-threaded pass whatever the thread scheduling: per-chunk
/// partial responses merge by slot (disjoint), shared counters sum. Chunk
/// planning depends only on the batch, never on the host, so all
/// deterministic counters are shard-count- and machine-invariant. Returns
/// the merged response and the number of chunks actually planned (1 when
/// the batch has a single group or `shards <= 1`); on a host without
/// spare parallelism the chunks are answered inline on the calling thread —
/// same chunks, same merge, no threads.
pub fn run_point_batch_sharded(
    kernel: &dyn PointBatchKernel,
    probes: &[Point],
    shards: usize,
) -> (PointBatchResponse, usize) {
    let mut response = PointBatchResponse::zeroed(probes.len());
    if probes.is_empty() {
        return (response, 1);
    }
    let projection_start = Instant::now();
    let addresses = kernel.locate_probes(probes, &mut response.per_query);
    debug_assert_eq!(addresses.len(), probes.len());
    // The one sorted pass: probe positions ordered by (owning address,
    // position) so each page's probes form one contiguous run.
    let mut order: Vec<usize> = (0..probes.len()).collect();
    order.sort_unstable_by_key(|&i| (addresses[i], i));
    // Group boundaries over the sorted order, one range per distinct page.
    let mut groups: Vec<std::ops::Range<usize>> = Vec::new();
    let mut at = 0usize;
    while at < order.len() {
        let address = addresses[order[at]];
        let start = at;
        while at < order.len() && addresses[order[at]] == address {
            at += 1;
        }
        groups.push(start..at);
    }
    let projection_ns = projection_start.elapsed().as_nanos() as u64;

    let scan_start = Instant::now();
    let chunks = plan_probe_chunks(&groups, shards.max(1));
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(chunks.len());
    if chunks.len() <= 1 || workers <= 1 {
        probe_group_run(kernel, probes, &addresses, &order, &mut response);
    } else {
        // Each worker answers a contiguous run of chunks (still contiguous
        // and group-aligned in the sorted order) into its own partial
        // response; partials merge slot-wise below.
        let per_worker = chunks.len().div_ceil(workers);
        let partials: Vec<PointBatchResponse> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .chunks(per_worker)
                .map(|run| {
                    let span = run[0].start..run[run.len() - 1].end;
                    let order = &order[span];
                    let addresses = &addresses[..];
                    scope.spawn(move || {
                        let mut partial = PointBatchResponse::zeroed(probes.len());
                        probe_group_run(kernel, probes, addresses, order, &mut partial);
                        partial
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| {
                    // Re-raise with the original payload so a probe-worker
                    // panic reaches catch_execution_panic with its message.
                    handle
                        .join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                })
                .collect()
        });
        for partial in partials {
            for (slot, found) in partial.found.iter().enumerate() {
                if *found {
                    response.found[slot] = true;
                }
            }
            for (into, from) in response.per_query.iter_mut().zip(&partial.per_query) {
                into.merge(from);
            }
            response.shared.merge(&partial.shared);
        }
    }
    response.shared.projection_ns += projection_ns;
    response.shared.scan_ns += scan_start.elapsed().as_nanos() as u64;
    (response, chunks.len().max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy kernel over ten buckets of one point each: bucket = floor(x*10).
    struct Buckets(Vec<Point>);

    impl PointBatchKernel for Buckets {
        fn locate_probes(&self, probes: &[Point], per_query: &mut [ExecStats]) -> Vec<u64> {
            probes
                .iter()
                .zip(per_query)
                .map(|(p, stats)| {
                    stats.nodes_visited += 1;
                    (p.x * 10.0).floor().clamp(0.0, 9.0) as u64
                })
                .collect()
        }

        fn probe_page(
            &self,
            address: u64,
            group: &[(usize, Point)],
            response: &mut PointBatchResponse,
        ) {
            response.shared.pages_scanned += 1;
            for &(slot, p) in group {
                response.per_query[slot].points_scanned += 1;
                if self.0[address as usize] == p {
                    response.found[slot] = true;
                    response.per_query[slot].results += 1;
                }
            }
        }
    }

    #[test]
    fn groups_share_page_visits_and_keep_probe_order() {
        let kernel = Buckets((0..10).map(|i| Point::new(i as f64 / 10.0, 0.5)).collect());
        let probes = vec![
            Point::new(0.35, 0.5), // bucket 3: miss (stored point is 0.30)
            Point::new(0.30, 0.5), // bucket 3: hit
            Point::new(0.90, 0.5), // bucket 9: hit
            Point::new(0.30, 0.5), // bucket 3 again: hit
        ];
        let response = run_point_batch(&kernel, &probes);
        assert_eq!(response.found, vec![false, true, true, true]);
        // Two distinct buckets → two page visits, not four.
        assert_eq!(response.shared.pages_scanned, 2);
        // Every probe paid its own projection and comparison.
        for stats in &response.per_query {
            assert_eq!(stats.nodes_visited, 1);
            assert_eq!(stats.points_scanned, 1);
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let kernel = Buckets(vec![Point::new(0.0, 0.0); 10]);
        let response = run_point_batch(&kernel, &[]);
        assert!(response.found.is_empty());
        assert_eq!(response.shared, ExecStats::default());
    }

    /// Sharded execution splits the sorted group list at group boundaries,
    /// so every shard count — including more shards than groups — yields
    /// the single pass's answers and counters exactly.
    #[test]
    fn sharded_probe_batches_match_the_single_pass() {
        let kernel = Buckets((0..10).map(|i| Point::new(i as f64 / 10.0, 0.5)).collect());
        let probes: Vec<Point> = (0..60)
            .map(|i| Point::new(((i * 7) % 10) as f64 / 10.0, 0.5))
            .collect();
        let (single, single_chunks) = run_point_batch_sharded(&kernel, &probes, 1);
        assert_eq!(single_chunks, 1);
        assert_eq!(single.shared.pages_scanned, 10, "one visit per bucket");
        for shards in [2usize, 3, 7, 10, 64] {
            let (sharded, chunks) = run_point_batch_sharded(&kernel, &probes, shards);
            assert!(chunks >= 1 && chunks <= shards.min(10), "{shards} shards");
            assert_eq!(sharded.found, single.found, "{shards} shards");
            assert_eq!(
                sharded.shared.pages_scanned, single.shared.pages_scanned,
                "{shards} shards: groups must never split"
            );
            for (a, b) in sharded.per_query.iter().zip(&single.per_query) {
                assert_eq!(a.points_scanned, b.points_scanned, "{shards} shards");
                assert_eq!(a.nodes_visited, b.nodes_visited, "{shards} shards");
                assert_eq!(a.results, b.results, "{shards} shards");
            }
        }
    }

    #[test]
    fn probe_chunk_planner_covers_all_groups_without_splitting() {
        let groups = vec![0..5, 5..6, 6..20, 20..21, 21..25];
        for shards in [1usize, 2, 3, 5, 9] {
            let chunks = plan_probe_chunks(&groups, shards);
            assert!(!chunks.is_empty() && chunks.len() <= shards.min(groups.len()));
            assert_eq!(chunks.first().unwrap().start, 0);
            assert_eq!(chunks.last().unwrap().end, 25);
            for pair in chunks.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "gap or overlap in {chunks:?}");
                // Every cut lands on a group boundary.
                assert!(
                    groups.iter().any(|g| g.start == pair[1].start),
                    "cut at {} splits a group",
                    pair[1].start
                );
            }
        }
        assert!(plan_probe_chunks(&[], 4).is_empty());
    }
}
