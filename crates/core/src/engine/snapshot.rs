//! Epoch-based snapshot versioning: fused reads over an immutable version
//! while a single writer publishes the next one.
//!
//! Every index in this workspace executes queries over `&self` and applies
//! updates over `&mut self` — correct, but it means a service holding an
//! `Arc<dyn SpatialIndex>` can never ingest a point. This module adds the
//! missing concurrency story without touching any index internals:
//!
//! * [`VersionedIndex<I>`] owns the *current* version of an index behind an
//!   epoch counter. Readers call [`VersionedIndex::snapshot`] and get a
//!   [`Snapshot`] — a cheap, clonable, epoch-pinned handle that implements
//!   [`SpatialIndex`], so every existing kernel (sequential, fused, Auto)
//!   runs against it unchanged.
//! * A writer calls [`VersionedIndex::apply`] with a batch of [`WriteOp`]s.
//!   The writer *forks* the current version (`I: Clone`; with `wazi-storage`'s
//!   page-level copy-on-write a fork shares all page payloads and copies
//!   only what the ops touch), mutates the private fork, and publishes it
//!   atomically as the next epoch. Readers never wait on the writer and the
//!   writer never blocks readers: the only shared lock is held for the
//!   duration of an `Arc` clone or swap.
//! * A superseded version lives until its epoch *drains* — the last
//!   [`Snapshot`] pinning it is dropped — and is then reclaimed; the
//!   [`VersionStats`] counters expose publishes and retirements so tests
//!   and the service can assert the lifecycle.
//!
//! The guarantee this buys, and which the snapshot-consistency suite pins:
//! **a snapshot never changes answers; writes change only which snapshot you
//! read.** A panic inside `apply` (even an injected one, see
//! [`WriteFaultPlan`]) discards the private fork: the published version is
//! untouched, no reader can observe a torn page, and the next `apply`
//! recovers the writer lock and proceeds.
//!
//! Indexes that reject incremental updates with
//! [`IndexError::UpdateUnsupported`] (e.g. QUASII, which only converges by
//! bulk cracking) can still be written through
//! [`VersionedIndex::with_rebuild`]: the wrapper keeps a point mirror and
//! rebuilds the whole index from it whenever an op is rejected, so the
//! version chain advances for every index kind in the evaluation.
//!
//! ```
//! use wazi_core::{SnapshotSource, SpatialIndex, VersionedIndex, WriteOp, ZIndex};
//! use wazi_geom::{Point, Rect};
//! use wazi_storage::ExecStats;
//!
//! let points: Vec<Point> = (0..500)
//!     .map(|i| Point::new((i % 25) as f64 / 25.0, (i / 25) as f64 / 20.0))
//!     .collect();
//! let versioned = VersionedIndex::new(ZIndex::build_base(points));
//!
//! let before = versioned.snapshot();
//! versioned
//!     .apply(&[WriteOp::Insert(Point::new(0.505, 0.505))])
//!     .unwrap();
//! let after = versioned.snapshot();
//!
//! // The pinned snapshot still answers from its epoch; only the new
//! // snapshot sees the write.
//! let mut stats = ExecStats::default();
//! assert!(!before.point_query(&Point::new(0.505, 0.505), &mut stats));
//! assert!(after.point_query(&Point::new(0.505, 0.505), &mut stats));
//! assert_eq!(before.epoch() + 1, after.epoch());
//! ```

use crate::engine::{PointBatchKernel, RangeBatchKernel};
use crate::index::{IndexError, SpatialIndex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use wazi_geom::{Point, Rect};
use wazi_storage::ExecStats;

/// One write operation applied through [`VersionedIndex::apply`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WriteOp {
    /// Insert a point.
    Insert(Point),
    /// Delete the first indexed point equal to the given one.
    Delete(Point),
    /// Run the index's post-batch maintenance hook
    /// ([`SpatialIndex::maintain`]).
    Maintain,
}

/// What a successful [`VersionedIndex::apply`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteReceipt {
    /// The epoch the batch was published as; snapshots taken from now on
    /// (until the next publish) carry this epoch.
    pub epoch: u64,
    /// Number of operations in the batch (inserts + deletes + maintains).
    pub ops: u64,
    /// Number of delete operations that actually removed a point.
    pub removed: u64,
    /// Whether the rebuild fallback fired at least once: some op was
    /// rejected with [`IndexError::UpdateUnsupported`] and the index was
    /// reconstructed from the point mirror instead.
    pub rebuilt: bool,
}

/// Version-lifecycle counters of a [`VersionedIndex`]
/// ([`VersionedIndex::version_stats`]). All counters start at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VersionStats {
    /// Epoch of the currently published version (the initial build is
    /// epoch 0; every successful `apply` advances it by one).
    pub current_epoch: u64,
    /// Successful publishes performed by `apply`.
    pub snapshots_published: u64,
    /// Superseded versions whose epoch has drained (their last pinned
    /// [`Snapshot`] was dropped) and whose memory is reclaimed.
    pub epochs_retired: u64,
    /// Individual write operations applied across all publishes.
    pub writes_applied: u64,
    /// Applies in which the rebuild fallback fired.
    pub rebuild_fallbacks: u64,
    /// Snapshots handed out so far.
    pub snapshots_taken: u64,
}

impl VersionStats {
    /// Versions currently alive: the published one plus superseded versions
    /// still pinned by at least one snapshot.
    pub fn live_epochs(&self) -> u64 {
        (self.snapshots_published + 1).saturating_sub(self.epochs_retired)
    }
}

#[derive(Debug, Default)]
struct Counters {
    snapshots_published: AtomicU64,
    epochs_retired: AtomicU64,
    writes_applied: AtomicU64,
    rebuild_fallbacks: AtomicU64,
    snapshots_taken: AtomicU64,
}

/// Pins one published version. Dropped when the version's last holder (the
/// publisher slot or any snapshot) goes away; if the version was superseded
/// by then, its epoch has drained and the retirement counter advances.
#[derive(Debug)]
struct EpochGuard {
    counters: Arc<Counters>,
    superseded: AtomicBool,
}

impl Drop for EpochGuard {
    fn drop(&mut self) {
        if self.superseded.load(Ordering::Acquire) {
            self.counters.epochs_retired.fetch_add(1, Ordering::Relaxed);
        }
    }
}

struct Published<I> {
    epoch: u64,
    index: Arc<I>,
    guard: Arc<EpochGuard>,
}

/// The boxed reconstruction function of a rebuild fallback.
type RebuildFn<I> = Box<dyn Fn(&[Point]) -> I + Send>;

struct RebuildPolicy<I> {
    points: Vec<Point>,
    build: RebuildFn<I>,
}

struct WriterState<I> {
    rebuild: Option<RebuildPolicy<I>>,
    applies: u64,
}

/// An immutable, epoch-pinned view of a [`VersionedIndex`].
///
/// `Snapshot` implements [`SpatialIndex`]'s whole read surface by
/// delegation — including the fused batch-kernel hooks — so a
/// [`crate::QueryEngine`] executes against it exactly as against the
/// underlying index. Cloning is two `Arc` bumps; holding a snapshot keeps
/// its version alive (and its answers frozen) however many writes are
/// published after it.
///
/// The mutating methods of the trait are refused:
/// [`SpatialIndex::insert`]/[`SpatialIndex::delete`] return
/// [`IndexError::Unsupported`] — writes go through
/// [`VersionedIndex::apply`], never through a snapshot.
#[derive(Clone)]
pub struct Snapshot {
    epoch: u64,
    index: Arc<dyn SpatialIndex>,
    _guard: Arc<EpochGuard>,
}

impl Snapshot {
    /// The epoch this snapshot pins. Two snapshots with equal epochs from
    /// the same [`VersionedIndex`] answer every query identically.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("epoch", &self.epoch)
            .field("index", &self.index.name())
            .field("len", &self.index.len())
            .finish()
    }
}

impl SpatialIndex for Snapshot {
    fn name(&self) -> &'static str {
        self.index.name()
    }
    fn len(&self) -> usize {
        self.index.len()
    }
    fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
    fn data_bounds(&self) -> Rect {
        self.index.data_bounds()
    }
    fn range_query(&self, query: &Rect, stats: &mut ExecStats) -> Vec<Point> {
        self.index.range_query(query, stats)
    }
    fn range_count(&self, query: &Rect, stats: &mut ExecStats) -> u64 {
        self.index.range_count(query, stats)
    }
    fn range_for_each(&self, query: &Rect, stats: &mut ExecStats, visit: &mut dyn FnMut(&Point)) {
        self.index.range_for_each(query, stats, visit)
    }
    fn point_query(&self, p: &Point, stats: &mut ExecStats) -> bool {
        self.index.point_query(p, stats)
    }
    fn insert(&mut self, _p: Point) -> Result<(), IndexError> {
        Err(IndexError::Unsupported("insert into an immutable snapshot"))
    }
    fn delete(&mut self, _p: &Point) -> Result<bool, IndexError> {
        Err(IndexError::Unsupported("delete from an immutable snapshot"))
    }
    fn size_bytes(&self) -> usize {
        self.index.size_bytes()
    }
    fn knn(&self, q: &Point, k: usize, stats: &mut ExecStats) -> Vec<Point> {
        self.index.knn(q, k, stats)
    }
    fn range_batch_kernel(&self) -> Option<&dyn RangeBatchKernel> {
        self.index.range_batch_kernel()
    }
    fn point_batch_kernel(&self) -> Option<&dyn PointBatchKernel> {
        self.index.point_batch_kernel()
    }
}

/// Anything that can hand out epoch-pinned snapshots and accept writes: the
/// object-safe facade `wazi-service` programs against, implemented by
/// [`VersionedIndex<I>`] for every clonable index.
pub trait SnapshotSource: Send + Sync {
    /// An epoch-pinned snapshot of the current version.
    fn snapshot(&self) -> Snapshot;
    /// Applies a batch of writes and publishes the next version. See
    /// [`VersionedIndex::apply`].
    fn apply(&self, ops: &[WriteOp]) -> Result<WriteReceipt, IndexError>;
    /// Version-lifecycle counters.
    fn version_stats(&self) -> VersionStats;
}

/// An index under epoch-based snapshot versioning. See the [module
/// docs](self) for the concurrency model and the pinned guarantee.
pub struct VersionedIndex<I> {
    current: Mutex<Published<I>>,
    writer: Mutex<WriterState<I>>,
    counters: Arc<Counters>,
    #[cfg(feature = "fault-injection")]
    faults: Mutex<Option<Arc<WriteFaultPlan>>>,
}

/// Recovers a poisoned lock: the state protected by both locks of a
/// [`VersionedIndex`] is valid at every panic point (the working fork is
/// function-local and the point mirror is committed only after a successful
/// publish), so the poison flag carries no information here.
fn lock_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl<I: SpatialIndex + Clone + 'static> VersionedIndex<I> {
    /// Wraps a freshly built index as epoch 0, without a rebuild fallback:
    /// ops the index rejects with [`IndexError::UpdateUnsupported`] fail the
    /// whole `apply` (nothing is published).
    pub fn new(index: I) -> Self {
        Self::construct(index, None)
    }

    /// Wraps an index together with a rebuild fallback: `points` must be
    /// exactly the points `index` was built from, and `build` reconstructs
    /// an equivalent index from an updated point set. When an op is rejected
    /// with [`IndexError::UpdateUnsupported`], the wrapper updates its
    /// mirror and rebuilds — so even bulk-only indexes (QUASII) advance
    /// through the version chain.
    pub fn with_rebuild(
        index: I,
        points: Vec<Point>,
        build: impl Fn(&[Point]) -> I + Send + 'static,
    ) -> Self {
        Self::construct(
            index,
            Some(RebuildPolicy {
                points,
                build: Box::new(build),
            }),
        )
    }

    fn construct(index: I, rebuild: Option<RebuildPolicy<I>>) -> Self {
        let counters = Arc::new(Counters::default());
        let guard = Arc::new(EpochGuard {
            counters: Arc::clone(&counters),
            superseded: AtomicBool::new(false),
        });
        Self {
            current: Mutex::new(Published {
                epoch: 0,
                index: Arc::new(index),
                guard,
            }),
            writer: Mutex::new(WriterState {
                rebuild,
                applies: 0,
            }),
            counters,
            #[cfg(feature = "fault-injection")]
            faults: Mutex::new(None),
        }
    }

    /// Installs a deterministic write-fault plan consulted by every
    /// subsequent [`VersionedIndex::apply`]. Only available with the
    /// `fault-injection` feature (on by default).
    #[cfg(feature = "fault-injection")]
    pub fn install_write_faults(&self, plan: Arc<WriteFaultPlan>) {
        *lock_recover(&self.faults) = Some(plan);
    }

    /// An epoch-pinned snapshot of the current version: two `Arc` clones
    /// under a briefly held lock, never blocked by an in-flight writer.
    pub fn snapshot(&self) -> Snapshot {
        let current = lock_recover(&self.current);
        self.counters
            .snapshots_taken
            .fetch_add(1, Ordering::Relaxed);
        Snapshot {
            epoch: current.epoch,
            index: Arc::clone(&current.index) as Arc<dyn SpatialIndex>,
            _guard: Arc::clone(&current.guard),
        }
    }

    /// Applies `ops` as one atomic batch and publishes the result as the
    /// next epoch.
    ///
    /// The batch is all-or-nothing: the writer mutates a private fork of
    /// the current version, so an error (or a panic — injected or real)
    /// anywhere in the batch discards the fork and leaves the published
    /// version, every outstanding snapshot, and the point mirror exactly as
    /// they were. Concurrent writers serialize on the writer lock; readers
    /// are never blocked.
    pub fn apply(&self, ops: &[WriteOp]) -> Result<WriteReceipt, IndexError> {
        let mut writer = lock_recover(&self.writer);
        #[cfg(feature = "fault-injection")]
        let seq = writer.applies;
        writer.applies += 1;
        #[cfg(feature = "fault-injection")]
        let faults = lock_recover(&self.faults).clone();

        // Fork the current version. With page-level CoW in the store this
        // copies the page table, not the pages.
        let base = Arc::clone(&lock_recover(&self.current).index);
        let mut work: I = (*base).clone();
        drop(base);

        // The mirror is transactional too: mutate a local copy, commit it
        // only after the publish succeeds.
        let mut mirror = writer.rebuild.as_ref().map(|rb| rb.points.clone());
        let mut removed = 0u64;
        let mut rebuilt = false;

        #[cfg(feature = "fault-injection")]
        fire_write_fault(&faults, seq, WritePhase::MidApply);

        for op in ops {
            match *op {
                WriteOp::Insert(p) => match work.insert(p) {
                    Ok(()) => {
                        if let Some(points) = mirror.as_mut() {
                            points.push(p);
                        }
                    }
                    Err(IndexError::UpdateUnsupported { .. }) if mirror.is_some() => {
                        let points = mirror.as_mut().expect("mirror present");
                        points.push(p);
                        let rb = writer.rebuild.as_ref().expect("rebuild policy present");
                        work = (rb.build)(points);
                        rebuilt = true;
                    }
                    Err(err) => return Err(err),
                },
                WriteOp::Delete(p) => match work.delete(&p) {
                    Ok(was_there) => {
                        removed += u64::from(was_there);
                        if was_there {
                            if let Some(points) = mirror.as_mut() {
                                if let Some(pos) = points.iter().position(|q| *q == p) {
                                    points.swap_remove(pos);
                                }
                            }
                        }
                    }
                    Err(IndexError::UpdateUnsupported { .. }) if mirror.is_some() => {
                        let points = mirror.as_mut().expect("mirror present");
                        if let Some(pos) = points.iter().position(|q| *q == p) {
                            points.swap_remove(pos);
                            removed += 1;
                            let rb = writer.rebuild.as_ref().expect("rebuild policy present");
                            work = (rb.build)(points);
                            rebuilt = true;
                        }
                    }
                    Err(err) => return Err(err),
                },
                WriteOp::Maintain => work.maintain(),
            }
        }

        #[cfg(feature = "fault-injection")]
        fire_write_fault(&faults, seq, WritePhase::BeforePublish);

        // Publish: supersede the old version and swap in the fork. The
        // current lock is held only for the swap itself.
        let new_index = Arc::new(work);
        let mut current = lock_recover(&self.current);
        current.guard.superseded.store(true, Ordering::Release);
        let epoch = current.epoch + 1;
        *current = Published {
            epoch,
            index: new_index,
            guard: Arc::new(EpochGuard {
                counters: Arc::clone(&self.counters),
                superseded: AtomicBool::new(false),
            }),
        };
        drop(current);

        if let Some(points) = mirror {
            writer
                .rebuild
                .as_mut()
                .expect("rebuild policy present")
                .points = points;
        }
        self.counters
            .snapshots_published
            .fetch_add(1, Ordering::Relaxed);
        self.counters
            .writes_applied
            .fetch_add(ops.len() as u64, Ordering::Relaxed);
        if rebuilt {
            self.counters
                .rebuild_fallbacks
                .fetch_add(1, Ordering::Relaxed);
        }
        Ok(WriteReceipt {
            epoch,
            ops: ops.len() as u64,
            removed,
            rebuilt,
        })
    }

    /// Version-lifecycle counters; see [`VersionStats`].
    pub fn version_stats(&self) -> VersionStats {
        VersionStats {
            current_epoch: lock_recover(&self.current).epoch,
            snapshots_published: self.counters.snapshots_published.load(Ordering::Relaxed),
            epochs_retired: self.counters.epochs_retired.load(Ordering::Relaxed),
            writes_applied: self.counters.writes_applied.load(Ordering::Relaxed),
            rebuild_fallbacks: self.counters.rebuild_fallbacks.load(Ordering::Relaxed),
            snapshots_taken: self.counters.snapshots_taken.load(Ordering::Relaxed),
        }
    }
}

impl<I: SpatialIndex + Clone + 'static> SnapshotSource for VersionedIndex<I> {
    fn snapshot(&self) -> Snapshot {
        VersionedIndex::snapshot(self)
    }
    fn apply(&self, ops: &[WriteOp]) -> Result<WriteReceipt, IndexError> {
        VersionedIndex::apply(self, ops)
    }
    fn version_stats(&self) -> VersionStats {
        VersionedIndex::version_stats(self)
    }
}

impl<I: SpatialIndex + Clone + 'static> std::fmt::Debug for VersionedIndex<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.version_stats();
        f.debug_struct("VersionedIndex")
            .field("epoch", &stats.current_epoch)
            .field("published", &stats.snapshots_published)
            .field("retired", &stats.epochs_retired)
            .finish()
    }
}

/// Where a write fault fires inside [`VersionedIndex::apply`].
#[cfg(feature = "fault-injection")]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WritePhase {
    /// After the fork, before any op is applied: the writer holds a private
    /// working copy mid-copy-on-write.
    MidApply,
    /// After all ops are applied, immediately before the publish swap.
    BeforePublish,
}

/// The injected behaviour at a write failpoint.
#[cfg(feature = "fault-injection")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Sleep this long at the failpoint (a stalled publish, for testing
    /// that readers keep answering from the old epoch meanwhile).
    Stall(std::time::Duration),
    /// Panic at the failpoint: the fork is discarded, the writer lock is
    /// poisoned and recovered by the next writer, and the published
    /// version is untouched.
    Panic,
}

/// A deterministic schedule of write faults, keyed by apply sequence number
/// (the order of [`VersionedIndex::apply`] calls, starting at 0) and
/// [`WritePhase`]. The chaos harness installs one via
/// [`VersionedIndex::install_write_faults`].
#[cfg(feature = "fault-injection")]
#[derive(Debug, Default)]
pub struct WriteFaultPlan {
    faults: std::collections::BTreeMap<(u64, WritePhase), WriteFault>,
    injected: AtomicU64,
}

#[cfg(feature = "fault-injection")]
impl WriteFaultPlan {
    /// An empty plan (every failpoint is a no-op).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) the fault for apply number `seq` at `phase`.
    pub fn with(mut self, seq: u64, phase: WritePhase, fault: WriteFault) -> Self {
        self.faults.insert((seq, phase), fault);
        self
    }

    /// The fault planned for apply `seq` at `phase`, if any.
    pub fn fault_for(&self, seq: u64, phase: WritePhase) -> Option<WriteFault> {
        self.faults.get(&(seq, phase)).copied()
    }

    /// How many faults have fired so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

#[cfg(feature = "fault-injection")]
fn fire_write_fault(plan: &Option<Arc<WriteFaultPlan>>, seq: u64, phase: WritePhase) {
    if let Some(plan) = plan {
        if let Some(fault) = plan.fault_for(seq, phase) {
            plan.injected.fetch_add(1, Ordering::Relaxed);
            match fault {
                WriteFault::Stall(delay) => std::thread::sleep(delay),
                WriteFault::Panic => {
                    panic!("injected write fault: panic at {phase:?} (apply #{seq})")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ZIndex;

    fn grid(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new((i % 20) as f64 / 20.0, (i / 20) as f64 / 20.0))
            .collect()
    }

    fn versioned_base(n: usize) -> VersionedIndex<ZIndex> {
        VersionedIndex::new(ZIndex::build_base(grid(n)))
    }

    #[test]
    fn snapshots_pin_their_epoch_and_answers() {
        let v = versioned_base(200);
        let before = v.snapshot();
        assert_eq!(before.epoch(), 0);
        let p = Point::new(0.513, 0.513);
        let receipt = v.apply(&[WriteOp::Insert(p)]).unwrap();
        assert_eq!(receipt.epoch, 1);
        assert_eq!(receipt.ops, 1);
        assert!(!receipt.rebuilt);

        let after = v.snapshot();
        let mut stats = ExecStats::default();
        assert!(!before.point_query(&p, &mut stats));
        assert!(after.point_query(&p, &mut stats));
        assert_eq!(before.len() + 1, after.len());
        // Repeated reads of the pinned snapshot keep answering identically.
        let q = Rect::from_coords(0.4, 0.4, 0.6, 0.6);
        let first = before.range_query(&q, &mut stats);
        let second = before.range_query(&q, &mut stats);
        assert_eq!(first, second);
    }

    #[test]
    fn delete_and_maintain_publish_new_epochs() {
        let v = versioned_base(100);
        let victim = Point::new(0.0, 0.0);
        let receipt = v
            .apply(&[WriteOp::Delete(victim), WriteOp::Maintain])
            .unwrap();
        assert_eq!(receipt.removed, 1);
        let snap = v.snapshot();
        let mut stats = ExecStats::default();
        assert!(!snap.point_query(&victim, &mut stats));
        assert_eq!(snap.len(), 99);
        // Deleting a missing point publishes but removes nothing.
        let receipt = v.apply(&[WriteOp::Delete(victim)]).unwrap();
        assert_eq!(receipt.removed, 0);
        assert_eq!(v.snapshot().len(), 99);
    }

    #[test]
    fn epochs_retire_when_their_last_snapshot_drops() {
        let v = versioned_base(100);
        let pinned = v.snapshot();
        v.apply(&[WriteOp::Insert(Point::new(0.91, 0.17))]).unwrap();
        v.apply(&[WriteOp::Insert(Point::new(0.92, 0.18))]).unwrap();
        // Epoch 1 had no snapshot: it drained at the second publish. Epoch 0
        // is still pinned.
        let stats = v.version_stats();
        assert_eq!(stats.current_epoch, 2);
        assert_eq!(stats.snapshots_published, 2);
        assert_eq!(stats.epochs_retired, 1);
        assert_eq!(stats.live_epochs(), 2);
        drop(pinned);
        let stats = v.version_stats();
        assert_eq!(stats.epochs_retired, 2);
        assert_eq!(stats.live_epochs(), 1);
    }

    #[test]
    fn snapshot_refuses_mutation() {
        let v = versioned_base(50);
        let mut snap = v.snapshot();
        assert!(matches!(
            snap.insert(Point::new(0.1, 0.1)),
            Err(IndexError::Unsupported(_))
        ));
        assert!(matches!(
            snap.delete(&Point::new(0.1, 0.1)),
            Err(IndexError::Unsupported(_))
        ));
    }

    #[test]
    fn snapshot_delegates_kernels_and_metadata() {
        let v = versioned_base(400);
        let snap = v.snapshot();
        assert_eq!(snap.name(), "Base");
        assert!(!snap.is_empty());
        assert!(snap.size_bytes() > 0);
        assert!(snap.range_batch_kernel().is_some());
        assert!(snap.point_batch_kernel().is_some());
        assert!(!snap.data_bounds().is_empty());
        let mut stats = ExecStats::default();
        let q = Rect::from_coords(0.1, 0.1, 0.3, 0.3);
        assert_eq!(
            snap.range_count(&q, &mut stats),
            snap.range_query(&q, &mut stats).len() as u64
        );
        let mut streamed = 0u64;
        snap.range_for_each(&q, &mut stats, &mut |_| streamed += 1);
        assert_eq!(streamed, snap.range_count(&q, &mut stats));
        assert_eq!(snap.knn(&Point::new(0.2, 0.2), 3, &mut stats).len(), 3);
        assert!(format!("{snap:?}").contains("epoch"));
    }

    /// A bulk-only index: rejects all updates, so only the rebuild fallback
    /// can advance it.
    #[derive(Clone)]
    struct FrozenScan {
        points: Vec<Point>,
    }

    impl SpatialIndex for FrozenScan {
        fn name(&self) -> &'static str {
            "FrozenScan"
        }
        fn len(&self) -> usize {
            self.points.len()
        }
        fn data_bounds(&self) -> Rect {
            Rect::bounding(&self.points)
        }
        fn range_query(&self, query: &Rect, _stats: &mut ExecStats) -> Vec<Point> {
            self.points
                .iter()
                .copied()
                .filter(|p| query.contains(p))
                .collect()
        }
        fn point_query(&self, p: &Point, _stats: &mut ExecStats) -> bool {
            self.points.contains(p)
        }
        fn size_bytes(&self) -> usize {
            self.points.len() * std::mem::size_of::<Point>()
        }
    }

    #[test]
    fn rebuild_fallback_advances_bulk_only_indexes() {
        let points = grid(60);
        let v = VersionedIndex::with_rebuild(
            FrozenScan {
                points: points.clone(),
            },
            points,
            |pts| FrozenScan {
                points: pts.to_vec(),
            },
        );
        let p = Point::new(0.77, 0.31);
        let receipt = v.apply(&[WriteOp::Insert(p)]).unwrap();
        assert!(receipt.rebuilt);
        let mut stats = ExecStats::default();
        assert!(v.snapshot().point_query(&p, &mut stats));
        let receipt = v.apply(&[WriteOp::Delete(p)]).unwrap();
        assert!(receipt.rebuilt);
        assert_eq!(receipt.removed, 1);
        assert!(!v.snapshot().point_query(&p, &mut stats));
        assert_eq!(v.version_stats().rebuild_fallbacks, 2);
    }

    #[test]
    fn update_unsupported_without_rebuild_fails_and_publishes_nothing() {
        let v = VersionedIndex::new(FrozenScan { points: grid(30) });
        let err = v.apply(&[WriteOp::Insert(Point::new(0.5, 0.5))]);
        assert!(matches!(
            err,
            Err(IndexError::UpdateUnsupported {
                index: "FrozenScan",
                op: "insert"
            })
        ));
        let stats = v.version_stats();
        assert_eq!(stats.current_epoch, 0);
        assert_eq!(stats.snapshots_published, 0);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn injected_writer_panic_discards_the_fork_and_recovers() {
        let v = versioned_base(100);
        let plan = Arc::new(WriteFaultPlan::new().with(0, WritePhase::MidApply, WriteFault::Panic));
        v.install_write_faults(Arc::clone(&plan));
        let before = v.snapshot();
        let p = Point::new(0.513, 0.513);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = v.apply(&[WriteOp::Insert(p)]);
        }));
        assert!(panicked.is_err());
        assert_eq!(plan.injected(), 1);
        // Nothing was published; the next apply recovers the writer lock.
        assert_eq!(v.version_stats().current_epoch, 0);
        let receipt = v.apply(&[WriteOp::Insert(p)]).unwrap();
        assert_eq!(receipt.epoch, 1);
        let mut stats = ExecStats::default();
        assert!(!before.point_query(&p, &mut stats));
        assert!(v.snapshot().point_query(&p, &mut stats));
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn publish_stall_keeps_readers_on_the_old_epoch() {
        use std::time::Duration;
        let v = Arc::new(versioned_base(100));
        let plan = Arc::new(WriteFaultPlan::new().with(
            0,
            WritePhase::BeforePublish,
            WriteFault::Stall(Duration::from_millis(40)),
        ));
        v.install_write_faults(plan);
        let writer = {
            let v = Arc::clone(&v);
            std::thread::spawn(move || v.apply(&[WriteOp::Insert(Point::new(0.513, 0.513))]))
        };
        // While the writer stalls before publishing, snapshots keep coming
        // from epoch 0 without blocking.
        let t0 = std::time::Instant::now();
        let snap = v.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert!(
            t0.elapsed() < Duration::from_millis(30),
            "snapshot blocked on writer"
        );
        writer.join().unwrap().unwrap();
        assert_eq!(v.snapshot().epoch(), 1);
    }

    #[test]
    fn concurrent_snapshots_while_writing_smoke() {
        let v = Arc::new(versioned_base(200));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let v = Arc::clone(&v);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last_epoch = 0;
                    let mut last_len = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = v.snapshot();
                        // Epochs and lengths advance monotonically under an
                        // insert-only writer.
                        assert!(snap.epoch() >= last_epoch);
                        assert!(snap.len() >= last_len);
                        let mut stats = ExecStats::default();
                        let n = snap.range_count(&Rect::UNIT, &mut stats);
                        assert_eq!(n as usize, snap.len());
                        last_epoch = snap.epoch();
                        last_len = snap.len();
                    }
                })
            })
            .collect();
        for i in 0..50 {
            let p = Point::new(0.001 + (i as f64) * 0.9 / 50.0, 0.503);
            v.apply(&[WriteOp::Insert(p)]).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        let stats = v.version_stats();
        assert_eq!(stats.current_epoch, 50);
        assert_eq!(stats.writes_applied, 50);
        assert_eq!(v.snapshot().len(), 250);
    }
}
