//! The query-plan execution engine: a unified front door over any
//! [`SpatialIndex`].
//!
//! The low-level trait speaks one query at a time through differently-shaped
//! methods, each threading a `&mut ExecStats` out-parameter. The engine
//! replaces that surface with typed requests and responses:
//!
//! * a [`Query`] describes one operation (range in one of three modes,
//!   point probe, kNN);
//! * [`QueryEngine::execute`] answers it with a [`QueryReport`] — output,
//!   work counters and phase timings, wall-clock latency — owning the
//!   `ExecStats` plumbing;
//! * [`QueryEngine::execute_batch`] answers a whole workload mix, either by
//!   the sequential per-query loop (the default, byte- and
//!   counter-equivalent to calling [`QueryEngine::execute`] in a loop) or,
//!   under [`BatchStrategy::Fused`], by routing the batch's range plans
//!   through the index's [`RangeBatchKernel`] when it has one, so pages
//!   shared by overlapping queries are scanned once per batch.
//!
//! The engine is configured builder-style and borrows the index, so it can
//! be created per request batch without cost:
//!
//! ```
//! use wazi_core::{BatchStrategy, Query, QueryEngine, QueryOutput, ZIndex};
//! use wazi_geom::{Point, Rect};
//!
//! let points: Vec<Point> = (0..1_000)
//!     .map(|i| Point::new((i % 40) as f64 / 40.0, (i / 40) as f64 / 25.0))
//!     .collect();
//! let index = ZIndex::build_base(points);
//! let engine = QueryEngine::new(&index).with_strategy(BatchStrategy::Fused);
//!
//! let batch = vec![
//!     Query::range_count(Rect::from_coords(0.1, 0.1, 0.4, 0.4)),
//!     Query::point(Point::new(0.5, 0.52)),
//!     Query::knn(Point::new(0.2, 0.2), 3),
//! ];
//! let report = engine.execute_batch(&batch).unwrap();
//! assert_eq!(report.len(), 3);
//! assert!(matches!(report.reports[0].output, QueryOutput::Count(_)));
//! ```

mod batch;
mod plan;
mod report;
#[cfg(test)]
mod tests;

pub use batch::{RangeBatchKernel, RangeBatchOutput, RangeBatchRequest, RangeBatchResponse};
pub use plan::{Query, QueryOutput, RangeMode};
pub use report::{BatchReport, QueryReport};

use crate::index::{IndexError, SpatialIndex};
use std::time::Instant;
use wazi_geom::Point;
use wazi_storage::ExecStats;

/// Errors returned by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The underlying index rejected the operation.
    Index(IndexError),
    /// The query plan itself was invalid (e.g. non-finite geometry).
    InvalidQuery(String),
}

impl From<IndexError> for EngineError {
    fn from(err: IndexError) -> Self {
        EngineError::Index(err)
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Index(err) => write!(f, "index error: {err}"),
            EngineError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Index(err) => Some(err),
            _ => None,
        }
    }
}

/// How [`QueryEngine::execute_batch`] schedules a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchStrategy {
    /// Execute queries one at a time in input order. The default: results,
    /// counters and per-query latencies are exactly those of a hand-written
    /// [`QueryEngine::execute`] loop.
    #[default]
    Sequential,
    /// Route the batch's range plans through the index's
    /// [`RangeBatchKernel`] when it advertises one
    /// ([`SpatialIndex::range_batch_kernel`]), falling back to the
    /// sequential loop otherwise. Answers are identical to
    /// [`BatchStrategy::Sequential`]; pages relevant to several queries are
    /// scanned once per batch instead of once per query.
    Fused,
}

/// Executes typed [`Query`] plans against a borrowed [`SpatialIndex`].
///
/// Construction is builder-style (see the module example): [`QueryEngine::new`]
/// picks the sequential default and [`QueryEngine::with_strategy`] opts into
/// fused batching.
pub struct QueryEngine<'a> {
    index: &'a dyn SpatialIndex,
    strategy: BatchStrategy,
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine over `index` with the default
    /// [`BatchStrategy::Sequential`].
    pub fn new(index: &'a dyn SpatialIndex) -> Self {
        Self {
            index,
            strategy: BatchStrategy::default(),
        }
    }

    /// Sets the batch scheduling strategy (builder-style).
    pub fn with_strategy(mut self, strategy: BatchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The configured batch strategy.
    pub fn strategy(&self) -> BatchStrategy {
        self.strategy
    }

    /// The index this engine executes against.
    pub fn index(&self) -> &dyn SpatialIndex {
        self.index
    }

    /// Executes one query plan, owning the stats bookkeeping.
    ///
    /// [`RangeMode::Stream`] plans executed through this entry point count
    /// and drop the matches (the non-materializing measurement mode); use
    /// [`QueryEngine::execute_streaming`] to receive them.
    pub fn execute(&self, query: &Query) -> Result<QueryReport, EngineError> {
        self.execute_with_sink(query, &mut |_| {})
    }

    /// Executes one query plan, delivering the matches of a
    /// [`RangeMode::Stream`] range plan to `sink` as they are found. For
    /// every other plan this behaves exactly like [`QueryEngine::execute`]
    /// (`sink` is never called).
    pub fn execute_streaming(
        &self,
        query: &Query,
        sink: &mut dyn FnMut(&Point),
    ) -> Result<QueryReport, EngineError> {
        self.execute_with_sink(query, sink)
    }

    fn execute_with_sink(
        &self,
        query: &Query,
        sink: &mut dyn FnMut(&Point),
    ) -> Result<QueryReport, EngineError> {
        query.validate()?;
        let mut stats = ExecStats::default();
        let start = Instant::now();
        let output = match query {
            Query::Range { rect, mode } => match mode {
                RangeMode::Collect => QueryOutput::Points(self.index.range_query(rect, &mut stats)),
                RangeMode::Count => QueryOutput::Count(self.index.range_count(rect, &mut stats)),
                RangeMode::Stream => {
                    let mut streamed = 0u64;
                    self.index.range_for_each(rect, &mut stats, &mut |p| {
                        streamed += 1;
                        sink(p);
                    });
                    QueryOutput::Streamed(streamed)
                }
            },
            Query::Point(p) => QueryOutput::Found(self.index.point_query(p, &mut stats)),
            Query::Knn { q, k } => QueryOutput::Neighbors(self.index.knn(q, *k, &mut stats)),
        };
        Ok(QueryReport {
            output,
            stats,
            latency_ns: start.elapsed().as_nanos() as u64,
        })
    }

    /// Executes a batch of query plans, answering in input order.
    ///
    /// Every plan is validated before anything executes, so an invalid
    /// query rejects the whole batch without partial work.
    pub fn execute_batch(&self, queries: &[Query]) -> Result<BatchReport, EngineError> {
        for query in queries {
            query.validate()?;
        }
        let start = Instant::now();
        let kernel = match self.strategy {
            BatchStrategy::Fused => self.index.range_batch_kernel(),
            BatchStrategy::Sequential => None,
        };
        let mut report = match kernel {
            Some(kernel) if queries.iter().filter(|q| q.is_range()).count() >= 2 => {
                self.execute_batch_fused(queries, kernel)?
            }
            _ => self.execute_batch_sequential(queries)?,
        };
        report.latency_ns = start.elapsed().as_nanos() as u64;
        Ok(report)
    }

    fn execute_batch_sequential(&self, queries: &[Query]) -> Result<BatchReport, EngineError> {
        let mut reports = Vec::with_capacity(queries.len());
        for query in queries {
            reports.push(self.execute(query)?);
        }
        Ok(BatchReport {
            reports,
            shared_stats: ExecStats::default(),
            latency_ns: 0,
            fused_queries: 0,
        })
    }

    /// The fused path: range plans go through the kernel in one pass,
    /// everything else runs sequentially, and the answers are reassembled
    /// into input order.
    fn execute_batch_fused(
        &self,
        queries: &[Query],
        kernel: &dyn RangeBatchKernel,
    ) -> Result<BatchReport, EngineError> {
        let mut range_positions = Vec::new();
        let mut requests = Vec::new();
        for (i, query) in queries.iter().enumerate() {
            if let Query::Range { rect, mode } = query {
                range_positions.push(i);
                requests.push(RangeBatchRequest {
                    rect: *rect,
                    collect: *mode == RangeMode::Collect,
                });
            }
        }
        let response = kernel.run_range_batch(&requests);
        debug_assert_eq!(response.outputs.len(), requests.len());
        debug_assert_eq!(response.per_query.len(), requests.len());

        let mut slots: Vec<Option<QueryReport>> = (0..queries.len()).map(|_| None).collect();
        for ((&position, output), stats) in range_positions
            .iter()
            .zip(response.outputs)
            .zip(response.per_query)
        {
            let mode = match &queries[position] {
                Query::Range { mode, .. } => *mode,
                _ => unreachable!("range positions only index range plans"),
            };
            let output = match (output, mode) {
                (RangeBatchOutput::Points(points), _) => QueryOutput::Points(points),
                (RangeBatchOutput::Count(n), RangeMode::Stream) => QueryOutput::Streamed(n),
                (RangeBatchOutput::Count(n), _) => QueryOutput::Count(n),
            };
            slots[position] = Some(QueryReport {
                output,
                stats,
                latency_ns: 0,
            });
        }
        for (slot, query) in slots.iter_mut().zip(queries) {
            if slot.is_none() {
                *slot = Some(self.execute(query)?);
            }
        }
        let fused_queries = range_positions.len();
        Ok(BatchReport {
            reports: slots
                .into_iter()
                .map(|s| s.expect("every slot filled above"))
                .collect(),
            shared_stats: response.shared,
            latency_ns: 0,
            fused_queries,
        })
    }
}
