//! The query-plan execution engine: a unified front door over any
//! [`SpatialIndex`].
//!
//! The low-level trait speaks one query at a time through differently-shaped
//! methods, each threading a `&mut ExecStats` out-parameter. The engine
//! replaces that surface with typed requests and responses:
//!
//! * a [`Query`] describes one operation (range in one of three modes,
//!   point probe, kNN);
//! * [`QueryEngine::execute`] answers it with a [`QueryReport`] — output,
//!   work counters and phase timings, wall-clock latency — owning the
//!   `ExecStats` plumbing;
//! * [`QueryEngine::execute_batch`] answers a whole workload mix, either by
//!   the sequential per-query loop (the default, byte- and
//!   counter-equivalent to calling [`QueryEngine::execute`] in a loop) or,
//!   under [`BatchStrategy::Fused`], by partitioning the batch by plan
//!   type and routing each partition through the index's fused kernels —
//!   range plans through the [`RangeBatchKernel`], point probes through
//!   the [`PointBatchKernel`], kNN plans through grouped expanding-ring
//!   sweeps — so pages shared by co-located queries are scanned once per
//!   batch.
//!
//! The engine is configured builder-style and borrows the index, so it can
//! be created per request batch without cost:
//!
//! ```
//! use wazi_core::{BatchStrategy, Query, QueryEngine, QueryOutput, ZIndex};
//! use wazi_geom::{Point, Rect};
//!
//! let points: Vec<Point> = (0..1_000)
//!     .map(|i| Point::new((i % 40) as f64 / 40.0, (i / 40) as f64 / 25.0))
//!     .collect();
//! let index = ZIndex::build_base(points);
//! let engine = QueryEngine::new(&index).with_strategy(BatchStrategy::Fused);
//!
//! let batch = vec![
//!     Query::range_count(Rect::from_coords(0.1, 0.1, 0.4, 0.4)),
//!     Query::point(Point::new(0.5, 0.52)),
//!     Query::knn(Point::new(0.2, 0.2), 3),
//! ];
//! let report = engine.execute_batch(&batch).unwrap();
//! assert_eq!(report.len(), 3);
//! assert!(matches!(report.reports[0].output, QueryOutput::Count(_)));
//! ```

mod batch;
pub mod cost;
mod knn;
mod plan;
mod point;
mod report;
pub mod snapshot;
#[cfg(test)]
mod tests;

pub use batch::{
    merge_shard_responses, plan_shard_bounds, plan_shard_bounds_weighted, run_full_sweep,
    BatchProjection, RangeBatchKernel, RangeBatchOutput, RangeBatchRequest, RangeBatchResponse,
    ShardBounds, ShardedRangeBatchKernel, SweepInterval,
};
pub use cost::{
    decide_knn_strategy, decide_point_strategy, decide_range_strategy, CalibrationTable,
    ChosenStrategy, CostConstants, CostEstimate, KernelClass, PartitionDecision, RangeBatchStats,
};
pub use knn::{group_knn_plans, run_knn_batch, KnnBatchResponse};
pub(crate) use knn::{run_knn_batch_with, KnnSweepState};
pub use plan::{Query, QueryOutput, RangeMode};
pub use point::{run_point_batch, run_point_batch_sharded, PointBatchKernel, PointBatchResponse};
pub use report::{BatchReport, QueryReport, StrategyDecisions};
pub use snapshot::{Snapshot, SnapshotSource, VersionStats, VersionedIndex, WriteOp, WriteReceipt};
#[cfg(feature = "fault-injection")]
pub use snapshot::{WriteFault, WriteFaultPlan, WritePhase};

use crate::index::{IndexError, SpatialIndex};
use std::time::Instant;
use wazi_geom::Point;
use wazi_storage::{ExecStats, StatsCollector};

/// Errors returned by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The underlying index rejected the operation.
    Index(IndexError),
    /// The query plan itself was invalid (e.g. non-finite geometry).
    InvalidQuery(String),
    /// Execution panicked inside a kernel and the panic was caught at the
    /// engine boundary ([`catch_execution_panic`]); the payload's message is
    /// preserved. The index itself is still valid — kernels execute over
    /// `&self` and never mutate index state, so an unwound kernel leaves
    /// nothing half-written (see the panic-safety notes on
    /// [`SpatialIndex::range_batch_kernel`]).
    ExecutionPanicked(String),
}

impl From<IndexError> for EngineError {
    fn from(err: IndexError) -> Self {
        EngineError::Index(err)
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Index(err) => write!(f, "index error: {err}"),
            EngineError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            EngineError::ExecutionPanicked(msg) => {
                write!(f, "execution panicked inside a kernel: {msg}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Index(err) => Some(err),
            _ => None,
        }
    }
}

/// Runs `f` under [`std::panic::catch_unwind`], converting a panic into
/// [`EngineError::ExecutionPanicked`] with the payload's message preserved.
///
/// This is the engine's panic-isolation boundary, used by
/// [`QueryEngine::execute_caught`] / [`QueryEngine::execute_batch_caught`]
/// and by service layers that need to survive a faulty query without
/// losing the process. The unwind-safety assertion is justified by the
/// engine's execution model:
///
/// * every kernel entry point ([`SpatialIndex::range_query`],
///   [`SpatialIndex::range_batch_kernel`], [`SpatialIndex::point_batch_kernel`],
///   the kNN sweeps) takes `&self` — index state is never mutated during
///   query execution, and no index implementation uses interior mutability
///   (the workspace forbids `unsafe`), so an unwound kernel cannot leave
///   the index half-written;
/// * all per-call state (`ExecStats`, batch projections, sweep cursors) is
///   owned by the call frame and dropped during the unwind;
/// * panics on the engine's scoped worker threads propagate to the caller
///   with their original payload (the shard joins re-raise via
///   [`std::panic::resume_unwind`]), so a parallel sweep is caught here
///   exactly like a sequential one.
pub fn catch_execution_panic<T>(
    f: impl FnOnce() -> Result<T, EngineError>,
) -> Result<T, EngineError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        // `as_ref` matters: `&payload` would coerce the Box itself to
        // `dyn Any` and every downcast would miss.
        Err(payload) => Err(EngineError::ExecutionPanicked(panic_message(
            payload.as_ref(),
        ))),
    }
}

/// Extracts a human-readable message from a panic payload (`&str` and
/// `String` payloads — what `panic!` produces — are preserved verbatim).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// How [`QueryEngine::execute_batch`] schedules a batch.
///
/// All strategies return identical answers; they differ only in how the
/// physical work is scheduled, so picking one is purely a performance
/// decision:
///
/// * [`BatchStrategy::Auto`] (the default) lets the engine pick per batch
///   and per partition, using the cost model in [`cost`]: cheap statistics
///   the sharded projection phase already produces feed calibrated
///   per-kernel-class formulas, and the cheapest predicted candidate runs.
///   The decision is recorded in [`BatchReport::strategy_chosen`].
/// * [`BatchStrategy::Sequential`] wins on batches whose queries barely
///   overlap — there is no shared work to exploit, and the per-query loop
///   has the least bookkeeping.
/// * [`BatchStrategy::Fused`] wins on overlapping batches: one sweep over
///   the index serves every range plan, pages relevant to several queries
///   are scanned once per batch, and pages are visited in layout order
///   (cache-friendly) instead of once per query in arrival order. The win
///   is largest for counting/streaming plans; materializing
///   ([`RangeMode::Collect`]) plans gain less because result
///   materialization, which fusion cannot share, dominates their cost.
/// * [`BatchStrategy::FusedParallel`] wins when a fused batch has enough
///   total work to amortize thread spawning (thousands of overlapping
///   queries, large datasets): the sweep's address span is partitioned
///   into disjoint work-balanced shards swept concurrently. On small
///   batches the spawn overhead makes it slower than [`BatchStrategy::Fused`]
///   — prefer plain fusion below a few hundred microseconds of batch work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchStrategy {
    /// Pick the strategy per batch and per partition with the calibrated
    /// cost model ([`cost`]): range partitions are decided quantitatively
    /// from the projected batch statistics (overlap mass, estimated sweep
    /// work, host parallelism), point and kNN partitions by the kernel's
    /// class rule. Never changes results, only cost — a misprediction
    /// costs wall-clock, not correctness — and never schedules worker
    /// threads on a single-core host. The decision per partition, with
    /// predicted and measured cost, lands in
    /// [`BatchReport::strategy_chosen`].
    #[default]
    Auto,
    /// Execute queries one at a time in input order: results, counters and
    /// per-query latencies are exactly those of a hand-written
    /// [`QueryEngine::execute`] loop.
    Sequential,
    /// Partition the batch by plan type and route every partition through
    /// the matching fused kernel the index advertises: range plans through
    /// the [`RangeBatchKernel`] ([`SpatialIndex::range_batch_kernel`]),
    /// point probes through the [`PointBatchKernel`]
    /// ([`SpatialIndex::point_batch_kernel`]), kNN plans through grouped
    /// expanding-ring sweeps reusing the range kernel per ring. Partitions
    /// without a kernel fall back to the sequential loop. Answers are
    /// identical to [`BatchStrategy::Sequential`]; pages relevant to
    /// several queries are scanned once per batch (per ring for kNN)
    /// instead of once per query, and per-query bounding-box checks never
    /// exceed the sequential walk's.
    Fused,
    /// Like [`BatchStrategy::Fused`], but fused range sweeps — the range
    /// partition's single sweep and every kNN ring — are split into up to
    /// `shards` disjoint slices of the index's sweep address space (leaf
    /// intervals for the Z-index) and swept on scoped worker threads, one
    /// per shard. Each request is owned by the shard containing its entry
    /// address and swept over its whole interval there, so per-request
    /// walks (bounding-box checks, look-ahead skips) are identical to the
    /// single sweep's; shard bounds are planned work-weighted from the
    /// batch's projected intervals and the index's per-leaf point counts
    /// ([`ShardedRangeBatchKernel::address_counts`]); partial results merge
    /// deterministically in sweep order, so outputs are bit-identical to
    /// the other strategies regardless of thread scheduling. The point
    /// partition parallelizes the same way: its sorted probe-group list is
    /// split at group boundaries ([`run_point_batch_sharded`]) onto worker
    /// threads — groups are disjoint by construction, so probe-heavy
    /// batches scale without any cross-chunk coordination. Falls back to
    /// [`BatchStrategy::Fused`] when the index has no sharded kernel
    /// ([`RangeBatchKernel::sharded`]), when `shards <= 1`, or when the
    /// batch's span is too narrow to split.
    FusedParallel {
        /// Upper bound on the number of concurrently swept shards (clamped
        /// to the batch's address span; `0` is treated as `1`).
        shards: usize,
    },
}

/// Executes typed [`Query`] plans against a borrowed [`SpatialIndex`].
///
/// Construction is builder-style (see the module example): [`QueryEngine::new`]
/// picks the self-tuning [`BatchStrategy::Auto`] default and
/// [`QueryEngine::with_strategy`] pins a fixed strategy.
pub struct QueryEngine<'a> {
    index: &'a dyn SpatialIndex,
    strategy: BatchStrategy,
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine over `index` with the default
    /// [`BatchStrategy::Auto`].
    pub fn new(index: &'a dyn SpatialIndex) -> Self {
        Self {
            index,
            strategy: BatchStrategy::default(),
        }
    }

    /// Sets the batch scheduling strategy (builder-style).
    pub fn with_strategy(mut self, strategy: BatchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The configured batch strategy.
    pub fn strategy(&self) -> BatchStrategy {
        self.strategy
    }

    /// The index this engine executes against.
    pub fn index(&self) -> &dyn SpatialIndex {
        self.index
    }

    /// Executes one query plan, owning the stats bookkeeping.
    ///
    /// [`RangeMode::Stream`] plans executed through this entry point count
    /// and drop the matches (the non-materializing measurement mode); use
    /// [`QueryEngine::execute_streaming`] to receive them.
    pub fn execute(&self, query: &Query) -> Result<QueryReport, EngineError> {
        self.execute_with_sink(query, &mut |_| {})
    }

    /// Executes one query plan, delivering the matches of a
    /// [`RangeMode::Stream`] range plan to `sink` as they are found. For
    /// every other plan this behaves exactly like [`QueryEngine::execute`]
    /// (`sink` is never called).
    pub fn execute_streaming(
        &self,
        query: &Query,
        sink: &mut dyn FnMut(&Point),
    ) -> Result<QueryReport, EngineError> {
        self.execute_with_sink(query, sink)
    }

    fn execute_with_sink(
        &self,
        query: &Query,
        sink: &mut dyn FnMut(&Point),
    ) -> Result<QueryReport, EngineError> {
        query.validate()?;
        let mut stats = ExecStats::default();
        let start = Instant::now();
        let output = match query {
            Query::Range { rect, mode } => match mode {
                RangeMode::Collect => QueryOutput::Points(self.index.range_query(rect, &mut stats)),
                RangeMode::Count => QueryOutput::Count(self.index.range_count(rect, &mut stats)),
                RangeMode::Stream => {
                    let mut streamed = 0u64;
                    self.index.range_for_each(rect, &mut stats, &mut |p| {
                        streamed += 1;
                        sink(p);
                    });
                    QueryOutput::Streamed(streamed)
                }
            },
            Query::Point(p) => QueryOutput::Found(self.index.point_query(p, &mut stats)),
            Query::Knn { q, k } => QueryOutput::Neighbors(self.index.knn(q, *k, &mut stats)),
        };
        Ok(QueryReport {
            output,
            stats,
            latency_ns: start.elapsed().as_nanos() as u64,
        })
    }

    /// [`QueryEngine::execute`] behind the engine's panic-isolation
    /// boundary: a panic inside a kernel is caught and returned as
    /// [`EngineError::ExecutionPanicked`] instead of unwinding the caller.
    /// See [`catch_execution_panic`] for why this is sound.
    pub fn execute_caught(&self, query: &Query) -> Result<QueryReport, EngineError> {
        catch_execution_panic(|| self.execute(query))
    }

    /// [`QueryEngine::execute_batch`] behind the engine's panic-isolation
    /// boundary ([`catch_execution_panic`]). Note the granularity: the
    /// whole batch fails as one [`EngineError::ExecutionPanicked`], because
    /// a fused kernel interleaves every member's work in one sweep — a
    /// caller that wants per-query isolation re-executes the members
    /// one-by-one through [`QueryEngine::execute_caught`], which is exactly
    /// what `wazi-service`'s degraded path does.
    pub fn execute_batch_caught(&self, queries: &[Query]) -> Result<BatchReport, EngineError> {
        catch_execution_panic(|| self.execute_batch(queries))
    }

    /// Executes a batch of query plans, answering in input order.
    ///
    /// Every plan is validated before anything executes, so an invalid
    /// query rejects the whole batch without partial work.
    ///
    /// Under the fused strategies the batch is partitioned by plan type and
    /// each partition with at least two members routes through the matching
    /// kernel when the index has one: range plans through the
    /// [`RangeBatchKernel`], point probes through the [`PointBatchKernel`],
    /// kNN plans through the shared expanding-ring sweep (which reuses the
    /// range kernel per ring). Partitions without a kernel — and leftover
    /// single plans — run sequentially; answers are identical either way.
    pub fn execute_batch(&self, queries: &[Query]) -> Result<BatchReport, EngineError> {
        for query in queries {
            query.validate()?;
        }
        let start = Instant::now();
        let (kernel, point_kernel) = match self.strategy {
            BatchStrategy::Auto | BatchStrategy::Fused | BatchStrategy::FusedParallel { .. } => (
                self.index.range_batch_kernel(),
                self.index.point_batch_kernel(),
            ),
            BatchStrategy::Sequential => (None, None),
        };
        let mut ranges = 0usize;
        let mut points = 0usize;
        let mut knns = 0usize;
        for query in queries {
            match query {
                Query::Range { .. } => ranges += 1,
                Query::Point(_) => points += 1,
                Query::Knn { .. } => knns += 1,
            }
        }
        let fusable = (kernel.is_some() && (ranges >= 2 || knns >= 2))
            || (point_kernel.is_some() && points >= 2);
        let mut report = if fusable {
            self.execute_batch_fused(queries, kernel, point_kernel)?
        } else {
            self.execute_batch_sequential(queries)?
        };
        report.latency_ns = start.elapsed().as_nanos() as u64;
        Ok(report)
    }

    fn execute_batch_sequential(&self, queries: &[Query]) -> Result<BatchReport, EngineError> {
        let mut reports = Vec::with_capacity(queries.len());
        for query in queries {
            reports.push(self.execute(query)?);
        }
        Ok(BatchReport {
            reports,
            shared_stats: ExecStats::default(),
            range_shared_stats: ExecStats::default(),
            point_shared_stats: ExecStats::default(),
            knn_shared_stats: ExecStats::default(),
            latency_ns: 0,
            fused_queries: 0,
            fused_points: 0,
            fused_knn: 0,
            shards_used: 0,
            strategy_chosen: StrategyDecisions::default(),
        })
    }

    /// The fused path: the batch is partitioned by plan type and every
    /// partition with at least two members and a kernel executes fused —
    /// range plans in one sweep (sharded onto worker threads under
    /// [`BatchStrategy::FusedParallel`]), point probes leaf-grouped with
    /// one page visit per group, kNN plans through grouped expanding-ring
    /// sweeps whose rings reuse the range kernel (sharded rings under the
    /// parallel strategy). Everything else runs sequentially, and the
    /// answers are reassembled into input order.
    ///
    /// Under [`BatchStrategy::Auto`] each partition first passes through
    /// the cost model ([`cost`]): the range partition is projected once,
    /// its statistics decide among the candidates, and the projection is
    /// reused by whichever fused execution wins — deciding never projects
    /// twice. A partition the model routes to `Sequential` executes
    /// through the per-query loop (zero fused counters, exactly as if the
    /// engine were pinned sequential); every decision is recorded in
    /// [`BatchReport::strategy_chosen`].
    fn execute_batch_fused(
        &self,
        queries: &[Query],
        kernel: Option<&dyn RangeBatchKernel>,
        point_kernel: Option<&dyn PointBatchKernel>,
    ) -> Result<BatchReport, EngineError> {
        let auto = self.strategy == BatchStrategy::Auto;
        let shards = match self.strategy {
            BatchStrategy::FusedParallel { shards } if shards > 1 => shards,
            _ => 1,
        };
        let workers = available_workers();
        let mut slots: Vec<Option<QueryReport>> = (0..queries.len()).map(|_| None).collect();
        let mut shards_used = 0usize;
        let mut decisions = StrategyDecisions::default();

        // Range partition: one fused sweep for every range plan.
        let mut range_shared = ExecStats::default();
        let mut fused_queries = 0usize;
        if let Some(kernel) = kernel {
            let mut range_positions = Vec::new();
            let mut requests = Vec::new();
            for (i, query) in queries.iter().enumerate() {
                if let Query::Range { rect, mode } = query {
                    range_positions.push(i);
                    requests.push(RangeBatchRequest {
                        rect: *rect,
                        collect: *mode == RangeMode::Collect,
                    });
                }
            }
            if requests.len() >= 2 {
                // Pick the partition's execution. Auto projects the batch
                // once, decides from the projected statistics, and hands
                // the projection to whichever fused execution wins.
                let mut prepared: Option<(BatchProjection, Option<Vec<u64>>)> = None;
                let (chosen, estimate) = if auto {
                    match kernel.sharded() {
                        Some(sharded) => {
                            let projection = sharded.project_batch(&requests);
                            let counts = sharded.address_counts();
                            let stats = RangeBatchStats::from_projection(
                                &projection.intervals,
                                counts.as_deref(),
                            );
                            let (chosen, estimate) = decide_range_strategy(
                                kernel.cost_class(),
                                &stats,
                                workers,
                                &CalibrationTable::BAKED,
                            );
                            prepared = Some((projection, counts));
                            (chosen, Some(estimate))
                        }
                        // No sharded protocol to project through: fall back
                        // to the class rule (page-backed sweeps share
                        // fetches, flat sweeps have none to share).
                        None => (
                            match kernel.cost_class() {
                                KernelClass::PageBacked => ChosenStrategy::Fused,
                                KernelClass::FlatArray => ChosenStrategy::Sequential,
                            },
                            None,
                        ),
                    }
                } else if shards > 1 && kernel.sharded().is_some() {
                    (ChosenStrategy::FusedParallel { shards }, None)
                } else {
                    (ChosenStrategy::Fused, None)
                };
                let executed = Instant::now();
                match chosen {
                    ChosenStrategy::Sequential => {
                        for &position in &range_positions {
                            slots[position] = Some(self.execute(&queries[position])?);
                        }
                    }
                    ChosenStrategy::Fused | ChosenStrategy::FusedParallel { .. } => {
                        let plan_shards = match chosen {
                            ChosenStrategy::FusedParallel { shards } => shards,
                            _ => 1,
                        };
                        let (response, used) = match (prepared, kernel.sharded()) {
                            (Some((projection, counts)), Some(sharded)) => {
                                Self::run_projected_batch(
                                    sharded,
                                    &requests,
                                    projection,
                                    counts,
                                    plan_shards,
                                )
                            }
                            (_, Some(sharded)) if plan_shards > 1 => {
                                Self::run_sharded_batch(sharded, &requests, plan_shards)
                            }
                            _ => (kernel.run_range_batch(&requests), 1),
                        };
                        debug_assert_eq!(response.outputs.len(), requests.len());
                        debug_assert_eq!(response.per_query.len(), requests.len());
                        for ((&position, output), stats) in range_positions
                            .iter()
                            .zip(response.outputs)
                            .zip(response.per_query)
                        {
                            let mode = match &queries[position] {
                                Query::Range { mode, .. } => *mode,
                                _ => unreachable!("range positions only index range plans"),
                            };
                            let output = match (output, mode) {
                                (RangeBatchOutput::Points(points), _) => {
                                    QueryOutput::Points(points)
                                }
                                (RangeBatchOutput::Count(n), RangeMode::Stream) => {
                                    QueryOutput::Streamed(n)
                                }
                                (RangeBatchOutput::Count(n), _) => QueryOutput::Count(n),
                            };
                            slots[position] = Some(QueryReport {
                                output,
                                stats,
                                latency_ns: 0,
                            });
                        }
                        range_shared = response.shared;
                        fused_queries = range_positions.len();
                        shards_used = shards_used.max(used);
                    }
                }
                if auto {
                    decisions.range = Some(PartitionDecision {
                        queries: range_positions.len(),
                        chosen,
                        estimate,
                        actual_ns: executed.elapsed().as_nanos() as u64,
                    });
                }
            }
        }

        // Point partition: probes grouped by owning page, one visit per
        // group (`run_point_batch`'s sorted pass owns the grouping).
        let mut point_shared = ExecStats::default();
        let mut fused_points = 0usize;
        if let Some(point_kernel) = point_kernel {
            let mut point_positions = Vec::new();
            let mut probes = Vec::new();
            for (i, query) in queries.iter().enumerate() {
                if let Query::Point(p) = query {
                    point_positions.push(i);
                    probes.push(*p);
                }
            }
            if probes.len() >= 2 {
                // Auto routes the partition by the range kernel's class
                // rule: grouped probes share page fetches on page-backed
                // indexes; a flat array's probe is a binary search with
                // nothing to share, so the per-probe loop wins there.
                let chosen = if auto {
                    let class = kernel.map_or(KernelClass::PageBacked, |k| k.cost_class());
                    decide_point_strategy(class, probes.len(), workers)
                } else if shards > 1 {
                    ChosenStrategy::FusedParallel { shards }
                } else {
                    ChosenStrategy::Fused
                };
                let executed = Instant::now();
                match chosen {
                    ChosenStrategy::Sequential => {
                        for &position in &point_positions {
                            slots[position] = Some(self.execute(&queries[position])?);
                        }
                    }
                    ChosenStrategy::Fused | ChosenStrategy::FusedParallel { .. } => {
                        // Probe-heavy batches parallelize too: the sorted
                        // group list splits at group boundaries (groups are
                        // disjoint by construction), so chunked execution
                        // is bit-identical to the single pass.
                        let (response, point_shards) = match chosen {
                            ChosenStrategy::FusedParallel { shards } => {
                                run_point_batch_sharded(point_kernel, &probes, shards)
                            }
                            _ => (run_point_batch(point_kernel, &probes), 1),
                        };
                        for ((&position, found), stats) in point_positions
                            .iter()
                            .zip(response.found)
                            .zip(response.per_query)
                        {
                            slots[position] = Some(QueryReport {
                                output: QueryOutput::Found(found),
                                stats,
                                latency_ns: 0,
                            });
                        }
                        point_shared = response.shared;
                        fused_points = point_positions.len();
                        shards_used = shards_used.max(point_shards);
                    }
                }
                if auto {
                    decisions.point = Some(PartitionDecision {
                        queries: point_positions.len(),
                        chosen,
                        estimate: None,
                        actual_ns: executed.elapsed().as_nanos() as u64,
                    });
                }
            }
        }

        // kNN partition: plans grouped by seed-box overlap, each group
        // driven through a shared expanding-ring sweep whose rings execute
        // as fused range batches (sharded rings under the parallel
        // strategy).
        let mut knn_shared = ExecStats::default();
        let mut fused_knn = 0usize;
        if let Some(kernel) = kernel {
            let mut knn_positions = Vec::new();
            let mut plans = Vec::new();
            for (i, query) in queries.iter().enumerate() {
                if let Query::Knn { q, k } = query {
                    knn_positions.push(i);
                    plans.push((*q, *k));
                }
            }
            if plans.len() >= 2 {
                // Auto routes the partition by the range kernel's class
                // rule: ring sweeps share candidate pages on page-backed
                // indexes; on a flat array the rings only add sweep
                // coordination, so the per-plan loop wins.
                let chosen = if auto {
                    decide_knn_strategy(kernel.cost_class(), plans.len(), workers)
                } else if shards > 1 {
                    ChosenStrategy::FusedParallel { shards }
                } else {
                    ChosenStrategy::Fused
                };
                let executed = Instant::now();
                match chosen {
                    ChosenStrategy::Sequential => {
                        for &position in &knn_positions {
                            slots[position] = Some(self.execute(&queries[position])?);
                        }
                    }
                    ChosenStrategy::Fused | ChosenStrategy::FusedParallel { .. } => {
                        let ring_shards = match chosen {
                            ChosenStrategy::FusedParallel { shards } => shards,
                            _ => 1,
                        };
                        let sharded = if ring_shards > 1 {
                            kernel.sharded()
                        } else {
                            None
                        };
                        let mut ring_shards_used = 1usize;
                        let mut run_ring = |requests: &[RangeBatchRequest]| match sharded {
                            Some(sharded) => {
                                let (response, used) =
                                    Self::run_sharded_batch(sharded, requests, ring_shards);
                                ring_shards_used = ring_shards_used.max(used);
                                response
                            }
                            None => kernel.run_range_batch(requests),
                        };
                        let response = run_knn_batch_with(self.index, &plans, &mut run_ring);
                        for ((&position, neighbors), stats) in knn_positions
                            .iter()
                            .zip(response.neighbors)
                            .zip(response.per_query)
                        {
                            slots[position] = Some(QueryReport {
                                output: QueryOutput::Neighbors(neighbors),
                                stats,
                                latency_ns: 0,
                            });
                        }
                        knn_shared = response.shared;
                        fused_knn = knn_positions.len();
                        shards_used = shards_used.max(ring_shards_used);
                    }
                }
                if auto {
                    decisions.knn = Some(PartitionDecision {
                        queries: knn_positions.len(),
                        chosen,
                        estimate: None,
                        actual_ns: executed.elapsed().as_nanos() as u64,
                    });
                }
            }
        }

        // Leftovers — partitions without a kernel, single-plan partitions —
        // run sequentially in place.
        for (slot, query) in slots.iter_mut().zip(queries) {
            if slot.is_none() {
                *slot = Some(self.execute(query)?);
            }
        }
        let mut shared_stats = range_shared;
        shared_stats.merge(&point_shared);
        shared_stats.merge(&knn_shared);
        Ok(BatchReport {
            reports: slots
                .into_iter()
                .map(|s| s.expect("every slot filled above"))
                .collect(),
            shared_stats,
            range_shared_stats: range_shared,
            point_shared_stats: point_shared,
            knn_shared_stats: knn_shared,
            latency_ns: 0,
            fused_queries,
            fused_points,
            fused_knn,
            shards_used,
            strategy_chosen: decisions,
        })
    }

    /// The parallel fused sweep: project once, plan work-balanced shard
    /// bounds over the batch's sweep span, sweep every shard on its own
    /// scoped worker thread, and merge the partial responses
    /// deterministically in shard order. Per-shard shared stats flow
    /// through a thread-safe [`StatsCollector`]; per-query outputs and
    /// counters merge from the ordered responses, so the result is
    /// bit-identical across runs whatever the thread interleaving.
    ///
    /// Oversubscription guard: spawned workers are capped at the host's
    /// [`std::thread::available_parallelism`] — extra threads for CPU-bound
    /// sweeps can only add scheduling overhead. The shard *plan* itself is
    /// never host-dependent (shard bounds, and therefore all deterministic
    /// counters, are identical whatever machine executes the batch); when
    /// there are more shards than workers, each worker sweeps a contiguous
    /// run of shards, and on a single-core host every shard is swept inline
    /// on the calling thread — same shards, same merge, no threads.
    ///
    /// Returns the merged response and the number of shards actually swept
    /// (the planner may produce fewer than requested on narrow spans; a
    /// single-shard plan is swept inline without spawning).
    fn run_sharded_batch(
        sharded: &dyn ShardedRangeBatchKernel,
        requests: &[RangeBatchRequest],
        shards: usize,
    ) -> (RangeBatchResponse, usize) {
        let projection = sharded.project_batch(requests);
        let counts = sharded.address_counts();
        Self::run_projected_batch(sharded, requests, projection, counts, shards)
    }

    /// [`QueryEngine::run_sharded_batch`] with the projection phase already
    /// done — the entry point the Auto strategy uses so the projection that
    /// fed the cost model is reused by the execution it chose, never
    /// recomputed. A `shards` of one degenerates to the single fused sweep
    /// (one hull-bounds shard swept inline), which is bit-identical to
    /// [`RangeBatchKernel::run_range_batch`] for every sharded kernel.
    fn run_projected_batch(
        sharded: &dyn ShardedRangeBatchKernel,
        requests: &[RangeBatchRequest],
        projection: BatchProjection,
        counts: Option<Vec<u64>>,
        shards: usize,
    ) -> (RangeBatchResponse, usize) {
        debug_assert_eq!(projection.intervals.len(), requests.len());
        // Work-weighted planning when the kernel exposes per-address point
        // counts; interval-coverage balancing otherwise.
        let plan = match counts {
            Some(counts) => plan_shard_bounds_weighted(&projection.intervals, shards, &counts),
            None => plan_shard_bounds(&projection.intervals, shards),
        };
        let workers = available_workers().min(plan.len());
        let responses: Vec<RangeBatchResponse> = if plan.len() <= 1 || workers <= 1 {
            plan.iter()
                .map(|&bounds| sharded.sweep_shard(requests, &projection, bounds))
                .collect()
        } else {
            sweep_shards_threaded(sharded, requests, &projection, &plan, workers)
        };
        let shards_used = responses.len().max(1);
        (
            merge_shard_responses(requests, &projection, responses),
            shards_used,
        )
    }
}

/// Worker threads the host can usefully run
/// ([`std::thread::available_parallelism`], one when unknown). Feeds both
/// the oversubscription guard of the threaded sweep and the cost model's
/// parallel-candidate gate — on a single-core host the model never picks
/// [`BatchStrategy::FusedParallel`].
fn available_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Sweeps the planned shards on at most `workers` scoped worker threads —
/// each worker takes a contiguous run of shards and sweeps them in order —
/// returning the partial responses in plan (= shard) order however the
/// workers were scheduled. Each worker also records its shards' shared
/// stats into a [`StatsCollector`] as it finishes them — an arrival-order
/// aggregation that debug builds check against the ordered merge, pinning
/// the claim that thread scheduling cannot leak into the counters.
pub(crate) fn sweep_shards_threaded(
    sharded: &dyn ShardedRangeBatchKernel,
    requests: &[RangeBatchRequest],
    projection: &BatchProjection,
    plan: &[ShardBounds],
    workers: usize,
) -> Vec<RangeBatchResponse> {
    let chunk_size = plan.len().div_ceil(workers.max(1));
    let collector = StatsCollector::new();
    let partials: Vec<RangeBatchResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = plan
            .chunks(chunk_size)
            .map(|chunk| {
                let collector = collector.clone();
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|&bounds| {
                            let partial = sharded.sweep_shard(requests, projection, bounds);
                            collector.record(&partial.shared);
                            partial
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| {
                // Re-raise a shard worker's panic with its original payload,
                // so a kernel panic on a worker thread reaches the engine's
                // isolation boundary (catch_execution_panic) with its
                // message intact instead of being masked by a join error.
                handle
                    .join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });
    debug_assert_eq!(
        collector.summary().totals.pages_scanned,
        partials.iter().map(|p| p.shared.pages_scanned).sum::<u64>(),
        "arrival-order aggregation must agree with the ordered merge"
    );
    partials
}
