//! Engine unit tests: plan execution against the trait, batch equivalence,
//! fused-kernel sharing and error paths.

use crate::engine::{BatchStrategy, EngineError, Query, QueryEngine, QueryOutput, RangeMode};
use crate::index::{IndexError, SpatialIndex};
use crate::zindex::ZIndex;
use wazi_geom::{Point, Rect};
use wazi_storage::ExecStats;

/// A deterministic clustered dataset: a jittered grid with a dense corner.
fn dataset() -> Vec<Point> {
    let mut points = Vec::new();
    for i in 0..60 {
        for j in 0..60 {
            let x = i as f64 / 60.0 + ((i * 31 + j * 17) % 7) as f64 * 1e-4;
            let y = j as f64 / 60.0 + ((i * 13 + j * 29) % 5) as f64 * 1e-4;
            points.push(Point::new(x, y));
        }
    }
    // Dense hotspot: extra points in the lower-left quarter.
    for k in 0..900 {
        let x = (k % 30) as f64 / 120.0;
        let y = (k / 30) as f64 / 120.0;
        points.push(Point::new(x + 2e-5, y + 3e-5));
    }
    points
}

/// An overlapping range workload concentrated on the hotspot.
fn overlapping_rects() -> Vec<Rect> {
    let mut rects = Vec::new();
    for k in 0..12 {
        let shift = k as f64 * 0.01;
        rects.push(Rect::from_coords(
            0.02 + shift,
            0.03 + shift,
            0.22 + shift,
            0.21 + shift,
        ));
    }
    // Two byte-identical queries guarantee page sharing.
    rects.push(Rect::from_coords(0.05, 0.05, 0.2, 0.2));
    rects.push(Rect::from_coords(0.05, 0.05, 0.2, 0.2));
    rects
}

fn wazi_index() -> ZIndex {
    let train: Vec<Rect> = overlapping_rects();
    ZIndex::build_wazi(dataset(), &train)
}

#[test]
fn execute_agrees_with_the_raw_trait_calls() {
    let index = wazi_index();
    let engine = QueryEngine::new(&index);
    let rect = Rect::from_coords(0.1, 0.1, 0.35, 0.3);

    let mut stats = ExecStats::default();
    let expected = index.range_query(&rect, &mut stats);
    let report = engine.execute(&Query::range(rect)).unwrap();
    assert_eq!(report.output, QueryOutput::Points(expected.clone()));
    assert_eq!(report.stats.results, stats.results);
    assert_eq!(report.stats.points_scanned, stats.points_scanned);
    assert_eq!(report.output.result_count(), expected.len() as u64);

    let count = engine.execute(&Query::range_count(rect)).unwrap();
    assert_eq!(count.output, QueryOutput::Count(expected.len() as u64));

    let streamed = engine.execute(&Query::range_stream(rect)).unwrap();
    assert_eq!(
        streamed.output,
        QueryOutput::Streamed(expected.len() as u64)
    );

    let probe = expected[0];
    let found = engine.execute(&Query::point(probe)).unwrap();
    assert_eq!(found.output, QueryOutput::Found(true));
    let missed = engine
        .execute(&Query::point(Point::new(0.987, 0.003)))
        .unwrap();
    assert_eq!(missed.output, QueryOutput::Found(false));

    let mut stats = ExecStats::default();
    let expected_knn = index.knn(&Point::new(0.2, 0.2), 5, &mut stats);
    let knn = engine
        .execute(&Query::knn(Point::new(0.2, 0.2), 5))
        .unwrap();
    assert_eq!(knn.output, QueryOutput::Neighbors(expected_knn));
}

#[test]
fn execute_streaming_delivers_the_collected_points() {
    let index = wazi_index();
    let engine = QueryEngine::new(&index);
    let rect = Rect::from_coords(0.05, 0.05, 0.3, 0.25);
    let collected = match engine.execute(&Query::range(rect)).unwrap().output {
        QueryOutput::Points(points) => points,
        other => panic!("unexpected output {other:?}"),
    };
    let mut sunk = Vec::new();
    let report = engine
        .execute_streaming(&Query::range_stream(rect), &mut |p| sunk.push(*p))
        .unwrap();
    assert_eq!(report.output, QueryOutput::Streamed(collected.len() as u64));
    assert_eq!(sunk, collected);
}

/// The sequential batch path must be indistinguishable from a hand-written
/// per-query loop: same outputs, same per-query stats, zero shared stats.
#[test]
fn sequential_batch_equals_the_per_query_loop() {
    let index = wazi_index();
    let engine = QueryEngine::new(&index).with_strategy(BatchStrategy::Sequential);
    let mut batch: Vec<Query> = overlapping_rects()
        .into_iter()
        .enumerate()
        .map(|(i, rect)| match i % 3 {
            0 => Query::range(rect),
            1 => Query::range_count(rect),
            _ => Query::range_stream(rect),
        })
        .collect();
    batch.push(Query::point(Point::new(0.1, 0.1)));
    batch.push(Query::knn(Point::new(0.15, 0.12), 4));

    let report = engine.execute_batch(&batch).unwrap();
    assert_eq!(report.len(), batch.len());
    assert_eq!(report.fused_queries, 0);
    assert_eq!(report.shared_stats, ExecStats::default());
    let mut merged = ExecStats::default();
    for (query, got) in batch.iter().zip(&report.reports) {
        let expected = engine.execute(query).unwrap();
        assert_eq!(got.output, expected.output);
        assert_eq!(got.stats, {
            // Phase timings are wall-clock and never reproducible; compare
            // the deterministic counters only.
            let mut s = expected.stats;
            s.projection_ns = got.stats.projection_ns;
            s.scan_ns = got.stats.scan_ns;
            s
        });
        merged.merge(&got.stats);
    }
    assert_eq!(report.merged_stats(), merged);
}

/// The fused strategy returns byte-identical outputs and scans shared pages
/// once per batch: merged `pages_scanned` drops strictly below the
/// sequential loop's on an overlapping batch.
#[test]
fn fused_batch_matches_sequential_and_shares_pages() {
    let index = wazi_index();
    let sequential = QueryEngine::new(&index).with_strategy(BatchStrategy::Sequential);
    let fused = QueryEngine::new(&index).with_strategy(BatchStrategy::Fused);
    assert_eq!(fused.strategy(), BatchStrategy::Fused);

    let mut batch: Vec<Query> = overlapping_rects()
        .into_iter()
        .enumerate()
        .map(|(i, rect)| match i % 3 {
            0 => Query::range(rect),
            1 => Query::range_count(rect),
            _ => Query::range_stream(rect),
        })
        .collect();
    batch.push(Query::point(Point::new(0.07, 0.04)));
    batch.push(Query::knn(Point::new(0.3, 0.3), 3));

    let seq_report = sequential.execute_batch(&batch).unwrap();
    let fused_report = fused.execute_batch(&batch).unwrap();
    assert_eq!(fused_report.fused_queries, batch.len() - 2);
    assert_eq!(fused_report.len(), seq_report.len());
    for (a, b) in seq_report.reports.iter().zip(&fused_report.reports) {
        assert_eq!(a.output, b.output);
    }
    // Point comparisons and results are attributed per query either way.
    assert_eq!(
        fused_report.merged_stats().results,
        seq_report.merged_stats().results
    );
    assert!(
        fused_report.merged_stats().pages_scanned < seq_report.merged_stats().pages_scanned,
        "fused: {} pages, sequential: {} pages",
        fused_report.merged_stats().pages_scanned,
        seq_report.merged_stats().pages_scanned
    );
}

/// Fusion is an optimization, never a requirement: an index without a batch
/// kernel executes a fused-strategy batch sequentially.
#[test]
fn fused_strategy_falls_back_without_a_kernel() {
    struct Scan(Vec<Point>);
    impl SpatialIndex for Scan {
        fn name(&self) -> &'static str {
            "Scan"
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn data_bounds(&self) -> Rect {
            Rect::bounding(&self.0)
        }
        fn range_query(&self, query: &Rect, stats: &mut ExecStats) -> Vec<Point> {
            stats.points_scanned += self.0.len() as u64;
            let out: Vec<Point> = self
                .0
                .iter()
                .copied()
                .filter(|p| query.contains(p))
                .collect();
            stats.results += out.len() as u64;
            out
        }
        fn point_query(&self, p: &Point, stats: &mut ExecStats) -> bool {
            stats.points_scanned += self.0.len() as u64;
            self.0.contains(p)
        }
        fn size_bytes(&self) -> usize {
            0
        }
    }
    let scan = Scan(dataset());
    assert!(scan.range_batch_kernel().is_none());
    let engine = QueryEngine::new(&scan).with_strategy(BatchStrategy::Fused);
    let batch: Vec<Query> = overlapping_rects()
        .into_iter()
        .map(Query::range_count)
        .collect();
    let report = engine.execute_batch(&batch).unwrap();
    assert_eq!(report.fused_queries, 0);
    assert_eq!(report.len(), batch.len());
}

/// A fused batch with fewer than two range plans gains nothing from the
/// kernel and runs sequentially.
#[test]
fn fused_strategy_needs_at_least_two_range_plans() {
    let index = wazi_index();
    let engine = QueryEngine::new(&index).with_strategy(BatchStrategy::Fused);
    let batch = vec![
        Query::range_count(Rect::from_coords(0.1, 0.1, 0.2, 0.2)),
        Query::point(Point::new(0.5, 0.5)),
    ];
    let report = engine.execute_batch(&batch).unwrap();
    assert_eq!(report.fused_queries, 0);
}

#[test]
fn invalid_plans_reject_the_whole_batch_before_any_work() {
    let index = wazi_index();
    let engine = QueryEngine::new(&index);
    assert!(matches!(
        engine.execute(&Query::point(Point::new(f64::NAN, 0.5))),
        Err(EngineError::InvalidQuery(_))
    ));
    let batch = vec![
        Query::range_count(Rect::from_coords(0.1, 0.1, 0.2, 0.2)),
        Query::range(Rect::EMPTY),
    ];
    assert!(matches!(
        engine.execute_batch(&batch),
        Err(EngineError::InvalidQuery(_))
    ));
}

#[test]
fn engine_error_wraps_index_errors_and_displays() {
    let err: EngineError = IndexError::Unsupported("insert").into();
    assert_eq!(err, EngineError::Index(IndexError::Unsupported("insert")));
    assert!(err.to_string().contains("operation not supported"));
    assert!(std::error::Error::source(&err).is_some());
    let invalid = EngineError::InvalidQuery("nan".into());
    assert!(invalid.to_string().contains("invalid query"));
    assert!(std::error::Error::source(&invalid).is_none());
}

/// The fused path preserves input order across interleaved plan kinds.
#[test]
fn fused_batch_preserves_input_order() {
    let index = wazi_index();
    let engine = QueryEngine::new(&index).with_strategy(BatchStrategy::Fused);
    let batch = vec![
        Query::point(Point::new(0.11, 0.14)),
        Query::range_count(Rect::from_coords(0.0, 0.0, 0.3, 0.3)),
        Query::knn(Point::new(0.5, 0.5), 2),
        Query::range(Rect::from_coords(0.1, 0.1, 0.25, 0.25)),
        Query::range_stream(Rect::from_coords(0.05, 0.0, 0.3, 0.2)),
    ];
    let report = engine.execute_batch(&batch).unwrap();
    assert!(matches!(report.reports[0].output, QueryOutput::Found(_)));
    assert!(matches!(report.reports[1].output, QueryOutput::Count(_)));
    assert!(matches!(
        report.reports[2].output,
        QueryOutput::Neighbors(_)
    ));
    assert!(matches!(report.reports[3].output, QueryOutput::Points(_)));
    assert!(matches!(report.reports[4].output, QueryOutput::Streamed(_)));
}

/// An empty batch is legal and produces an empty report.
#[test]
fn empty_batch_is_a_no_op() {
    let index = wazi_index();
    for strategy in [BatchStrategy::Sequential, BatchStrategy::Fused] {
        let engine = QueryEngine::new(&index).with_strategy(strategy);
        let report = engine.execute_batch(&[]).unwrap();
        assert!(report.is_empty());
        assert_eq!(report.merged_stats(), ExecStats::default());
        assert_eq!(report.total_results(), 0);
    }
}

/// `RangeMode::Stream` dropped into a fused batch behaves like the
/// sequential measurement mode: counts match the collect mode's sizes.
#[test]
fn stream_counts_agree_across_modes_and_strategies() {
    let index = wazi_index();
    let rects = overlapping_rects();
    for strategy in [BatchStrategy::Sequential, BatchStrategy::Fused] {
        let engine = QueryEngine::new(&index).with_strategy(strategy);
        let collect: Vec<Query> = rects.iter().copied().map(Query::range).collect();
        let stream: Vec<Query> = rects.iter().copied().map(Query::range_stream).collect();
        let collected = engine.execute_batch(&collect).unwrap();
        let streamed = engine.execute_batch(&stream).unwrap();
        for (c, s) in collected.reports.iter().zip(&streamed.reports) {
            assert_eq!(
                c.output.result_count(),
                s.output.result_count(),
                "{:?} vs {:?}",
                c.output,
                s.output
            );
            assert!(matches!(s.output, QueryOutput::Streamed(_)));
        }
    }
}

/// The active-set sweep gives every request its own skip cursor, so the
/// fused kernel replicates each query's sequential walk bounding-box for
/// bounding-box: merged fused BB checks equal the sequential loop's (and
/// so do point comparisons and per-query skips).
#[test]
fn fused_bb_checks_equal_the_sequential_walks() {
    let index = wazi_index();
    let batch: Vec<Query> = overlapping_rects()
        .into_iter()
        .map(Query::range_count)
        .collect();
    let sequential = QueryEngine::new(&index)
        .with_strategy(BatchStrategy::Sequential)
        .execute_batch(&batch)
        .unwrap();
    let fused = QueryEngine::new(&index)
        .with_strategy(BatchStrategy::Fused)
        .execute_batch(&batch)
        .unwrap();
    assert_eq!(fused.bbs_checked(), sequential.bbs_checked());
    assert_eq!(
        fused.merged_stats().points_scanned,
        sequential.merged_stats().points_scanned
    );
    assert_eq!(
        fused.merged_stats().leaves_skipped,
        sequential.merged_stats().leaves_skipped
    );
    // Per-query attribution matches the sequential walk too, not just the
    // totals.
    for (f, s) in fused.reports.iter().zip(&sequential.reports) {
        assert_eq!(f.stats.bbs_checked, s.stats.bbs_checked);
        assert_eq!(f.stats.points_scanned, s.stats.points_scanned);
        assert_eq!(f.stats.leaves_skipped, s.stats.leaves_skipped);
        assert_eq!(f.stats.results, s.stats.results);
    }
}

/// `FusedParallel` is output- and counter-deterministic for every shard
/// count: answers are byte-identical to the sequential loop and the
/// physical-work counters match, however the span is partitioned.
#[test]
fn fused_parallel_matches_sequential_for_every_shard_count() {
    let index = wazi_index();
    let mut batch: Vec<Query> = overlapping_rects()
        .into_iter()
        .enumerate()
        .map(|(i, rect)| match i % 3 {
            0 => Query::range(rect),
            1 => Query::range_count(rect),
            _ => Query::range_stream(rect),
        })
        .collect();
    batch.push(Query::point(Point::new(0.07, 0.04)));
    batch.push(Query::knn(Point::new(0.3, 0.3), 3));
    let sequential = QueryEngine::new(&index)
        .with_strategy(BatchStrategy::Sequential)
        .execute_batch(&batch)
        .unwrap();
    for shards in [0, 1, 2, 4, 8, 64] {
        let parallel = QueryEngine::new(&index)
            .with_strategy(BatchStrategy::FusedParallel { shards })
            .execute_batch(&batch)
            .unwrap();
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.reports.iter().zip(&sequential.reports) {
            assert_eq!(p.output, s.output, "{shards} shards");
        }
        let p = parallel.merged_stats();
        let s = sequential.merged_stats();
        assert_eq!(p.points_scanned, s.points_scanned, "{shards} shards");
        assert_eq!(p.results, s.results, "{shards} shards");
        assert_eq!(p.nodes_visited, s.nodes_visited, "{shards} shards");
        assert!(
            p.pages_scanned <= s.pages_scanned,
            "{shards} shards: {} pages vs sequential {}",
            p.pages_scanned,
            s.pages_scanned
        );
        assert!(parallel.shards_used >= 1 && parallel.shards_used <= shards.max(1));
        assert_eq!(parallel.fused_queries, batch.len() - 2);
    }
}

/// Owner-based sharding is a zero-overhead handoff: a request's whole walk
/// executes in the shard owning its entry leaf, so parallel BB checks and
/// skips equal the single fused sweep's — which equals the sequential
/// loop's — exactly, for every shard count. No re-check is ever paid at a
/// shard boundary.
#[test]
fn fused_parallel_bb_checks_equal_the_single_sweep() {
    let index = wazi_index();
    let batch: Vec<Query> = overlapping_rects()
        .into_iter()
        .map(Query::range_count)
        .collect();
    let sequential = QueryEngine::new(&index)
        .with_strategy(BatchStrategy::Sequential)
        .execute_batch(&batch)
        .unwrap();
    let fused = QueryEngine::new(&index)
        .with_strategy(BatchStrategy::Fused)
        .execute_batch(&batch)
        .unwrap();
    assert_eq!(fused.bbs_checked(), sequential.bbs_checked());
    for shards in [2, 4, 8] {
        let parallel = QueryEngine::new(&index)
            .with_strategy(BatchStrategy::FusedParallel { shards })
            .execute_batch(&batch)
            .unwrap();
        assert_eq!(
            parallel.bbs_checked(),
            sequential.bbs_checked(),
            "{shards} shards: sharding must not add bounding-box checks"
        );
        assert_eq!(
            parallel.merged_stats().leaves_skipped,
            sequential.merged_stats().leaves_skipped,
            "{shards} shards: sharding must not change skip counts"
        );
    }
}

/// Degenerate parallel batches: empty, single-plan and smaller than the
/// shard count — all legal, all equivalent to sequential execution.
#[test]
fn fused_parallel_handles_degenerate_batches() {
    let index = wazi_index();
    let engine = QueryEngine::new(&index).with_strategy(BatchStrategy::FusedParallel { shards: 8 });

    let empty = engine.execute_batch(&[]).unwrap();
    assert!(empty.is_empty());
    assert_eq!(empty.merged_stats(), ExecStats::default());

    let single = vec![Query::range_count(Rect::from_coords(0.1, 0.1, 0.2, 0.2))];
    let report = engine.execute_batch(&single).unwrap();
    assert_eq!(report.fused_queries, 0, "one range plan runs sequentially");
    let expected = QueryEngine::new(&index)
        .with_strategy(BatchStrategy::Sequential)
        .execute_batch(&single)
        .unwrap();
    assert_eq!(report.reports[0].output, expected.reports[0].output);

    let three: Vec<Query> = overlapping_rects()
        .into_iter()
        .take(3)
        .map(Query::range)
        .collect();
    let report = engine.execute_batch(&three).unwrap();
    let expected = QueryEngine::new(&index)
        .with_strategy(BatchStrategy::Sequential)
        .execute_batch(&three)
        .unwrap();
    for (got, want) in report.reports.iter().zip(&expected.reports) {
        assert_eq!(got.output, want.output);
    }
    assert_eq!(report.fused_queries, 3);
}

/// The parallel strategy on an index without a kernel falls back to the
/// sequential loop, exactly like the plain fused strategy does.
#[test]
fn fused_parallel_falls_back_without_a_kernel() {
    struct Scan(Vec<Point>);
    impl SpatialIndex for Scan {
        fn name(&self) -> &'static str {
            "Scan"
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn data_bounds(&self) -> Rect {
            Rect::bounding(&self.0)
        }
        fn range_query(&self, query: &Rect, stats: &mut ExecStats) -> Vec<Point> {
            stats.points_scanned += self.0.len() as u64;
            self.0
                .iter()
                .copied()
                .filter(|p| query.contains(p))
                .collect()
        }
        fn point_query(&self, p: &Point, stats: &mut ExecStats) -> bool {
            stats.points_scanned += self.0.len() as u64;
            self.0.contains(p)
        }
        fn size_bytes(&self) -> usize {
            0
        }
    }
    let scan = Scan(dataset());
    let engine = QueryEngine::new(&scan).with_strategy(BatchStrategy::FusedParallel { shards: 4 });
    let batch: Vec<Query> = overlapping_rects()
        .into_iter()
        .map(Query::range_count)
        .collect();
    let report = engine.execute_batch(&batch).unwrap();
    assert_eq!(report.fused_queries, 0);
    assert_eq!(report.shards_used, 0);
    assert_eq!(report.len(), batch.len());
}

/// Driving the sharded kernel by hand: any disjoint partition of the
/// projected span, swept in any order and merged in shard order,
/// reproduces the single fused sweep's outputs and per-request walks bit
/// for bit. A request lives wholly in the shard owning its entry leaf, so
/// per-request counters — bounding-box checks and skips included — are
/// partition-invariant; only the shared page count may rise (a crossing
/// request's tail can refetch a page another shard also scans), bounded by
/// once per shard.
#[test]
fn manual_shard_partition_reproduces_the_full_sweep() {
    use crate::engine::{
        merge_shard_responses, plan_shard_bounds, RangeBatchKernel, RangeBatchRequest,
    };
    let index = wazi_index();
    let requests: Vec<RangeBatchRequest> = overlapping_rects()
        .into_iter()
        .enumerate()
        .map(|(i, rect)| RangeBatchRequest {
            rect,
            collect: i % 2 == 0,
        })
        .collect();
    let kernel: &dyn RangeBatchKernel = &index;
    let single = kernel.run_range_batch(&requests);
    let sharded = kernel.sharded().expect("ZIndex kernel is sharded");
    let projection = sharded.project_batch(&requests);
    for shards in [2, 3, 5] {
        let plan = plan_shard_bounds(&projection.intervals, shards);
        // Sweep in reverse order to prove order-independence of the work…
        let mut partials: Vec<_> = plan
            .iter()
            .rev()
            .map(|&bounds| sharded.sweep_shard(&requests, &projection, bounds))
            .collect();
        // …then merge in shard order, as the engine does.
        partials.reverse();
        let merged = merge_shard_responses(&requests, &projection, partials);
        assert_eq!(merged.outputs, single.outputs, "{shards} shards");
        assert!(
            merged.shared.pages_scanned >= single.shared.pages_scanned
                && merged.shared.pages_scanned <= single.shared.pages_scanned * plan.len() as u64,
            "{shards} shards: {} shared pages vs single {}",
            merged.shared.pages_scanned,
            single.shared.pages_scanned
        );
        for (m, s) in merged.per_query.iter().zip(&single.per_query) {
            assert_eq!(m.points_scanned, s.points_scanned);
            assert_eq!(m.results, s.results);
            assert_eq!(m.nodes_visited, s.nodes_visited);
            // The walk itself is partition-invariant under owner-based
            // sharding.
            assert_eq!(m.bbs_checked, s.bbs_checked);
            assert_eq!(m.leaves_skipped, s.leaves_skipped);
        }
    }
}

/// The scoped-thread fan-out itself (exercised directly, so single-core
/// hosts — where the engine's oversubscription guard sweeps inline — still
/// test the spawning path): threaded shard sweeps return the same partials
/// as inline sweeps, in plan order.
#[test]
fn threaded_fan_out_matches_inline_sweeps() {
    use crate::engine::{plan_shard_bounds, sweep_shards_threaded, RangeBatchRequest};
    let index = wazi_index();
    let requests: Vec<RangeBatchRequest> = overlapping_rects()
        .into_iter()
        .enumerate()
        .map(|(i, rect)| RangeBatchRequest {
            rect,
            collect: i % 2 == 0,
        })
        .collect();
    let sharded = crate::engine::RangeBatchKernel::sharded(&index).expect("sharded kernel");
    let projection = sharded.project_batch(&requests);
    let plan = plan_shard_bounds(&projection.intervals, 4);
    assert!(plan.len() >= 2, "need a real multi-shard plan");
    let inline: Vec<_> = plan
        .iter()
        .map(|&bounds| sharded.sweep_shard(&requests, &projection, bounds))
        .collect();
    // More workers than shards and fewer workers than shards (chunked runs)
    // must both reproduce the inline partials in plan order.
    for workers in [2, plan.len(), plan.len() + 3] {
        let threaded = sweep_shards_threaded(sharded, &requests, &projection, &plan, workers);
        assert_eq!(threaded.len(), inline.len(), "{workers} workers");
        for (t, i) in threaded.iter().zip(&inline) {
            assert_eq!(t.outputs, i.outputs);
            assert_eq!(t.shared.pages_scanned, i.shared.pages_scanned);
            for (a, b) in t.per_query.iter().zip(&i.per_query) {
                assert_eq!(a.points_scanned, b.points_scanned);
                assert_eq!(a.bbs_checked, b.bbs_checked);
                assert_eq!(a.results, b.results);
            }
        }
    }
}

/// The fused point-probe partition: answers and per-probe counters equal
/// the sequential loop's, while probes sharing an owning leaf share one
/// page visit — merged page visits drop strictly below the sequential
/// loop's on a batch with duplicate probes.
#[test]
fn fused_point_batch_matches_sequential_and_shares_pages() {
    let index = wazi_index();
    let points = dataset();
    let mut batch = vec![
        Query::point(points[0]),
        Query::point(points[1]),
        Query::point(points[0]),                // duplicate probe
        Query::point(Point::new(0.987, 0.003)), // miss inside the space
        Query::point(Point::new(12.5, -3.0)),   // far outside the data
        Query::point(points[0]),                // triplicate probe
    ];
    // A run of probes inside one hot page.
    for p in points.iter().take(8) {
        batch.push(Query::point(*p));
    }
    let sequential = QueryEngine::new(&index)
        .with_strategy(BatchStrategy::Sequential)
        .execute_batch(&batch)
        .unwrap();
    let fused = QueryEngine::new(&index)
        .with_strategy(BatchStrategy::Fused)
        .execute_batch(&batch)
        .unwrap();
    assert_eq!(fused.fused_points, batch.len());
    assert_eq!(fused.fused_queries, 0);
    for (i, (f, s)) in fused.reports.iter().zip(&sequential.reports).enumerate() {
        assert_eq!(f.output, s.output, "probe {i} answer differs");
        assert_eq!(f.stats.points_scanned, s.stats.points_scanned, "probe {i}");
        assert_eq!(f.stats.nodes_visited, s.stats.nodes_visited, "probe {i}");
        assert_eq!(f.stats.results, s.stats.results, "probe {i}");
    }
    assert!(
        fused.merged_stats().pages_scanned < sequential.merged_stats().pages_scanned,
        "duplicate probes must share page visits: fused {} vs sequential {}",
        fused.merged_stats().pages_scanned,
        sequential.merged_stats().pages_scanned
    );
    assert_eq!(
        fused.point_shared_stats.pages_scanned,
        fused.merged_stats().pages_scanned
            - fused
                .reports
                .iter()
                .map(|r| r.stats.pages_scanned)
                .sum::<u64>()
    );
}

/// The fused kNN partition: co-located plans driven through the shared
/// expanding-ring sweep answer bit-identically to the sequential doubling
/// loops, at no more page visits, with candidate pages shared per ring.
#[test]
fn fused_knn_batch_matches_sequential() {
    let index = wazi_index();
    let batch = vec![
        Query::knn(Point::new(0.10, 0.10), 5),
        Query::knn(Point::new(0.11, 0.12), 5),
        Query::knn(Point::new(0.12, 0.09), 3),
        Query::knn(Point::new(0.50, 0.50), 0), // trivial: k = 0
        Query::knn(Point::new(5.0, -2.0), 2),  // far outside the data
        Query::knn(Point::new(0.13, 0.11), 4),
    ];
    let sequential = QueryEngine::new(&index)
        .with_strategy(BatchStrategy::Sequential)
        .execute_batch(&batch)
        .unwrap();
    let fused = QueryEngine::new(&index)
        .with_strategy(BatchStrategy::Fused)
        .execute_batch(&batch)
        .unwrap();
    assert_eq!(fused.fused_knn, batch.len());
    for (i, (f, s)) in fused.reports.iter().zip(&sequential.reports).enumerate() {
        assert_eq!(f.output, s.output, "kNN plan {i} answer differs");
    }
    assert_eq!(
        fused.merged_stats().results,
        sequential.merged_stats().results
    );
    assert!(
        fused.merged_stats().pages_scanned <= sequential.merged_stats().pages_scanned,
        "ring sharing must not add page visits"
    );
    assert!(
        fused.knn_shared_stats.pages_scanned > 0,
        "co-located plans must share ring page visits"
    );
}

/// A mixed batch routes every partition through its kernel and reports the
/// per-plan-type fused counts; the partition shared stats sum to the
/// batch's total shared stats.
#[test]
fn mixed_fused_batch_reports_per_partition_counts() {
    let index = wazi_index();
    let mut batch: Vec<Query> = overlapping_rects()
        .into_iter()
        .map(Query::range_count)
        .collect();
    let probes = dataset();
    batch.push(Query::point(probes[10]));
    batch.push(Query::point(probes[10]));
    batch.push(Query::knn(Point::new(0.2, 0.2), 4));
    batch.push(Query::knn(Point::new(0.21, 0.2), 4));
    let ranges = batch.len() - 4;
    for strategy in [
        BatchStrategy::Fused,
        BatchStrategy::FusedParallel { shards: 4 },
    ] {
        let report = QueryEngine::new(&index)
            .with_strategy(strategy)
            .execute_batch(&batch)
            .unwrap();
        assert_eq!(report.fused_queries, ranges, "{strategy:?}");
        assert_eq!(report.fused_points, 2, "{strategy:?}");
        assert_eq!(report.fused_knn, 2, "{strategy:?}");
        assert_eq!(report.total_fused(), ranges + 4);
        let mut partitions = report.range_shared_stats;
        partitions.merge(&report.point_shared_stats);
        partitions.merge(&report.knn_shared_stats);
        assert_eq!(partitions, report.shared_stats, "{strategy:?}");
    }
}

/// `RangeMode` round-trips through `Query` constructors.
#[test]
fn range_mode_is_exposed_on_the_plan() {
    let rect = Rect::from_coords(0.0, 0.0, 0.5, 0.5);
    for (query, mode) in [
        (Query::range(rect), RangeMode::Collect),
        (Query::range_count(rect), RangeMode::Count),
        (Query::range_stream(rect), RangeMode::Stream),
    ] {
        match query {
            Query::Range { mode: m, .. } => assert_eq!(m, mode),
            other => panic!("unexpected plan {other:?}"),
        }
    }
}

/// Auto is a pure scheduler: outputs and deterministic per-query counters
/// on a mixed batch are bit-identical to the sequential loop, and the
/// report says which strategies the cost model picked.
#[test]
fn auto_matches_sequential_and_records_its_decisions() {
    use crate::engine::ChosenStrategy;
    let index = wazi_index();
    let mut batch: Vec<Query> = overlapping_rects().into_iter().map(Query::range).collect();
    batch.push(Query::point(Point::new(0.205, 0.205)));
    batch.push(Query::point(Point::new(0.48, 0.52)));
    batch.push(Query::knn(Point::new(0.2, 0.2), 5));
    batch.push(Query::knn(Point::new(0.7, 0.7), 3));

    let sequential = QueryEngine::new(&index)
        .with_strategy(BatchStrategy::Sequential)
        .execute_batch(&batch)
        .unwrap();
    let auto = QueryEngine::new(&index).execute_batch(&batch).unwrap();

    for (a, s) in auto.reports.iter().zip(&sequential.reports) {
        assert_eq!(a.output, s.output);
    }
    assert_eq!(
        auto.merged_stats().results,
        sequential.merged_stats().results
    );
    assert_eq!(auto.bbs_checked(), sequential.bbs_checked());

    // The fixed strategies leave the decision record empty...
    assert_eq!(sequential.strategy_chosen.iter().count(), 0);
    // ...while Auto records one decision per partition it had a choice on.
    let decisions: Vec<_> = auto.strategy_chosen.iter().collect();
    assert_eq!(decisions.len(), 3, "range + point + knn partitions");
    for (kind, decision) in decisions {
        match kind {
            "range" => {
                assert_eq!(decision.queries, overlapping_rects().len());
                let estimate = decision.estimate.expect("range partitions are modelled");
                match decision.chosen {
                    ChosenStrategy::Sequential => {
                        assert!(estimate.sequential_ns <= estimate.fused_ns);
                    }
                    ChosenStrategy::Fused | ChosenStrategy::FusedParallel { .. } => {
                        assert!(estimate.fused_ns <= estimate.sequential_ns);
                    }
                }
            }
            "point" => assert_eq!(decision.queries, 2),
            "knn" => assert_eq!(decision.queries, 2),
            other => panic!("unexpected partition kind {other}"),
        }
    }
}

/// A tiny batch of two far-apart range plans gives fusion nothing to share:
/// the cost model must route it sequentially, leaving fused counters at 0.
#[test]
fn auto_routes_tiny_disjoint_batches_sequentially() {
    use crate::engine::ChosenStrategy;
    let index = wazi_index();
    let batch = vec![
        Query::range_count(Rect::from_coords(0.02, 0.02, 0.03, 0.03)),
        Query::range_count(Rect::from_coords(0.95, 0.95, 0.96, 0.96)),
    ];
    let report = QueryEngine::new(&index).execute_batch(&batch).unwrap();
    let decision = report.strategy_chosen.range.expect("a choice was made");
    assert_eq!(decision.chosen, ChosenStrategy::Sequential);
    assert_eq!(report.fused_queries, 0);
    assert_eq!(report.shared_stats, ExecStats::default());

    let sequential = QueryEngine::new(&index)
        .with_strategy(BatchStrategy::Sequential)
        .execute_batch(&batch)
        .unwrap();
    for (a, s) in report.reports.iter().zip(&sequential.reports) {
        assert_eq!(a.output, s.output);
        // Timings are wall-clock; compare only the deterministic counters.
        let mut a_stats = a.stats;
        let mut s_stats = s.stats;
        a_stats.projection_ns = 0;
        a_stats.scan_ns = 0;
        s_stats.projection_ns = 0;
        s_stats.scan_ns = 0;
        assert_eq!(a_stats, s_stats);
    }
}

/// A delegating index that panics mid-kernel whenever a query touches its
/// poison rectangle — the genuine "panic inside a kernel entry point" shape
/// the engine's isolation boundary exists for.
struct PanickyIndex {
    inner: ZIndex,
    poison: Rect,
}

impl PanickyIndex {
    fn trip(&self, rect: &Rect) {
        if rect.overlaps(&self.poison) {
            panic!("poisoned rect {:?} touched", self.poison);
        }
    }
}

impl SpatialIndex for PanickyIndex {
    fn name(&self) -> &'static str {
        "Panicky"
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn data_bounds(&self) -> Rect {
        self.inner.data_bounds()
    }

    fn range_query(&self, query: &Rect, stats: &mut ExecStats) -> Vec<Point> {
        self.trip(query);
        self.inner.range_query(query, stats)
    }

    fn range_count(&self, query: &Rect, stats: &mut ExecStats) -> u64 {
        self.trip(query);
        self.inner.range_count(query, stats)
    }

    fn point_query(&self, p: &Point, stats: &mut ExecStats) -> bool {
        self.inner.point_query(p, stats)
    }

    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }
}

#[test]
fn execute_caught_converts_a_kernel_panic_into_an_error() {
    let index = PanickyIndex {
        inner: wazi_index(),
        poison: Rect::from_coords(0.8, 0.8, 0.9, 0.9),
    };
    let engine = QueryEngine::new(&index);

    let err = engine
        .execute_caught(&Query::range_count(Rect::from_coords(
            0.79, 0.79, 0.95, 0.95,
        )))
        .unwrap_err();
    match err {
        EngineError::ExecutionPanicked(msg) => {
            assert!(msg.contains("poisoned rect"), "message lost: {msg}");
        }
        other => panic!("expected ExecutionPanicked, got {other:?}"),
    }

    // The unwound kernel left the index intact: the same engine keeps
    // answering non-poisoned queries with correct results.
    let safe = Rect::from_coords(0.05, 0.05, 0.2, 0.2);
    let report = engine.execute_caught(&Query::range_count(safe)).unwrap();
    let mut stats = ExecStats::default();
    assert_eq!(
        report.output,
        QueryOutput::Count(index.inner.range_count(&safe, &mut stats))
    );
}

#[test]
fn execute_batch_caught_fails_the_batch_as_one_unit() {
    let index = PanickyIndex {
        inner: wazi_index(),
        poison: Rect::from_coords(0.8, 0.8, 0.9, 0.9),
    };
    // Sequential strategy: the panic still happens inside execute_batch,
    // and the whole batch fails as one error (per-query isolation is the
    // caller's job, via execute_caught per member).
    let engine = QueryEngine::new(&index).with_strategy(BatchStrategy::Sequential);
    let batch = vec![
        Query::range_count(Rect::from_coords(0.05, 0.05, 0.2, 0.2)),
        Query::range_count(Rect::from_coords(0.79, 0.79, 0.95, 0.95)),
    ];
    let err = engine.execute_batch_caught(&batch).unwrap_err();
    assert!(matches!(err, EngineError::ExecutionPanicked(_)));

    // One-by-one re-execution recovers every non-poisoned member.
    let ok = engine.execute_caught(&batch[0]).unwrap();
    assert!(matches!(ok.output, QueryOutput::Count(_)));
    assert!(engine.execute_caught(&batch[1]).is_err());
}

#[test]
fn panic_message_preserves_str_and_string_payloads() {
    use crate::engine::panic_message;
    let payload: Box<dyn std::any::Any + Send> = Box::new("literal payload");
    assert_eq!(panic_message(payload.as_ref()), "literal payload");
    let payload: Box<dyn std::any::Any + Send> = Box::new(String::from("owned payload"));
    assert_eq!(panic_message(payload.as_ref()), "owned payload");
    let payload: Box<dyn std::any::Any + Send> = Box::new(42u32);
    assert_eq!(panic_message(payload.as_ref()), "non-string panic payload");
}
