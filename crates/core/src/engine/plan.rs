//! Typed query plans: the request and response vocabulary of the engine.
//!
//! A [`Query`] is a self-contained description of one operation against a
//! spatial index — there is no out-parameter threading and no per-operation
//! method to pick. The engine executes a plan and answers with the matching
//! [`QueryOutput`] variant, so workloads (mixes of range, point and kNN
//! queries, as in the paper's evaluation) are plain `Vec<Query>` values that
//! generators can produce and the batch executor can reorder internally.

use crate::engine::EngineError;
use wazi_geom::{Point, Rect};

/// Execution mode of a range query: what happens to the matching points.
///
/// All three modes share one scan kernel per index and charge identical work
/// counters (the paper's cost model charges bounding boxes checked and
/// points compared, not allocation); they differ only in the per-match work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RangeMode {
    /// Materialize the matching points ([`QueryOutput::Points`]).
    Collect,
    /// Return only the number of matches ([`QueryOutput::Count`]).
    Count,
    /// Stream matches to a sink without materializing them
    /// ([`QueryOutput::Streamed`]). Without an explicit sink
    /// ([`crate::engine::QueryEngine::execute`]) the matches are counted and
    /// dropped, which is the measurement mode of the benchmark harness.
    Stream,
}

/// A typed query plan executed by [`crate::engine::QueryEngine`].
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Range query over `rect`, executed in the given [`RangeMode`].
    Range {
        /// The query rectangle (inclusive on all edges).
        rect: Rect,
        /// What to do with the matching points.
        mode: RangeMode,
    },
    /// Exact-match point query.
    Point(Point),
    /// The `k` nearest neighbours of `q`, ordered by increasing distance.
    Knn {
        /// Query point.
        q: Point,
        /// Number of neighbours requested (clamped to the index size).
        k: usize,
    },
}

impl Query {
    /// Materializing range query plan.
    pub fn range(rect: Rect) -> Self {
        Query::Range {
            rect,
            mode: RangeMode::Collect,
        }
    }

    /// Counting range query plan (the non-materializing measurement path).
    pub fn range_count(rect: Rect) -> Self {
        Query::Range {
            rect,
            mode: RangeMode::Count,
        }
    }

    /// Streaming range query plan.
    pub fn range_stream(rect: Rect) -> Self {
        Query::Range {
            rect,
            mode: RangeMode::Stream,
        }
    }

    /// Point query plan.
    pub fn point(p: Point) -> Self {
        Query::Point(p)
    }

    /// kNN query plan.
    pub fn knn(q: Point, k: usize) -> Self {
        Query::Knn { q, k }
    }

    /// Returns `true` for range plans (the ones the fused batch kernel can
    /// execute together).
    pub fn is_range(&self) -> bool {
        matches!(self, Query::Range { .. })
    }

    /// Validates the plan's geometry: every coordinate must be finite.
    /// Rejecting non-finite inputs up front keeps them out of the indexes'
    /// coordinate mappings, which are only defined over finite space.
    pub fn validate(&self) -> Result<(), EngineError> {
        match self {
            Query::Range { rect, .. } => {
                if !rect.lo.is_finite() || !rect.hi.is_finite() {
                    return Err(EngineError::InvalidQuery(format!(
                        "range rectangle has non-finite corners: {rect}"
                    )));
                }
            }
            Query::Point(p) => {
                if !p.is_finite() {
                    return Err(EngineError::InvalidQuery(format!("non-finite point {p}")));
                }
            }
            Query::Knn { q, .. } => {
                if !q.is_finite() {
                    return Err(EngineError::InvalidQuery(format!(
                        "non-finite kNN centre {q}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// The answer to a [`Query`], variant-matched to the plan that produced it.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// Materialized result of a [`RangeMode::Collect`] range query.
    Points(Vec<Point>),
    /// Result-set size of a [`RangeMode::Count`] range query.
    Count(u64),
    /// Number of points delivered by a [`RangeMode::Stream`] range query.
    Streamed(u64),
    /// Whether a [`Query::Point`] probe found its point.
    Found(bool),
    /// Neighbours of a [`Query::Knn`] query, ordered by increasing distance.
    Neighbors(Vec<Point>),
}

impl QueryOutput {
    /// Number of result points the operation produced, uniformly across
    /// variants (a found point probe counts as one result).
    pub fn result_count(&self) -> u64 {
        match self {
            QueryOutput::Points(points) => points.len() as u64,
            QueryOutput::Count(n) | QueryOutput::Streamed(n) => *n,
            QueryOutput::Found(found) => u64::from(*found),
            QueryOutput::Neighbors(points) => points.len() as u64,
        }
    }

    /// The materialized points, when the plan materialized any
    /// ([`QueryOutput::Points`] or [`QueryOutput::Neighbors`]).
    pub fn points(&self) -> Option<&[Point]> {
        match self {
            QueryOutput::Points(points) | QueryOutput::Neighbors(points) => Some(points),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_the_expected_plans() {
        let rect = Rect::from_coords(0.1, 0.1, 0.4, 0.3);
        assert_eq!(
            Query::range(rect),
            Query::Range {
                rect,
                mode: RangeMode::Collect
            }
        );
        assert_eq!(
            Query::range_count(rect),
            Query::Range {
                rect,
                mode: RangeMode::Count
            }
        );
        assert!(Query::range_stream(rect).is_range());
        assert!(!Query::point(Point::new(0.5, 0.5)).is_range());
        assert!(!Query::knn(Point::new(0.5, 0.5), 3).is_range());
    }

    #[test]
    fn validation_rejects_non_finite_geometry() {
        assert!(Query::range(Rect::UNIT).validate().is_ok());
        assert!(Query::point(Point::new(0.1, 0.2)).validate().is_ok());
        assert!(Query::knn(Point::new(0.1, 0.2), 0).validate().is_ok());

        assert!(Query::range(Rect::EMPTY).validate().is_err());
        assert!(Query::point(Point::new(f64::NAN, 0.0)).validate().is_err());
        assert!(Query::knn(Point::new(0.0, f64::INFINITY), 1)
            .validate()
            .is_err());
    }

    #[test]
    fn result_count_is_uniform_across_variants() {
        let two = vec![Point::new(0.1, 0.1), Point::new(0.2, 0.2)];
        assert_eq!(QueryOutput::Points(two.clone()).result_count(), 2);
        assert_eq!(QueryOutput::Count(7).result_count(), 7);
        assert_eq!(QueryOutput::Streamed(3).result_count(), 3);
        assert_eq!(QueryOutput::Found(true).result_count(), 1);
        assert_eq!(QueryOutput::Found(false).result_count(), 0);
        assert_eq!(QueryOutput::Neighbors(two.clone()).result_count(), 2);
        assert_eq!(
            QueryOutput::Points(two).points().map(<[Point]>::len),
            Some(2)
        );
        assert_eq!(QueryOutput::Count(7).points(), None);
    }
}
