//! The fused kNN batch seam: co-located kNN plans driven through a shared
//! expanding-ring sweep over the fused range kernel.
//!
//! Every index in this workspace answers kNN by the paper's fallback
//! strategy (Section 6.3): range queries with a doubling search radius
//! until the k-th candidate provably lies inside the swept box. Executed
//! sequentially, a batch of co-located kNN plans re-scans the same hot
//! pages once per plan per ring. The batched path shares those scans:
//!
//! 1. plans are **grouped by seed-box overlap** ([`group_knn_plans`]) — two
//!    plans whose initial sweep boxes overlap (transitively) will keep
//!    overlapping as their radii double, so they are the plans with pages
//!    to share;
//! 2. each group runs a **shared expanding-ring sweep**
//!    ([`run_knn_batch`]): per ring, the sweep boxes of every still-active
//!    plan in the group execute as *one* fused range batch through the
//!    index's [`RangeBatchKernel`], so a candidate page relevant to several
//!    plans is scanned once per ring instead of once per plan;
//! 3. a plan leaves its group's sweep the moment its own doubling loop
//!    would have terminated — the per-plan ring geometry, candidate sets
//!    and termination tests replicate the sequential fallback exactly, so
//!    outputs are bit-identical to [`crate::SpatialIndex::knn`].
//!
//! # Worked example
//!
//! ```
//! use wazi_core::{run_knn_batch, SpatialIndex, ZIndex};
//! use wazi_geom::Point;
//! use wazi_storage::ExecStats;
//!
//! let points: Vec<Point> = (0..1_000)
//!     .map(|i| Point::new((i % 40) as f64 / 40.0, (i / 40) as f64 / 25.0))
//!     .collect();
//! let index = ZIndex::build_base(points);
//! let kernel = index.range_batch_kernel().expect("the Z-index fuses range batches");
//!
//! // Three co-located plans plus a trivial k = 0 plan.
//! let plans = [
//!     (Point::new(0.20, 0.20), 4),
//!     (Point::new(0.21, 0.19), 4),
//!     (Point::new(0.22, 0.22), 2),
//!     (Point::new(0.90, 0.90), 0),
//! ];
//! let response = run_knn_batch(&index, kernel, &plans);
//! // Outputs are bit-identical to the sequential fallback, plan by plan.
//! let mut stats = ExecStats::default();
//! for ((q, k), got) in plans.iter().zip(&response.neighbors) {
//!     assert_eq!(got, &index.knn(q, *k, &mut stats));
//! }
//! ```

use crate::engine::batch::{
    RangeBatchKernel, RangeBatchOutput, RangeBatchRequest, RangeBatchResponse,
};
use crate::index::SpatialIndex;
use wazi_geom::{Point, Rect};
use wazi_storage::ExecStats;

/// One plan's progress through the doubling-radius kNN fallback.
///
/// The state machine is shared verbatim by the sequential fallback
/// ([`crate::SpatialIndex::knn`]'s default) and the batched ring sweep, so
/// the two paths cannot drift apart: both ask for the next sweep rectangle
/// ([`KnnSweepState::sweep`]), run it (one `range_query`, or one slot of a
/// fused ring batch), and feed the candidates back
/// ([`KnnSweepState::absorb`]) until the plan resolves.
#[derive(Debug, Clone)]
pub(crate) struct KnnSweepState {
    q: Point,
    /// Requested neighbour count, clamped to the index size.
    k: usize,
    bounds: Rect,
    radius: f64,
}

impl KnnSweepState {
    /// Starts the doubling loop for one plan; `None` when the plan resolves
    /// to an empty answer without scanning (`k == 0` or an empty index).
    ///
    /// The initial radius assumes a roughly uniform density over the data
    /// bounds so the first box is expected to hold about `k` points; see
    /// the sequential fallback for the full rationale.
    pub(crate) fn new(q: Point, k: usize, index_len: usize, bounds: Rect) -> Option<Self> {
        if k == 0 || index_len == 0 {
            return None;
        }
        let k = k.min(index_len);
        let area = bounds.area();
        let radius = if area.is_finite() && area > 0.0 {
            (k as f64 * area / index_len.max(1) as f64).sqrt()
        } else {
            0.0
        }
        .max(1e-6);
        Some(Self {
            q,
            k,
            bounds,
            radius,
        })
    }

    /// The rectangle the next ring sweeps and whether it provably covers
    /// every indexed point (in which case the ring's answer is final).
    pub(crate) fn sweep(&self) -> (Rect, bool) {
        let query = Rect::from_coords(
            self.q.x - self.radius,
            self.q.y - self.radius,
            self.q.x + self.radius,
            self.q.y + self.radius,
        );
        let covers_everything = self.bounds.is_empty() || query.contains_rect(&self.bounds);
        let sweep = if covers_everything {
            self.bounds
        } else {
            query
        };
        (sweep, covers_everything)
    }

    /// Feeds one ring's candidates back into the plan. Returns the final
    /// neighbour list when the plan resolves; otherwise the radius doubles
    /// and the plan stays in its group's next ring.
    pub(crate) fn absorb(
        &mut self,
        covers_everything: bool,
        mut candidates: Vec<Point>,
    ) -> Option<Vec<Point>> {
        if covers_everything || candidates.len() >= self.k {
            let q = self.q;
            candidates.sort_by(|a, b| a.distance_squared(&q).total_cmp(&b.distance_squared(&q)));
            candidates.truncate(self.k);
            if covers_everything {
                return Some(candidates);
            }
            let kth = candidates[self.k - 1].distance(&q);
            if kth <= self.radius {
                return Some(candidates);
            }
        }
        self.radius *= 2.0;
        None
    }
}

/// The batched answer to a slice of kNN plans: parallel to the plan slice.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnBatchResponse {
    /// Neighbour lists in plan order, each ordered by increasing distance —
    /// bit-identical to what [`crate::SpatialIndex::knn`] returns for the
    /// same plan.
    pub neighbors: Vec<Vec<Point>>,
    /// Work attributable to a single plan: its ring sweeps' projections,
    /// bounding-box checks, point comparisons and candidate counts, charged
    /// exactly as its own sequential doubling loop charges them.
    pub per_query: Vec<ExecStats>,
    /// Work the ring sweeps performed once on behalf of several plans:
    /// visits of candidate pages shared within a ring, plus kernel phase
    /// timings.
    pub shared: ExecStats,
}

/// Groups kNN plans whose seed sweep boxes overlap in x extent,
/// transitively: one sorted sweep over the boxes' x intervals yields the
/// connected components of the x-overlap graph in `O(n log n)` — each group
/// lists plan indices in ascending order, groups ordered by their leftmost
/// box.
///
/// Plans in one group are the ones with candidate pages to share — their
/// boxes only grow as radii double, so an initial overlap never goes away.
/// x-overlap is a *superset* of full box overlap, so a group may also hold
/// y-disjoint plans; that over-grouping only affects scheduling (a fused
/// ring batch serves disjoint requests at no extra shared work), never
/// answers. Plans in different groups start disjoint on x and are swept in
/// separate ring loops, which keeps every fused ring batch focused on one
/// hot region without an `O(n²)` pairwise overlap pass.
pub fn group_knn_plans(seed_boxes: &[Rect]) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..seed_boxes.len()).collect();
    order.sort_unstable_by(|&a, &b| {
        seed_boxes[a]
            .lo
            .x
            .total_cmp(&seed_boxes[b].lo.x)
            .then_with(|| a.cmp(&b))
    });
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut reach = f64::NEG_INFINITY;
    for i in order {
        let rect = &seed_boxes[i];
        // A box starting past the running x frontier cannot overlap any
        // earlier box (they all end at or before `reach`), so a new
        // component starts.
        if rect.lo.x > reach || groups.is_empty() {
            groups.push(Vec::new());
            reach = rect.hi.x;
        } else {
            reach = reach.max(rect.hi.x);
        }
        groups
            .last_mut()
            .expect("a group was just pushed or already exists")
            .push(i);
    }
    for group in &mut groups {
        group.sort_unstable();
    }
    groups
}

/// Executes a batch of kNN plans `(q, k)` through the index's fused range
/// kernel: plans are grouped by seed-box overlap and each group runs a
/// shared expanding-ring sweep, one fused range batch per ring (see the
/// module docs). Outputs are bit-identical to calling
/// [`crate::SpatialIndex::knn`] per plan.
pub fn run_knn_batch(
    index: &dyn SpatialIndex,
    kernel: &dyn RangeBatchKernel,
    plans: &[(Point, usize)],
) -> KnnBatchResponse {
    run_knn_batch_with(index, plans, &mut |requests| {
        kernel.run_range_batch(requests)
    })
}

/// [`run_knn_batch`] with a caller-supplied ring runner, so the engine can
/// route each ring's fused range batch through the sharded parallel path.
pub(crate) fn run_knn_batch_with(
    index: &dyn SpatialIndex,
    plans: &[(Point, usize)],
    run_ring: &mut dyn FnMut(&[RangeBatchRequest]) -> RangeBatchResponse,
) -> KnnBatchResponse {
    let mut response = KnnBatchResponse {
        neighbors: vec![Vec::new(); plans.len()],
        per_query: vec![ExecStats::default(); plans.len()],
        shared: ExecStats::default(),
    };
    let len = index.len();
    let bounds = index.data_bounds();
    let mut states: Vec<Option<KnnSweepState>> = plans
        .iter()
        .map(|&(q, k)| KnnSweepState::new(q, k, len, bounds))
        .collect();
    // Trivial plans (k == 0, empty index) resolved to empty lists above;
    // the live ones are grouped by their seed boxes.
    let live: Vec<usize> = (0..plans.len()).filter(|&i| states[i].is_some()).collect();
    let seeds: Vec<Rect> = live
        .iter()
        .map(|&i| states[i].as_ref().expect("live plans have state").sweep().0)
        .collect();
    for group in group_knn_plans(&seeds) {
        // A singleton group has nothing to share: run its doubling loop
        // directly against the index — the same state machine, so the same
        // answer and the same per-query counters as the sequential
        // fallback — instead of paying the fused-kernel (and, under the
        // parallel strategy, shard-planning and thread-scope) machinery
        // once per ring for a single request.
        if let [lone] = group.as_slice() {
            let i = live[*lone];
            let state = states[i].as_mut().expect("live plans have state");
            let stats = &mut response.per_query[i];
            response.neighbors[i] = loop {
                let (sweep, covers_everything) = state.sweep();
                let candidates = index.range_query(&sweep, stats);
                if let Some(neighbors) = state.absorb(covers_everything, candidates) {
                    break neighbors;
                }
            };
            continue;
        }
        let mut active: Vec<usize> = group.into_iter().map(|g| live[g]).collect();
        while !active.is_empty() {
            let mut covers = Vec::with_capacity(active.len());
            let requests: Vec<RangeBatchRequest> = active
                .iter()
                .map(|&i| {
                    let (rect, covers_everything) =
                        states[i].as_ref().expect("active plans have state").sweep();
                    covers.push(covers_everything);
                    RangeBatchRequest {
                        rect,
                        collect: true,
                    }
                })
                .collect();
            let ring = run_ring(&requests);
            debug_assert_eq!(ring.outputs.len(), active.len());
            response.shared.merge(&ring.shared);
            let mut still_active = Vec::with_capacity(active.len());
            for (((i, output), stats), covers_everything) in active
                .iter()
                .copied()
                .zip(ring.outputs)
                .zip(&ring.per_query)
                .zip(covers)
            {
                response.per_query[i].merge(stats);
                let candidates = match output {
                    RangeBatchOutput::Points(points) => points,
                    RangeBatchOutput::Count(_) => {
                        unreachable!("ring requests always collect candidates")
                    }
                };
                let state = states[i].as_mut().expect("active plans have state");
                match state.absorb(covers_everything, candidates) {
                    Some(done) => response.neighbors[i] = done,
                    None => still_active.push(i),
                }
            }
            active = still_active;
        }
    }
    response
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn grouping_is_transitive_and_deterministic() {
        // A overlaps B, B overlaps C (A and C disjoint), D is alone.
        let boxes = [
            rect(0.0, 0.0, 0.2, 0.2),
            rect(0.15, 0.0, 0.35, 0.2),
            rect(0.3, 0.0, 0.5, 0.2),
            rect(0.8, 0.8, 0.9, 0.9),
        ];
        assert_eq!(group_knn_plans(&boxes), vec![vec![0, 1, 2], vec![3]]);
        assert!(group_knn_plans(&[]).is_empty());
    }

    #[test]
    fn state_machine_replicates_the_doubling_loop() {
        let bounds = Rect::UNIT;
        let mut state = KnnSweepState::new(Point::new(0.5, 0.5), 2, 100, bounds)
            .expect("non-trivial plan has state");
        // First sweep is a finite box centred on the query.
        let (sweep, covers) = state.sweep();
        assert!(!covers);
        assert!(sweep.contains(&Point::new(0.5, 0.5)));
        // Too few candidates: the radius doubles.
        assert_eq!(state.absorb(covers, vec![Point::new(0.5, 0.51)]), None);
        let (wider, _) = state.sweep();
        assert!(wider.width() > sweep.width());
        // Enough close candidates resolve the plan, ordered by distance.
        let done = state
            .absorb(
                false,
                vec![
                    Point::new(0.9, 0.9),
                    Point::new(0.5, 0.5),
                    Point::new(0.5, 0.51),
                ],
            )
            .expect("two close candidates inside the radius resolve");
        assert_eq!(done, vec![Point::new(0.5, 0.5), Point::new(0.5, 0.51)]);
    }

    #[test]
    fn trivial_plans_resolve_without_state() {
        assert!(KnnSweepState::new(Point::new(0.5, 0.5), 0, 100, Rect::UNIT).is_none());
        assert!(KnnSweepState::new(Point::new(0.5, 0.5), 3, 0, Rect::UNIT).is_none());
    }
}
