//! The fused batch-execution seam between the engine and the indexes.
//!
//! The engine speaks to indexes through [`crate::SpatialIndex`], one query
//! at a time. An index that can do better on a *batch* of range queries —
//! WaZI scans each relevant page once per batch instead of once per
//! overlapping query — advertises the capability by returning itself from
//! [`crate::SpatialIndex::range_batch_kernel`] and implementing
//! [`RangeBatchKernel`]. The engine's fused strategy routes every range
//! plan of a batch through the kernel and falls back to the sequential loop
//! for indexes without one, so fusion is purely an optimization: answers
//! are identical either way.
//!
//! On top of the plain kernel sits the *sharded* capability
//! ([`ShardedRangeBatchKernel`]): a kernel that can split its fused sweep
//! into two phases — projecting every request onto a one-dimensional sweep
//! address space ([`ShardedRangeBatchKernel::project_batch`]) and sweeping
//! the requests owned by any contiguous slice of that space independently
//! ([`ShardedRangeBatchKernel::sweep_shard`]). Ownership is by entry
//! address: the shard containing a request's first address sweeps the
//! request's whole interval, so every request's walk is its solo sequential
//! walk and shards never exchange skip state. Because ownership partitions
//! the requests, the engine can sweep shards on worker threads and merge
//! the partial responses deterministically ([`merge_shard_responses`]):
//! point outputs concatenate in shard order (each request's output comes
//! wholly from its owning shard), counts and counters sum. For WaZI the
//! address space is the leaf list, for Flood the column grid, for the
//! packed R-trees (STR/CUR) the clustered page list, and for QUASII the
//! cracked x-slice list.

use wazi_geom::{Point, Rect};
use wazi_storage::ExecStats;

use super::cost::KernelClass;

/// One range request of a fused batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeBatchRequest {
    /// The query rectangle.
    pub rect: Rect,
    /// Whether the matching points must be materialized. Counting and
    /// streaming plans set this to `false`: the kernel only tallies matches.
    pub collect: bool,
}

/// Per-request answer of a fused batch.
#[derive(Debug, Clone, PartialEq)]
pub enum RangeBatchOutput {
    /// Materialized matches of a collecting request, in the index's scan
    /// order (identical to the order the sequential path produces).
    Points(Vec<Point>),
    /// Match count of a non-collecting request.
    Count(u64),
}

/// The kernel's answer to a batch: parallel to the request slice.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeBatchResponse {
    /// One output per request, in request order.
    pub outputs: Vec<RangeBatchOutput>,
    /// Work attributable to a single request (its corner projections, its
    /// bounding-box checks, its point comparisons and results).
    pub per_query: Vec<ExecStats>,
    /// Work the kernel performed once on behalf of the whole batch: visits
    /// of pages shared by several requests, batch-level skipping, and the
    /// kernel's phase timings.
    pub shared: ExecStats,
}

impl RangeBatchResponse {
    /// A zero-work response shaped for `requests`: empty point vectors for
    /// collecting requests, zero counts otherwise, default stats. Kernels
    /// and the shard merger start from this shape and fill it in.
    pub fn zeroed(requests: &[RangeBatchRequest]) -> Self {
        Self {
            outputs: requests
                .iter()
                .map(|r| {
                    if r.collect {
                        RangeBatchOutput::Points(Vec::new())
                    } else {
                        RangeBatchOutput::Count(0)
                    }
                })
                .collect(),
            per_query: vec![ExecStats::default(); requests.len()],
            shared: ExecStats::default(),
        }
    }
}

/// Fused execution of many range requests in one pass over the index.
///
/// # Contract
///
/// Implementations must return, for every request, exactly the answer the
/// sequential [`crate::SpatialIndex::range_query`] /
/// [`crate::SpatialIndex::range_count`] path returns — same points, same
/// order — while being free to share physical work (page visits) between
/// requests and to account that shared work in
/// [`RangeBatchResponse::shared`] rather than per query. Per-request
/// bounding-box checks and point comparisons must not exceed what the
/// sequential path would charge: fusion shares work, it never adds any.
pub trait RangeBatchKernel {
    /// Executes all `requests` in one fused pass.
    fn run_range_batch(&self, requests: &[RangeBatchRequest]) -> RangeBatchResponse;

    /// The kernel's sharded capability, when it has one.
    ///
    /// Returning `Some` promises that
    /// [`ShardedRangeBatchKernel::sweep_shard`] over any disjoint partition
    /// of the projected span, merged with [`merge_shard_responses`], is
    /// output-equivalent to [`RangeBatchKernel::run_range_batch`]. The
    /// default advertises nothing, and
    /// [`crate::BatchStrategy::FusedParallel`] falls back to the
    /// single-threaded fused sweep.
    fn sharded(&self) -> Option<&dyn ShardedRangeBatchKernel> {
        None
    }

    /// The kernel's physical profile, consumed by the engine's cost model
    /// under [`crate::BatchStrategy::Auto`]. The default declares a
    /// page-backed sweep (the common case: leaves, columns, clustered
    /// pages, cracked slices); kernels sweeping a flat in-memory array with
    /// no fetch to share override this with
    /// [`KernelClass::FlatArray`].
    fn cost_class(&self) -> KernelClass {
        KernelClass::PageBacked
    }
}

/// Inclusive interval of sweep addresses a request's fused scan covers
/// (leaf indices for the Z-index, grid columns for Flood).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepInterval {
    /// First address the request's sweep may touch.
    pub lo: u32,
    /// Last address the request's sweep may touch (inclusive).
    pub hi: u32,
}

/// A contiguous half-open slice `[start, end)` of a kernel's sweep address
/// space, assigned to one worker by the engine's shard planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardBounds {
    /// First address of the shard.
    pub start: u32,
    /// One past the last address of the shard.
    pub end: u32,
}

/// The projection phase of a sharded fused batch: every request mapped onto
/// the kernel's sweep address space, with the work that mapping cost.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchProjection {
    /// One sweep interval per request, in request order.
    pub intervals: Vec<SweepInterval>,
    /// Per-request projection work (e.g. WaZI's Algorithm-1 descents),
    /// charged exactly as the sequential path would charge it.
    pub per_query: Vec<ExecStats>,
    /// Wall-clock time the projection took, in nanoseconds; merged into the
    /// response's shared projection-phase time.
    pub elapsed_ns: u64,
}

/// A fused kernel whose sweep can be split into disjoint address-space
/// shards and run on worker threads (`Sync` because shard sweeps execute
/// concurrently against the same index).
///
/// The engine drives the protocol: one [`project_batch`] call, a shard plan
/// over the projected intervals ([`plan_shard_bounds_weighted`] when the
/// kernel exposes [`address_counts`], [`plan_shard_bounds`] otherwise), one
/// [`sweep_shard`] call per shard (possibly concurrent), and a
/// deterministic merge ([`merge_shard_responses`]).
///
/// Sharding is **owner-based**: a request belongs to the one shard whose
/// bounds contain its interval's *first* address, and that shard sweeps the
/// request over its whole interval — intervals are never split across
/// shards. Each request's walk is therefore exactly its solo sequential
/// walk, look-ahead jumps included, so per-request bounding-box checks and
/// skip counts are identical to the single fused sweep's whatever the shard
/// count, and no skip-cursor state ever needs to be handed across a shard
/// boundary (the zero-overhead cross-shard handoff). The price is that a
/// page inside a crossing request's tail may be fetched by more than one
/// shard; page visits remain bounded by the sequential loop's.
///
/// [`project_batch`]: ShardedRangeBatchKernel::project_batch
/// [`sweep_shard`]: ShardedRangeBatchKernel::sweep_shard
/// [`address_counts`]: ShardedRangeBatchKernel::address_counts
pub trait ShardedRangeBatchKernel: RangeBatchKernel + Sync {
    /// Maps every request onto the sweep address space, charging the
    /// projection work per request. Called once per batch, before any
    /// shard sweeps.
    fn project_batch(&self, requests: &[RangeBatchRequest]) -> BatchProjection;

    /// Runs the fused sweep for every request whose interval *starts*
    /// inside `bounds`, over the request's whole interval (owner-based
    /// sharding — see the trait docs). Requests entering elsewhere
    /// contribute nothing; the returned response holds outputs and counters
    /// for exactly the requests this shard owns.
    fn sweep_shard(
        &self,
        requests: &[RangeBatchRequest],
        projection: &BatchProjection,
        bounds: ShardBounds,
    ) -> RangeBatchResponse;

    /// Per-address point counts over the sweep address space (points per
    /// leaf for the Z-index, per column for Flood), consumed by the
    /// work-weighted shard planner ([`plan_shard_bounds_weighted`]): shards
    /// then balance estimated *scan* work, not just interval coverage. The
    /// default advertises nothing and the engine falls back to the
    /// coverage-weighted planner.
    fn address_counts(&self) -> Option<Vec<u64>> {
        None
    }
}

/// The hull `[lo, hi]` of a non-empty interval slice.
fn interval_hull(intervals: &[SweepInterval]) -> Option<(u32, u32)> {
    let first = intervals.first()?;
    let mut lo = first.lo;
    let mut hi = first.hi;
    for interval in &intervals[1..] {
        lo = lo.min(interval.lo);
        hi = hi.max(interval.hi);
    }
    Some((lo, hi))
}

/// Cuts the hull `[lo, lo + weights.len())` into up to `shards` contiguous
/// bounds so each carries roughly its fair share of the weight. Every
/// weight must be at least one, so zero-work gaps still advance the cuts
/// and no shard degenerates to zero width.
///
/// The cut decision looks one address ahead: a shard closes *before* an
/// address whose weight would overshoot the fair share of the remaining
/// work by more than stopping short undershoots it — so a single heavy
/// address (a stack of walks entering one leaf) lands in the shard where it
/// balances best instead of always being dragged into the current one.
fn cut_balanced(lo: u32, weights: &[i64], shards: usize) -> Vec<ShardBounds> {
    let span = weights.len();
    let mut bounds = Vec::with_capacity(shards);
    let mut start = 0usize;
    let mut carried = 0i64;
    let mut remaining: i64 = weights.iter().sum();
    for (position, &weight) in weights.iter().enumerate() {
        let shards_left = shards - bounds.len();
        // Cutting before this address must leave one address for each of
        // the remaining shards.
        let room_left = span - position >= shards_left - 1;
        if shards_left > 1 && carried > 0 && room_left {
            let target = (carried + remaining) / shards_left as i64;
            let overshoot = carried + weight - target;
            let undershoot = target - carried;
            if overshoot > 0 && overshoot > undershoot {
                bounds.push(ShardBounds {
                    start: lo + start as u32,
                    end: lo + position as u32,
                });
                start = position;
                carried = 0;
            }
        }
        carried += weight;
        remaining -= weight;
    }
    bounds.push(ShardBounds {
        start: lo + start as u32,
        end: lo + span as u32,
    });
    debug_assert!(bounds.len() <= shards);
    bounds
}

/// Plans up to `shards` disjoint, contiguous, work-balanced shard bounds
/// covering the hull of the projected intervals.
///
/// Work is estimated as interval coverage: every (request, address) pair
/// with the address inside the request's interval counts one unit. The
/// planner cuts the hull so each shard carries roughly `total / shards`
/// units, which balances overlapping batches far better than equal-width
/// cuts (hot spans where many intervals stack are split, cold spans are
/// merged). Returns fewer bounds than requested when the hull has fewer
/// addresses than shards; returns an empty plan for an empty batch.
///
/// This is the fallback planner; when per-address point counts are
/// available ([`ShardedRangeBatchKernel::address_counts`]) the engine uses
/// [`plan_shard_bounds_weighted`], which balances estimated scan work
/// rather than check work alone.
pub fn plan_shard_bounds(intervals: &[SweepInterval], shards: usize) -> Vec<ShardBounds> {
    let Some((lo, hi)) = interval_hull(intervals) else {
        return Vec::new();
    };
    let span = (hi - lo + 1) as usize;
    let shards = shards.clamp(1, span);
    if shards == 1 {
        return vec![ShardBounds {
            start: lo,
            end: hi + 1,
        }];
    }
    // Coverage histogram over the hull via a difference array.
    let mut diff = vec![0i64; span + 1];
    for interval in intervals {
        diff[(interval.lo - lo) as usize] += 1;
        diff[(interval.hi - lo) as usize + 1] -= 1;
    }
    let mut coverage = 0i64;
    let mut weights = Vec::with_capacity(span);
    for d in &diff[..span] {
        coverage += d;
        weights.push(coverage.max(1));
    }
    cut_balanced(lo, &weights, shards)
}

/// Plans up to `shards` work-weighted shard bounds from per-address point
/// counts ([`ShardedRangeBatchKernel::address_counts`]).
///
/// Under owner-based sharding a request's *whole* walk executes in the
/// shard containing its entry address, so the planner charges each entry
/// address the estimated cost of the walks starting there: one
/// bounding-box check per covered address plus one point comparison per
/// point stored under the interval (computed from a prefix sum over
/// `counts`, so planning stays linear in requests plus addresses). Cuts
/// then equalize estimated *scan* work per shard — a shard owning few but
/// point-heavy intervals ends up as narrow as one owning many light
/// intervals — where the coverage planner ([`plan_shard_bounds`]) can only
/// equalize check work. Addresses beyond `counts` weigh zero points;
/// returns an empty plan for an empty batch.
pub fn plan_shard_bounds_weighted(
    intervals: &[SweepInterval],
    shards: usize,
    counts: &[u64],
) -> Vec<ShardBounds> {
    let Some((lo, hi)) = interval_hull(intervals) else {
        return Vec::new();
    };
    let span = (hi - lo + 1) as usize;
    let shards = shards.clamp(1, span);
    if shards == 1 {
        return vec![ShardBounds {
            start: lo,
            end: hi + 1,
        }];
    }
    // Prefix sums of the point counts over the hull: points(a..=b) =
    // prefix[b + 1] - prefix[a], with addresses relative to `lo`.
    let mut prefix = Vec::with_capacity(span + 1);
    prefix.push(0u64);
    for offset in 0..span {
        let count = counts.get(lo as usize + offset).copied().unwrap_or(0);
        prefix.push(prefix[offset] + count);
    }
    // Estimated whole-walk work of every request, charged to the address
    // where its walk enters the sweep (owner-based sharding).
    let mut weights = vec![0i64; span];
    for interval in intervals {
        let enter = (interval.lo - lo) as usize;
        let exit = (interval.hi - lo) as usize;
        let checks = (exit - enter + 1) as i64;
        let scans = (prefix[exit + 1] - prefix[enter]) as i64;
        weights[enter] += checks + scans;
    }
    for weight in &mut weights {
        *weight = (*weight).max(1);
    }
    cut_balanced(lo, &weights, shards)
}

/// Runs a sharded kernel's full protocol as one unsharded sweep: project
/// the batch, sweep the whole address space `[0, span_end)` on the calling
/// thread, and fold the projection in.
///
/// This is the canonical [`RangeBatchKernel::run_range_batch`] body for
/// kernels that implement [`ShardedRangeBatchKernel`] — every such kernel
/// shares it instead of restating the project/sweep/merge boilerplate.
pub fn run_full_sweep(
    kernel: &dyn ShardedRangeBatchKernel,
    requests: &[RangeBatchRequest],
    span_end: u32,
) -> RangeBatchResponse {
    if requests.is_empty() {
        return RangeBatchResponse::zeroed(requests);
    }
    let projection = kernel.project_batch(requests);
    let full_span = ShardBounds {
        start: 0,
        end: span_end,
    };
    let swept = kernel.sweep_shard(requests, &projection, full_span);
    merge_shard_responses(requests, &projection, vec![swept])
}

/// Deterministically merges per-shard partial responses (in ascending shard
/// order) with the batch's projection into one [`RangeBatchResponse`].
///
/// Point outputs concatenate in shard order — under owner-based sharding a
/// request's output is produced wholly by the one shard owning its entry
/// address, so concatenation reproduces the single sweep's scan order
/// exactly. Counts, per-query counters and shared counters sum; the
/// projection's per-request work and wall-clock are folded in so the merged
/// response accounts for the whole fused execution.
pub fn merge_shard_responses(
    requests: &[RangeBatchRequest],
    projection: &BatchProjection,
    responses: Vec<RangeBatchResponse>,
) -> RangeBatchResponse {
    let mut merged = RangeBatchResponse::zeroed(requests);
    merged.per_query.clone_from_slice(&projection.per_query);
    merged.shared.projection_ns += projection.elapsed_ns;
    for response in responses {
        debug_assert_eq!(response.outputs.len(), requests.len());
        for (into, from) in merged.outputs.iter_mut().zip(response.outputs) {
            match (into, from) {
                (RangeBatchOutput::Points(all), RangeBatchOutput::Points(part)) => {
                    all.extend(part);
                }
                (RangeBatchOutput::Count(all), RangeBatchOutput::Count(part)) => {
                    *all += part;
                }
                _ => unreachable!("shard outputs are shaped by the same requests"),
            }
        }
        for (into, from) in merged.per_query.iter_mut().zip(&response.per_query) {
            into.merge(from);
        }
        merged.shared.merge(&response.shared);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval(lo: u32, hi: u32) -> SweepInterval {
        SweepInterval { lo, hi }
    }

    #[test]
    fn empty_batch_has_no_shards() {
        assert!(plan_shard_bounds(&[], 4).is_empty());
    }

    #[test]
    fn single_shard_covers_the_hull() {
        let plan = plan_shard_bounds(&[interval(3, 9), interval(5, 20)], 1);
        assert_eq!(plan, vec![ShardBounds { start: 3, end: 21 }]);
    }

    #[test]
    fn shards_partition_the_hull_without_gaps() {
        let intervals = [
            interval(0, 10),
            interval(4, 30),
            interval(8, 12),
            interval(25, 63),
        ];
        for shards in [2, 3, 4, 8] {
            let plan = plan_shard_bounds(&intervals, shards);
            assert!(!plan.is_empty() && plan.len() <= shards);
            assert_eq!(plan.first().unwrap().start, 0);
            assert_eq!(plan.last().unwrap().end, 64);
            for pair in plan.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "gap or overlap in {plan:?}");
                assert!(pair[0].start < pair[0].end);
            }
        }
    }

    #[test]
    fn shards_clamp_to_the_span() {
        let plan = plan_shard_bounds(&[interval(7, 9)], 16);
        assert!(plan.len() <= 3, "3-address span cannot feed 16 shards");
        assert_eq!(plan.first().unwrap().start, 7);
        assert_eq!(plan.last().unwrap().end, 10);
    }

    #[test]
    fn balanced_cuts_split_the_hot_span() {
        // Ten stacked intervals over [0, 9], one lone interval over [10, 99]:
        // a work-balanced 2-shard plan cuts well before the midpoint 50.
        let mut intervals = vec![interval(10, 99)];
        intervals.extend((0..10).map(|_| interval(0, 9)));
        let plan = plan_shard_bounds(&intervals, 2);
        assert_eq!(plan.len(), 2);
        assert!(
            plan[0].end <= 30,
            "first cut at {} ignores the hot span",
            plan[0].end
        );
    }

    #[test]
    fn weighted_cuts_follow_point_counts() {
        // Sixteen single-address intervals over [0, 15]; the first four
        // addresses hold almost all the points. A work-weighted 2-shard
        // plan cuts right after the heavy prefix, where a coverage plan
        // (uniform: one interval per address) cuts at the midpoint.
        let intervals: Vec<SweepInterval> = (0..16).map(|a| interval(a, a)).collect();
        let mut counts = vec![1u64; 16];
        for count in counts.iter_mut().take(4) {
            *count = 1_000;
        }
        let weighted = plan_shard_bounds_weighted(&intervals, 2, &counts);
        assert_eq!(weighted.len(), 2);
        assert!(
            weighted[0].end <= 5,
            "weighted cut at {} ignores the heavy prefix",
            weighted[0].end
        );
        let coverage = plan_shard_bounds(&intervals, 2);
        assert_eq!(coverage[0].end, 8, "uniform coverage cuts at the midpoint");
        // Both planners partition the hull without gaps.
        for plan in [&weighted, &coverage] {
            assert_eq!(plan.first().unwrap().start, 0);
            assert_eq!(plan.last().unwrap().end, 16);
            for pair in plan.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
        }
    }

    #[test]
    fn weighted_planner_charges_whole_walks_to_the_entry_address() {
        // One long interval entering at 0 spans the whole hull; many short
        // intervals enter at 12. Owner-based sharding executes the long
        // walk entirely in the shard owning address 0, so a balanced plan
        // gives the first shard a narrow slice even though the long
        // interval covers everything.
        let mut intervals = vec![interval(0, 15)];
        intervals.extend((0..10).map(|_| interval(12, 15)));
        let counts = vec![10u64; 16];
        let plan = plan_shard_bounds_weighted(&intervals, 2, &counts);
        assert_eq!(plan.len(), 2);
        assert!(
            plan[0].end <= 12,
            "cut at {} puts both entry hotspots in one shard",
            plan[0].end
        );
    }

    #[test]
    fn weighted_planner_handles_degenerate_inputs() {
        assert!(plan_shard_bounds_weighted(&[], 4, &[1, 2, 3]).is_empty());
        // Counts shorter than the hull weigh the tail as zero points.
        let plan = plan_shard_bounds_weighted(&[interval(0, 9)], 4, &[5]);
        assert_eq!(plan.first().unwrap().start, 0);
        assert_eq!(plan.last().unwrap().end, 10);
        // One shard returns the hull whatever the counts.
        assert_eq!(
            plan_shard_bounds_weighted(&[interval(3, 9)], 1, &[]),
            vec![ShardBounds { start: 3, end: 10 }]
        );
    }

    #[test]
    fn merge_concatenates_points_and_sums_counts() {
        let requests = [
            RangeBatchRequest {
                rect: Rect::UNIT,
                collect: true,
            },
            RangeBatchRequest {
                rect: Rect::UNIT,
                collect: false,
            },
        ];
        let projection = BatchProjection {
            intervals: vec![interval(0, 3), interval(0, 3)],
            per_query: vec![
                ExecStats {
                    nodes_visited: 2,
                    ..Default::default()
                };
                2
            ],
            elapsed_ns: 5,
        };
        let shard = |points: Vec<Point>, count: u64, pages: u64| RangeBatchResponse {
            outputs: vec![
                RangeBatchOutput::Points(points),
                RangeBatchOutput::Count(count),
            ],
            per_query: vec![
                ExecStats {
                    points_scanned: 4,
                    ..Default::default()
                };
                2
            ],
            shared: ExecStats {
                pages_scanned: pages,
                ..Default::default()
            },
        };
        let a = Point::new(0.1, 0.1);
        let b = Point::new(0.9, 0.9);
        let merged = merge_shard_responses(
            &requests,
            &projection,
            vec![shard(vec![a], 2, 1), shard(vec![b], 3, 2)],
        );
        assert_eq!(merged.outputs[0], RangeBatchOutput::Points(vec![a, b]));
        assert_eq!(merged.outputs[1], RangeBatchOutput::Count(5));
        assert_eq!(merged.per_query[0].nodes_visited, 2);
        assert_eq!(merged.per_query[0].points_scanned, 8);
        assert_eq!(merged.shared.pages_scanned, 3);
        assert_eq!(merged.shared.projection_ns, 5);
    }
}
