//! The fused batch-execution seam between the engine and the indexes.
//!
//! The engine speaks to indexes through [`crate::SpatialIndex`], one query
//! at a time. An index that can do better on a *batch* of range queries —
//! WaZI scans each relevant page once per batch instead of once per
//! overlapping query — advertises the capability by returning itself from
//! [`crate::SpatialIndex::range_batch_kernel`] and implementing
//! [`RangeBatchKernel`]. The engine's fused strategy routes every range
//! plan of a batch through the kernel and falls back to the sequential loop
//! for indexes without one, so fusion is purely an optimization: answers
//! are identical either way.
//!
//! On top of the plain kernel sits the *sharded* capability
//! ([`ShardedRangeBatchKernel`]): a kernel that can split its fused sweep
//! into two phases — projecting every request onto a one-dimensional sweep
//! address space ([`RangeBatchKernel::project_batch`] is not a thing; see
//! [`ShardedRangeBatchKernel::project_batch`]) and sweeping any contiguous
//! slice of that space independently
//! ([`ShardedRangeBatchKernel::sweep_shard`]). Because shards are disjoint
//! slices of the address space, the engine can sweep them on worker threads
//! and merge the partial responses deterministically
//! ([`merge_shard_responses`]): point outputs concatenate in shard order
//! (which is sweep order), counts and counters sum. For WaZI the address
//! space is the leaf list; for Flood it is the column grid.

use wazi_geom::{Point, Rect};
use wazi_storage::ExecStats;

/// One range request of a fused batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeBatchRequest {
    /// The query rectangle.
    pub rect: Rect,
    /// Whether the matching points must be materialized. Counting and
    /// streaming plans set this to `false`: the kernel only tallies matches.
    pub collect: bool,
}

/// Per-request answer of a fused batch.
#[derive(Debug, Clone, PartialEq)]
pub enum RangeBatchOutput {
    /// Materialized matches of a collecting request, in the index's scan
    /// order (identical to the order the sequential path produces).
    Points(Vec<Point>),
    /// Match count of a non-collecting request.
    Count(u64),
}

/// The kernel's answer to a batch: parallel to the request slice.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeBatchResponse {
    /// One output per request, in request order.
    pub outputs: Vec<RangeBatchOutput>,
    /// Work attributable to a single request (its corner projections, its
    /// bounding-box checks, its point comparisons and results).
    pub per_query: Vec<ExecStats>,
    /// Work the kernel performed once on behalf of the whole batch: visits
    /// of pages shared by several requests, batch-level skipping, and the
    /// kernel's phase timings.
    pub shared: ExecStats,
}

impl RangeBatchResponse {
    /// A zero-work response shaped for `requests`: empty point vectors for
    /// collecting requests, zero counts otherwise, default stats. Kernels
    /// and the shard merger start from this shape and fill it in.
    pub fn zeroed(requests: &[RangeBatchRequest]) -> Self {
        Self {
            outputs: requests
                .iter()
                .map(|r| {
                    if r.collect {
                        RangeBatchOutput::Points(Vec::new())
                    } else {
                        RangeBatchOutput::Count(0)
                    }
                })
                .collect(),
            per_query: vec![ExecStats::default(); requests.len()],
            shared: ExecStats::default(),
        }
    }
}

/// Fused execution of many range requests in one pass over the index.
///
/// # Contract
///
/// Implementations must return, for every request, exactly the answer the
/// sequential [`crate::SpatialIndex::range_query`] /
/// [`crate::SpatialIndex::range_count`] path returns — same points, same
/// order — while being free to share physical work (page visits) between
/// requests and to account that shared work in
/// [`RangeBatchResponse::shared`] rather than per query. Per-request
/// bounding-box checks and point comparisons must not exceed what the
/// sequential path would charge: fusion shares work, it never adds any.
pub trait RangeBatchKernel {
    /// Executes all `requests` in one fused pass.
    fn run_range_batch(&self, requests: &[RangeBatchRequest]) -> RangeBatchResponse;

    /// The kernel's sharded capability, when it has one.
    ///
    /// Returning `Some` promises that
    /// [`ShardedRangeBatchKernel::sweep_shard`] over any disjoint partition
    /// of the projected span, merged with [`merge_shard_responses`], is
    /// output-equivalent to [`RangeBatchKernel::run_range_batch`]. The
    /// default advertises nothing, and
    /// [`crate::BatchStrategy::FusedParallel`] falls back to the
    /// single-threaded fused sweep.
    fn sharded(&self) -> Option<&dyn ShardedRangeBatchKernel> {
        None
    }
}

/// Inclusive interval of sweep addresses a request's fused scan covers
/// (leaf indices for the Z-index, grid columns for Flood).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepInterval {
    /// First address the request's sweep may touch.
    pub lo: u32,
    /// Last address the request's sweep may touch (inclusive).
    pub hi: u32,
}

/// A contiguous half-open slice `[start, end)` of a kernel's sweep address
/// space, assigned to one worker by the engine's shard planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardBounds {
    /// First address of the shard.
    pub start: u32,
    /// One past the last address of the shard.
    pub end: u32,
}

/// The projection phase of a sharded fused batch: every request mapped onto
/// the kernel's sweep address space, with the work that mapping cost.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchProjection {
    /// One sweep interval per request, in request order.
    pub intervals: Vec<SweepInterval>,
    /// Per-request projection work (e.g. WaZI's Algorithm-1 descents),
    /// charged exactly as the sequential path would charge it.
    pub per_query: Vec<ExecStats>,
    /// Wall-clock time the projection took, in nanoseconds; merged into the
    /// response's shared projection-phase time.
    pub elapsed_ns: u64,
}

/// A fused kernel whose sweep can be split into disjoint address-space
/// shards and run on worker threads (`Sync` because shard sweeps execute
/// concurrently against the same index).
///
/// The engine drives the protocol: one [`project_batch`] call, a shard plan
/// over the projected intervals ([`plan_shard_bounds`]), one
/// [`sweep_shard`] call per shard (possibly concurrent), and a
/// deterministic merge ([`merge_shard_responses`]). Shard sweeps must not
/// depend on each other: a request whose interval crosses a shard boundary
/// is resumed from scratch at the next shard's first address, which may
/// cost it a bounding-box re-check a single sweep would have skipped over —
/// answers and point comparisons are unaffected.
///
/// [`project_batch`]: ShardedRangeBatchKernel::project_batch
/// [`sweep_shard`]: ShardedRangeBatchKernel::sweep_shard
pub trait ShardedRangeBatchKernel: RangeBatchKernel + Sync {
    /// Maps every request onto the sweep address space, charging the
    /// projection work per request. Called once per batch, before any
    /// shard sweeps.
    fn project_batch(&self, requests: &[RangeBatchRequest]) -> BatchProjection;

    /// Runs the fused sweep restricted to `bounds`. Requests whose
    /// intervals do not intersect the bounds contribute nothing; the
    /// returned response holds partial outputs and counters for exactly
    /// the work performed inside the shard.
    fn sweep_shard(
        &self,
        requests: &[RangeBatchRequest],
        projection: &BatchProjection,
        bounds: ShardBounds,
    ) -> RangeBatchResponse;
}

/// Plans up to `shards` disjoint, contiguous, work-balanced shard bounds
/// covering the hull of the projected intervals.
///
/// Work is estimated as interval coverage: every (request, address) pair
/// with the address inside the request's interval counts one unit. The
/// planner cuts the hull so each shard carries roughly `total / shards`
/// units, which balances overlapping batches far better than equal-width
/// cuts (hot spans where many intervals stack are split, cold spans are
/// merged). Returns fewer bounds than requested when the hull has fewer
/// addresses than shards; returns an empty plan for an empty batch.
pub fn plan_shard_bounds(intervals: &[SweepInterval], shards: usize) -> Vec<ShardBounds> {
    let Some(first) = intervals.first() else {
        return Vec::new();
    };
    let mut lo = first.lo;
    let mut hi = first.hi;
    for interval in &intervals[1..] {
        lo = lo.min(interval.lo);
        hi = hi.max(interval.hi);
    }
    let span = (hi - lo + 1) as usize;
    let shards = shards.clamp(1, span);
    if shards == 1 {
        return vec![ShardBounds {
            start: lo,
            end: hi + 1,
        }];
    }
    // Coverage histogram over the hull via a difference array.
    let mut diff = vec![0i64; span + 1];
    for interval in intervals {
        diff[(interval.lo - lo) as usize] += 1;
        diff[(interval.hi - lo) as usize + 1] -= 1;
    }
    let mut total: i64 = 0;
    let mut coverage = 0i64;
    let mut weights = Vec::with_capacity(span);
    for d in &diff[..span] {
        coverage += d;
        // Every address carries at least one unit so zero-coverage gaps
        // still advance the cuts and no shard degenerates to zero width.
        weights.push(coverage.max(1));
        total += coverage.max(1);
    }
    let mut bounds = Vec::with_capacity(shards);
    let mut start = 0usize;
    let mut carried = 0i64;
    let mut remaining = total;
    for (position, &weight) in weights.iter().enumerate() {
        carried += weight;
        remaining -= weight;
        let shards_left = shards - bounds.len();
        let is_last_shard = shards_left == 1;
        // Cut when this shard has its fair share of the remaining work and
        // enough addresses remain to give every later shard at least one.
        let fair = (carried * shards_left as i64) >= (carried + remaining);
        let room_left = span - (position + 1) >= shards_left - 1;
        if !is_last_shard && fair && room_left {
            bounds.push(ShardBounds {
                start: lo + start as u32,
                end: lo + position as u32 + 1,
            });
            start = position + 1;
            carried = 0;
        }
    }
    bounds.push(ShardBounds {
        start: lo + start as u32,
        end: hi + 1,
    });
    debug_assert!(bounds.len() <= shards);
    bounds
}

/// Runs a sharded kernel's full protocol as one unsharded sweep: project
/// the batch, sweep the whole address space `[0, span_end)` on the calling
/// thread, and fold the projection in.
///
/// This is the canonical [`RangeBatchKernel::run_range_batch`] body for
/// kernels that implement [`ShardedRangeBatchKernel`] — every such kernel
/// shares it instead of restating the project/sweep/merge boilerplate.
pub fn run_full_sweep(
    kernel: &dyn ShardedRangeBatchKernel,
    requests: &[RangeBatchRequest],
    span_end: u32,
) -> RangeBatchResponse {
    if requests.is_empty() {
        return RangeBatchResponse::zeroed(requests);
    }
    let projection = kernel.project_batch(requests);
    let full_span = ShardBounds {
        start: 0,
        end: span_end,
    };
    let swept = kernel.sweep_shard(requests, &projection, full_span);
    merge_shard_responses(requests, &projection, vec![swept])
}

/// Deterministically merges per-shard partial responses (in ascending shard
/// order) with the batch's projection into one [`RangeBatchResponse`].
///
/// Point outputs concatenate in shard order — shards partition the sweep
/// address space in ascending order, so concatenation reproduces the single
/// sweep's scan order exactly. Counts, per-query counters and shared
/// counters sum; the projection's per-request work and wall-clock are
/// folded in so the merged response accounts for the whole fused execution.
pub fn merge_shard_responses(
    requests: &[RangeBatchRequest],
    projection: &BatchProjection,
    responses: Vec<RangeBatchResponse>,
) -> RangeBatchResponse {
    let mut merged = RangeBatchResponse::zeroed(requests);
    merged.per_query.clone_from_slice(&projection.per_query);
    merged.shared.projection_ns += projection.elapsed_ns;
    for response in responses {
        debug_assert_eq!(response.outputs.len(), requests.len());
        for (into, from) in merged.outputs.iter_mut().zip(response.outputs) {
            match (into, from) {
                (RangeBatchOutput::Points(all), RangeBatchOutput::Points(part)) => {
                    all.extend(part);
                }
                (RangeBatchOutput::Count(all), RangeBatchOutput::Count(part)) => {
                    *all += part;
                }
                _ => unreachable!("shard outputs are shaped by the same requests"),
            }
        }
        for (into, from) in merged.per_query.iter_mut().zip(&response.per_query) {
            into.merge(from);
        }
        merged.shared.merge(&response.shared);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval(lo: u32, hi: u32) -> SweepInterval {
        SweepInterval { lo, hi }
    }

    #[test]
    fn empty_batch_has_no_shards() {
        assert!(plan_shard_bounds(&[], 4).is_empty());
    }

    #[test]
    fn single_shard_covers_the_hull() {
        let plan = plan_shard_bounds(&[interval(3, 9), interval(5, 20)], 1);
        assert_eq!(plan, vec![ShardBounds { start: 3, end: 21 }]);
    }

    #[test]
    fn shards_partition_the_hull_without_gaps() {
        let intervals = [
            interval(0, 10),
            interval(4, 30),
            interval(8, 12),
            interval(25, 63),
        ];
        for shards in [2, 3, 4, 8] {
            let plan = plan_shard_bounds(&intervals, shards);
            assert!(!plan.is_empty() && plan.len() <= shards);
            assert_eq!(plan.first().unwrap().start, 0);
            assert_eq!(plan.last().unwrap().end, 64);
            for pair in plan.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "gap or overlap in {plan:?}");
                assert!(pair[0].start < pair[0].end);
            }
        }
    }

    #[test]
    fn shards_clamp_to_the_span() {
        let plan = plan_shard_bounds(&[interval(7, 9)], 16);
        assert!(plan.len() <= 3, "3-address span cannot feed 16 shards");
        assert_eq!(plan.first().unwrap().start, 7);
        assert_eq!(plan.last().unwrap().end, 10);
    }

    #[test]
    fn balanced_cuts_split_the_hot_span() {
        // Ten stacked intervals over [0, 9], one lone interval over [10, 99]:
        // a work-balanced 2-shard plan cuts well before the midpoint 50.
        let mut intervals = vec![interval(10, 99)];
        intervals.extend((0..10).map(|_| interval(0, 9)));
        let plan = plan_shard_bounds(&intervals, 2);
        assert_eq!(plan.len(), 2);
        assert!(
            plan[0].end <= 30,
            "first cut at {} ignores the hot span",
            plan[0].end
        );
    }

    #[test]
    fn merge_concatenates_points_and_sums_counts() {
        let requests = [
            RangeBatchRequest {
                rect: Rect::UNIT,
                collect: true,
            },
            RangeBatchRequest {
                rect: Rect::UNIT,
                collect: false,
            },
        ];
        let projection = BatchProjection {
            intervals: vec![interval(0, 3), interval(0, 3)],
            per_query: vec![
                ExecStats {
                    nodes_visited: 2,
                    ..Default::default()
                };
                2
            ],
            elapsed_ns: 5,
        };
        let shard = |points: Vec<Point>, count: u64, pages: u64| RangeBatchResponse {
            outputs: vec![
                RangeBatchOutput::Points(points),
                RangeBatchOutput::Count(count),
            ],
            per_query: vec![
                ExecStats {
                    points_scanned: 4,
                    ..Default::default()
                };
                2
            ],
            shared: ExecStats {
                pages_scanned: pages,
                ..Default::default()
            },
        };
        let a = Point::new(0.1, 0.1);
        let b = Point::new(0.9, 0.9);
        let merged = merge_shard_responses(
            &requests,
            &projection,
            vec![shard(vec![a], 2, 1), shard(vec![b], 3, 2)],
        );
        assert_eq!(merged.outputs[0], RangeBatchOutput::Points(vec![a, b]));
        assert_eq!(merged.outputs[1], RangeBatchOutput::Count(5));
        assert_eq!(merged.per_query[0].nodes_visited, 2);
        assert_eq!(merged.per_query[0].points_scanned, 8);
        assert_eq!(merged.shared.pages_scanned, 3);
        assert_eq!(merged.shared.projection_ns, 5);
    }
}
