//! The fused batch-execution seam between the engine and the indexes.
//!
//! The engine speaks to indexes through [`crate::SpatialIndex`], one query
//! at a time. An index that can do better on a *batch* of range queries —
//! WaZI scans each relevant page once per batch instead of once per
//! overlapping query — advertises the capability by returning itself from
//! [`crate::SpatialIndex::range_batch_kernel`] and implementing
//! [`RangeBatchKernel`]. The engine's fused strategy routes every range
//! plan of a batch through the kernel and falls back to the sequential loop
//! for indexes without one, so fusion is purely an optimization: answers
//! are identical either way.

use wazi_geom::{Point, Rect};
use wazi_storage::ExecStats;

/// One range request of a fused batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeBatchRequest {
    /// The query rectangle.
    pub rect: Rect,
    /// Whether the matching points must be materialized. Counting and
    /// streaming plans set this to `false`: the kernel only tallies matches.
    pub collect: bool,
}

/// Per-request answer of a fused batch.
#[derive(Debug, Clone, PartialEq)]
pub enum RangeBatchOutput {
    /// Materialized matches of a collecting request, in the index's scan
    /// order (identical to the order the sequential path produces).
    Points(Vec<Point>),
    /// Match count of a non-collecting request.
    Count(u64),
}

/// The kernel's answer to a batch: parallel to the request slice.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeBatchResponse {
    /// One output per request, in request order.
    pub outputs: Vec<RangeBatchOutput>,
    /// Work attributable to a single request (its corner projections, its
    /// bounding-box checks, its point comparisons and results).
    pub per_query: Vec<ExecStats>,
    /// Work the kernel performed once on behalf of the whole batch: visits
    /// of pages shared by several requests, batch-level skipping, and the
    /// kernel's phase timings.
    pub shared: ExecStats,
}

impl RangeBatchResponse {
    /// An empty response (no requests).
    pub fn empty() -> Self {
        Self {
            outputs: Vec::new(),
            per_query: Vec::new(),
            shared: ExecStats::default(),
        }
    }
}

/// Fused execution of many range requests in one pass over the index.
///
/// # Contract
///
/// Implementations must return, for every request, exactly the answer the
/// sequential [`crate::SpatialIndex::range_query`] /
/// [`crate::SpatialIndex::range_count`] path returns — same points, same
/// order — while being free to share physical work (page visits) between
/// requests and to account that shared work in
/// [`RangeBatchResponse::shared`] rather than per query.
pub trait RangeBatchKernel {
    /// Executes all `requests` in one fused pass.
    fn run_range_batch(&self, requests: &[RangeBatchRequest]) -> RangeBatchResponse;
}
