//! Execution reports: what the engine hands back alongside every answer.

use crate::engine::QueryOutput;
use wazi_storage::ExecStats;

/// The result of executing one [`crate::engine::Query`]: the answer itself,
/// the work counters and phase timings the index charged while producing it,
/// and the end-to-end wall-clock latency observed by the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReport {
    /// The answer, variant-matched to the executed plan.
    pub output: QueryOutput,
    /// Work counters and projection/scan phase timings (Figures 9 and 13).
    pub stats: ExecStats,
    /// End-to-end wall-clock latency in nanoseconds, measured by the engine
    /// around the index call. Zero for range queries executed through the
    /// fused batch kernel, whose wall clock is only attributable to the
    /// batch as a whole ([`BatchReport::latency_ns`]).
    pub latency_ns: u64,
}

/// The result of executing a batch of queries.
///
/// Per-query answers keep their input order regardless of how the engine
/// scheduled them internally. Work accounting is split into two levels:
/// every report carries the counters attributable to its own query, while
/// `shared_stats` holds work the fused kernel performed once on behalf of
/// several queries (page visits of shared pages, batch-level skipping). On
/// the sequential path `shared_stats` is zero and [`BatchReport::merged_stats`]
/// equals the merge of the per-query stats.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// One report per input query, in input order.
    pub reports: Vec<QueryReport>,
    /// Work charged to the batch as a whole rather than to any single query
    /// (only the fused kernel produces nonzero shared stats).
    pub shared_stats: ExecStats,
    /// Wall-clock latency of the whole batch in nanoseconds.
    pub latency_ns: u64,
    /// Number of range queries that were executed through the fused
    /// batch kernel (zero on the sequential path).
    pub fused_queries: usize,
    /// Number of disjoint sweep shards the fused kernel ran on (zero on
    /// the sequential path, one for the single-threaded fused sweep,
    /// the planned shard count under
    /// [`crate::BatchStrategy::FusedParallel`]).
    pub shards_used: usize,
}

impl BatchReport {
    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Returns `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Sound aggregate of the batch's work: the per-query counters merged
    /// component-wise ([`ExecStats::merge`]) plus the batch-level shared
    /// work. Comparing this quantity between the sequential and the fused
    /// strategy shows exactly what fusion saves (shared pages scanned once).
    pub fn merged_stats(&self) -> ExecStats {
        let mut merged = self.shared_stats;
        for report in &self.reports {
            merged.merge(&report.stats);
        }
        merged
    }

    /// Total result points across the batch.
    pub fn total_results(&self) -> u64 {
        self.reports.iter().map(|r| r.output.result_count()).sum()
    }

    /// Total bounding boxes checked while executing the batch, per-query
    /// and shared work combined.
    ///
    /// This is the invariant quantity for comparing strategies: a fused
    /// kernel shares page *visits* but must never make any query check more
    /// bounding boxes than its own sequential walk would, so for
    /// [`crate::BatchStrategy::Fused`] this total is at most the
    /// [`crate::BatchStrategy::Sequential`] total on the same batch
    /// (asserted cross-index by the facade test-suite).
    pub fn bbs_checked(&self) -> u64 {
        self.merged_stats().bbs_checked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryOutput;

    fn report(results: u64, pages: u64) -> QueryReport {
        QueryReport {
            output: QueryOutput::Count(results),
            stats: ExecStats {
                results,
                pages_scanned: pages,
                ..Default::default()
            },
            latency_ns: 10,
        }
    }

    #[test]
    fn merged_stats_include_shared_work() {
        let batch = BatchReport {
            reports: vec![report(3, 2), report(5, 1)],
            shared_stats: ExecStats {
                pages_scanned: 4,
                ..Default::default()
            },
            latency_ns: 100,
            fused_queries: 2,
            shards_used: 1,
        };
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        let merged = batch.merged_stats();
        assert_eq!(merged.pages_scanned, 7);
        assert_eq!(merged.results, 8);
        assert_eq!(batch.total_results(), 8);
    }
}
