//! Execution reports: what the engine hands back alongside every answer.

use crate::engine::cost::PartitionDecision;
use crate::engine::QueryOutput;
use wazi_storage::ExecStats;

/// The result of executing one [`crate::engine::Query`]: the answer itself,
/// the work counters and phase timings the index charged while producing it,
/// and the end-to-end wall-clock latency observed by the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReport {
    /// The answer, variant-matched to the executed plan.
    pub output: QueryOutput,
    /// Work counters and projection/scan phase timings (Figures 9 and 13).
    pub stats: ExecStats,
    /// End-to-end wall-clock latency in nanoseconds, measured by the engine
    /// around the index call. Zero for range queries executed through the
    /// fused batch kernel, whose wall clock is only attributable to the
    /// batch as a whole ([`BatchReport::latency_ns`]).
    pub latency_ns: u64,
}

/// The result of executing a batch of queries.
///
/// Per-query answers keep their input order regardless of how the engine
/// scheduled them internally. Work accounting is split into two levels:
/// every report carries the counters attributable to its own query, while
/// `shared_stats` holds work the fused kernels performed once on behalf of
/// several queries (page visits of shared pages, batch-level skipping). The
/// engine partitions a fused batch by plan type — range plans through the
/// [`crate::RangeBatchKernel`], point probes through the
/// [`crate::PointBatchKernel`], kNN plans through the shared expanding-ring
/// sweep — so the shared work is also broken down per partition
/// (`range_shared_stats` / `point_shared_stats` / `knn_shared_stats`, whose
/// merge equals `shared_stats`). On the sequential path every shared field
/// is zero and [`BatchReport::merged_stats`] equals the merge of the
/// per-query stats.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// One report per input query, in input order.
    pub reports: Vec<QueryReport>,
    /// Work charged to the batch as a whole rather than to any single query
    /// (only the fused kernels produce nonzero shared stats); the merge of
    /// the three per-partition shared fields below.
    pub shared_stats: ExecStats,
    /// Shared work of the fused range partition (one sweep serving every
    /// fused range plan).
    pub range_shared_stats: ExecStats,
    /// Shared work of the fused point-probe partition (each owning page
    /// fetched once per batch, however many probes share it).
    pub point_shared_stats: ExecStats,
    /// Shared work of the fused kNN partition (each candidate page scanned
    /// once per expanding ring, however many plans share it).
    pub knn_shared_stats: ExecStats,
    /// Wall-clock latency of the whole batch in nanoseconds.
    pub latency_ns: u64,
    /// Number of range queries that were executed through the fused
    /// batch kernel (zero on the sequential path).
    pub fused_queries: usize,
    /// Number of point probes that were executed through the fused
    /// point-batch kernel (zero on the sequential path).
    pub fused_points: usize,
    /// Number of kNN plans that were executed through the shared
    /// expanding-ring sweep (zero on the sequential path).
    pub fused_knn: usize,
    /// Number of disjoint sweep shards the fused range kernel ran on (zero
    /// on the sequential path, one for the single-threaded fused sweep,
    /// the planned shard count under
    /// [`crate::BatchStrategy::FusedParallel`]).
    pub shards_used: usize,
    /// The strategies [`crate::BatchStrategy::Auto`] picked per partition,
    /// with the model's predicted costs and the partition's measured
    /// wall-clock. Empty (every field `None`) under a fixed strategy, and
    /// for partitions where no choice existed (fewer than two members, or
    /// no kernel).
    pub strategy_chosen: StrategyDecisions,
}

/// The per-partition strategy decisions of one Auto-scheduled batch — the
/// engine's answer to "what did the cost model do?". See
/// [`crate::BatchStrategy::Auto`] and the [`crate::engine::cost`] module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StrategyDecisions {
    /// Decision for the range partition, when one was made.
    pub range: Option<PartitionDecision>,
    /// Decision for the point-probe partition, when one was made.
    pub point: Option<PartitionDecision>,
    /// Decision for the kNN partition, when one was made.
    pub knn: Option<PartitionDecision>,
}

impl StrategyDecisions {
    /// Iterates the decisions that were actually made, labelled by
    /// partition kind (`"range"` / `"point"` / `"knn"`).
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, PartitionDecision)> {
        [
            ("range", self.range),
            ("point", self.point),
            ("knn", self.knn),
        ]
        .into_iter()
        .filter_map(|(kind, decision)| decision.map(|d| (kind, d)))
    }
}

impl BatchReport {
    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Returns `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Sound aggregate of the batch's work: the per-query counters merged
    /// component-wise ([`ExecStats::merge`]) plus the batch-level shared
    /// work. Comparing this quantity between the sequential and the fused
    /// strategy shows exactly what fusion saves (shared pages scanned once).
    pub fn merged_stats(&self) -> ExecStats {
        let mut merged = self.shared_stats;
        for report in &self.reports {
            merged.merge(&report.stats);
        }
        merged
    }

    /// Total result points across the batch.
    pub fn total_results(&self) -> u64 {
        self.reports.iter().map(|r| r.output.result_count()).sum()
    }

    /// Total queries (of any plan type) executed through a fused kernel.
    pub fn total_fused(&self) -> usize {
        self.fused_queries + self.fused_points + self.fused_knn
    }

    /// Total bounding boxes checked while executing the batch, per-query
    /// and shared work combined.
    ///
    /// This is the invariant quantity for comparing strategies: a fused
    /// kernel shares page *visits* but must never make any query check more
    /// bounding boxes than its own sequential walk would, so for
    /// [`crate::BatchStrategy::Fused`] this total is at most the
    /// [`crate::BatchStrategy::Sequential`] total on the same batch
    /// (asserted cross-index by the facade test-suite).
    pub fn bbs_checked(&self) -> u64 {
        self.merged_stats().bbs_checked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryOutput;

    fn report(results: u64, pages: u64) -> QueryReport {
        QueryReport {
            output: QueryOutput::Count(results),
            stats: ExecStats {
                results,
                pages_scanned: pages,
                ..Default::default()
            },
            latency_ns: 10,
        }
    }

    #[test]
    fn merged_stats_include_shared_work() {
        let range_shared = ExecStats {
            pages_scanned: 3,
            ..Default::default()
        };
        let point_shared = ExecStats {
            pages_scanned: 1,
            ..Default::default()
        };
        let batch = BatchReport {
            reports: vec![report(3, 2), report(5, 1)],
            shared_stats: ExecStats {
                pages_scanned: 4,
                ..Default::default()
            },
            range_shared_stats: range_shared,
            point_shared_stats: point_shared,
            knn_shared_stats: ExecStats::default(),
            latency_ns: 100,
            fused_queries: 2,
            fused_points: 1,
            fused_knn: 0,
            shards_used: 1,
            strategy_chosen: StrategyDecisions::default(),
        };
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        assert_eq!(batch.total_fused(), 3);
        let merged = batch.merged_stats();
        assert_eq!(merged.pages_scanned, 7);
        assert_eq!(merged.results, 8);
        assert_eq!(batch.total_results(), 8);
    }
}
