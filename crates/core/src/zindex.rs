//! The generalized Z-index: tree structure, query processing and updates.

use crate::build::BuildReport;
use crate::config::ZIndexConfig;
use crate::index::{IndexError, SpatialIndex};
use crate::lookahead::{self, build_lookahead};
use crate::node::{InternalNode, Leaf, Lookahead, NodeRef, LOOKAHEAD_END};
use std::time::Instant;
use wazi_geom::{CellOrdering, Point, Quadrant, Rect};
use wazi_storage::{ExecStats, PageStore};

/// A generalized Z-index instance: either the base variant (median splits,
/// `abcd` ordering) or WaZI (cost-optimised splits and orderings, optional
/// look-ahead skipping), depending on how it was built.
///
/// Construct instances through [`crate::ZIndexBuilder`] or the convenience
/// constructors [`ZIndex::build_wazi`] / [`ZIndex::build_base`].
#[derive(Debug, Clone)]
pub struct ZIndex {
    variant: &'static str,
    config: ZIndexConfig,
    nodes: Vec<InternalNode>,
    leaves: Vec<Leaf>,
    root: NodeRef,
    store: PageStore,
    len: usize,
    data_space: Rect,
    build_report: BuildReport,
    /// Set when an update made the look-ahead pointers potentially unsafe
    /// (a point was inserted outside its leaf's cell region, which can only
    /// happen for points outside the original data space). Skipping is
    /// disabled until [`ZIndex::rebuild_lookahead`] is called.
    lookahead_stale: bool,
}

impl ZIndex {
    /// Builds the paper's WaZI index (adaptive partitioning + ordering,
    /// RFDE cardinality estimation, look-ahead skipping) for a dataset and an
    /// anticipated range-query workload.
    pub fn build_wazi(points: Vec<Point>, queries: &[Rect]) -> Self {
        crate::ZIndexBuilder::wazi().build(points, queries)
    }

    /// Builds the base Z-index (median splits, `abcd` ordering, no
    /// skipping).
    pub fn build_base(points: Vec<Point>) -> Self {
        crate::ZIndexBuilder::base().build(points, &[])
    }

    /// Assembles an index from parts produced by the builder.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        variant: &'static str,
        config: ZIndexConfig,
        nodes: Vec<InternalNode>,
        leaves: Vec<Leaf>,
        root: NodeRef,
        store: PageStore,
        len: usize,
        data_space: Rect,
        build_report: BuildReport,
    ) -> Self {
        Self {
            variant,
            config,
            nodes,
            leaves,
            root,
            store,
            len,
            data_space,
            build_report,
            lookahead_stale: false,
        }
    }

    /// The construction configuration.
    pub fn config(&self) -> &ZIndexConfig {
        &self.config
    }

    /// Construction statistics (build time, candidates evaluated, chosen
    /// orderings).
    pub fn build_report(&self) -> &BuildReport {
        &self.build_report
    }

    /// Number of leaf nodes (the length of the `LeafList`).
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Number of internal nodes.
    pub fn internal_count(&self) -> usize {
        self.nodes.len()
    }

    /// Height of the tree (a single leaf has height 1).
    pub fn height(&self) -> usize {
        fn depth_of(index: &ZIndex, node: NodeRef) -> usize {
            match node {
                NodeRef::Leaf(_) => 1,
                NodeRef::Internal(i) => {
                    1 + index.nodes[i as usize]
                        .children
                        .iter()
                        .map(|c| depth_of(index, *c))
                        .max()
                        .unwrap_or(0)
                }
            }
        }
        depth_of(self, self.root)
    }

    /// Bounding box of the data the index was built over.
    pub fn data_space(&self) -> Rect {
        self.data_space
    }

    /// Whether look-ahead skipping is enabled and currently active for this
    /// instance (skipping is temporarily suspended when an update outside
    /// the original data space made the pointers potentially unsafe; see
    /// [`ZIndex::rebuild_lookahead`]).
    pub fn skipping_enabled(&self) -> bool {
        self.config.skipping && !self.lookahead_stale
    }

    /// Fraction of internal cells using the alternative `acbd` ordering.
    pub fn acbd_fraction(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes
            .iter()
            .filter(|n| n.ordering == CellOrdering::Acbd)
            .count() as f64
            / self.nodes.len() as f64
    }

    /// Verifies the safety invariant of the look-ahead pointers (used by
    /// integration and property tests). Returns an error when skipping is
    /// enabled and a pointer could skip a potentially relevant leaf.
    pub fn verify_lookahead_invariant(&self) -> Result<(), String> {
        if !self.skipping_enabled() {
            return Ok(());
        }
        lookahead::verify_invariant(&self.leaves)
    }

    /// Verifies the structural invariants of the index: leaf/page counts
    /// agree, every point is stored in the leaf whose cell contains it, and
    /// the leaf list is dominance-monotone. Intended for tests.
    pub fn verify_structure(&self) -> Result<(), String> {
        let mut total = 0usize;
        for (i, leaf) in self.leaves.iter().enumerate() {
            let page = self.store.page(leaf.page);
            if page.len() != leaf.count {
                return Err(format!(
                    "leaf {i}: count {} disagrees with page length {}",
                    leaf.count,
                    page.len()
                ));
            }
            for p in page.points() {
                if !leaf.bbox.contains(p) {
                    return Err(format!("leaf {i}: point {p} outside its bounding box"));
                }
            }
            total += page.len();
        }
        if total != self.len {
            return Err(format!(
                "stored points {total} disagree with index length {}",
                self.len
            ));
        }
        // Dominance monotonicity across leaves (Section 3): a point stored in
        // a later leaf must never be dominated by a point stored in an
        // earlier leaf.
        for i in 0..self.leaves.len() {
            let earlier = self.store.page(self.leaves[i].page);
            for (j, later_leaf) in self.leaves.iter().enumerate().skip(i + 1) {
                let later = self.store.page(later_leaf.page);
                for a in earlier.points() {
                    for b in later.points() {
                        if b.dominated_by(a) {
                            return Err(format!(
                                "monotonicity violated: point {b} in leaf {j} is dominated by point {a} in earlier leaf {i}"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Retrieval cost of a workload on this index measured in points
    /// compared (the quantity the cost model of Section 4 predicts).
    pub fn measured_workload_cost(&self, queries: &[Rect]) -> u64 {
        let mut stats = ExecStats::default();
        for q in queries {
            self.range_query(q, &mut stats);
        }
        stats.points_scanned
    }

    // ------------------------------------------------------------------
    // Traversal
    // ------------------------------------------------------------------

    /// Algorithm 1: descends from the root to the leaf whose cell contains
    /// `p`, returning its index in the leaf list.
    fn locate_leaf(&self, p: &Point, stats: &mut ExecStats) -> u32 {
        let mut node = self.root;
        loop {
            match node {
                NodeRef::Leaf(i) => return i,
                NodeRef::Internal(i) => {
                    stats.nodes_visited += 1;
                    node = self.nodes[i as usize].child_for(p);
                }
            }
        }
    }

    /// Like [`Self::locate_leaf`] but records the internal path so update
    /// operations can maintain subtree counts and rewire split leaves.
    fn locate_leaf_with_path(&self, p: &Point) -> (u32, Vec<(u32, usize)>) {
        let mut node = self.root;
        let mut path = Vec::new();
        loop {
            match node {
                NodeRef::Leaf(i) => return (i, path),
                NodeRef::Internal(i) => {
                    let internal = &self.nodes[i as usize];
                    let slot = internal.ordering.child_of(p, &internal.split);
                    path.push((i, slot));
                    node = internal.children[slot];
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Range queries (Algorithm 2 + Section 5 skipping)
    // ------------------------------------------------------------------

    /// Projection phase: returns the indices of the leaves in
    /// `[low : high]` whose bounding boxes overlap the query, following
    /// look-ahead pointers over irrelevant runs when skipping is enabled.
    fn project(&self, query: &Rect, stats: &mut ExecStats) -> Vec<u32> {
        if self.leaves.is_empty() {
            return Vec::new();
        }
        let low = self.locate_leaf(&query.bl(), stats);
        let high = self.locate_leaf(&query.tr(), stats);
        debug_assert!(low <= high, "monotone orderings visit BL before TR");
        let mut relevant = Vec::new();
        let mut i = low;
        while i <= high {
            let leaf = &self.leaves[i as usize];
            stats.bbs_checked += 1;
            if !leaf.bbox.is_empty() && leaf.bbox.overlaps(query) {
                relevant.push(i);
                i += 1;
                continue;
            }
            let mut next = i + 1;
            if self.skipping_enabled() {
                if let Some(lookahead) = leaf.lookahead {
                    for criterion in leaf.irrelevancy_criteria(query) {
                        let target = lookahead.get(criterion);
                        let target = if target == LOOKAHEAD_END {
                            high + 1
                        } else {
                            target
                        };
                        next = next.max(target);
                    }
                }
            }
            stats.leaves_skipped += u64::from(next - (i + 1));
            i = next;
        }
        relevant
    }

    /// Scan phase: filters the pages of the projected leaves.
    fn scan(&self, relevant: &[u32], query: &Rect, stats: &mut ExecStats) -> Vec<Point> {
        let mut result = Vec::new();
        for &i in relevant {
            let leaf = &self.leaves[i as usize];
            self.store.filter_page(leaf.page, query, &mut result, stats);
        }
        result
    }

    // ------------------------------------------------------------------
    // Updates (Section 6.7)
    // ------------------------------------------------------------------

    /// Splits an overflowing leaf along its data medians into four children
    /// ("We split any overflowing pages of WaZI along the data medians"),
    /// replacing the leaf with a new internal node.
    ///
    /// New leaves inherit conservative look-ahead pointers (pointing to their
    /// successor), which preserves the skipping safety invariant; call
    /// [`Self::rebuild_lookahead`] to restore maximally skipping pointers
    /// after a batch of inserts.
    fn split_leaf(&mut self, leaf_index: u32, parent: Option<(u32, usize)>) {
        let leaf_pos = leaf_index as usize;
        let region = self.leaves[leaf_pos].region;
        let page_id = self.leaves[leaf_pos].page;
        let points = self.store.page(page_id).points().to_vec();
        let split = crate::build::median_split(&points);
        let ordering = CellOrdering::Abcd;

        // A split that cannot separate the points (all duplicates) is skipped:
        // the leaf simply stays oversized.
        let first_quadrant = Quadrant::of(&points[0], &split);
        if points.iter().all(|p| Quadrant::of(p, &split) == first_quadrant) {
            return;
        }

        let page_ids =
            self.store
                .split_page(page_id, 4, |p| ordering.child_of(p, &split));

        // Build the four replacement leaves in curve order.
        let mut new_leaves = Vec::with_capacity(4);
        for (position, quadrant) in ordering.curve().into_iter().enumerate() {
            let child_region = quadrant.region(&region, &split);
            let page = page_ids[position];
            let stored = self.store.page(page);
            let bbox = Rect::bounding(stored.points());
            new_leaves.push(Leaf::new(child_region, bbox, page, stored.len()));
        }

        // Splice the new leaves into the leaf list: the first replaces the
        // original position, the other three follow it.
        let total_count: usize = new_leaves.iter().map(|l| l.count).sum();
        self.leaves[leaf_pos] = new_leaves[0].clone();
        self.leaves
            .splice(leaf_pos + 1..leaf_pos + 1, new_leaves[1..].iter().cloned());

        // Leaf indices after the split position shifted by three: fix child
        // references of internal nodes and existing look-ahead pointers.
        for node in &mut self.nodes {
            for child in &mut node.children {
                if let NodeRef::Leaf(i) = child {
                    if *i > leaf_index {
                        *i += 3;
                    }
                }
            }
        }
        for leaf in &mut self.leaves {
            if let Some(lookahead) = &mut leaf.lookahead {
                for criterion in crate::node::SkipCriterion::ALL {
                    let target = lookahead.get(criterion);
                    if target != LOOKAHEAD_END && target > leaf_index {
                        lookahead.set(criterion, target + 3);
                    }
                }
            }
        }
        // Conservative pointers for the four new leaves: their plain
        // successor (always safe).
        if self.config.skipping {
            for offset in 0..4u32 {
                let idx = leaf_index + offset;
                let next = idx + 1;
                let next = if (next as usize) < self.leaves.len() {
                    next
                } else {
                    LOOKAHEAD_END
                };
                let mut lookahead = Lookahead::default();
                for criterion in crate::node::SkipCriterion::ALL {
                    lookahead.set(criterion, next);
                }
                self.leaves[idx as usize].lookahead = Some(lookahead);
            }
        }

        // Replace the leaf with a new internal node in the tree.
        let node_index = self.nodes.len() as u32;
        self.nodes.push(InternalNode {
            region,
            split,
            ordering,
            children: [
                NodeRef::Leaf(leaf_index),
                NodeRef::Leaf(leaf_index + 1),
                NodeRef::Leaf(leaf_index + 2),
                NodeRef::Leaf(leaf_index + 3),
            ],
            count: total_count,
        });
        match parent {
            Some((parent_index, slot)) => {
                self.nodes[parent_index as usize].children[slot] = NodeRef::Internal(node_index);
            }
            None => {
                self.root = NodeRef::Internal(node_index);
            }
        }
    }

    /// Rebuilds the look-ahead pointers from scratch (Algorithm 4), restoring
    /// maximal skipping after updates degraded the pointers of split leaves.
    pub fn rebuild_lookahead(&mut self) {
        if self.config.skipping {
            build_lookahead(&mut self.leaves);
            self.lookahead_stale = false;
        }
    }
}

impl SpatialIndex for ZIndex {
    fn name(&self) -> &'static str {
        self.variant
    }

    fn len(&self) -> usize {
        self.len
    }

    fn range_query(&self, query: &Rect, stats: &mut ExecStats) -> Vec<Point> {
        let projection_start = Instant::now();
        let relevant = self.project(query, stats);
        stats.add_projection(projection_start.elapsed());

        let scan_start = Instant::now();
        let result = self.scan(&relevant, query, stats);
        stats.add_scan(scan_start.elapsed());
        stats.results += result.len() as u64;
        result
    }

    fn point_query(&self, p: &Point, stats: &mut ExecStats) -> bool {
        let projection_start = Instant::now();
        let leaf = self.locate_leaf(p, stats);
        stats.add_projection(projection_start.elapsed());

        let scan_start = Instant::now();
        let leaf = &self.leaves[leaf as usize];
        let found = if leaf.count == 0 || !leaf.bbox.contains(p) {
            false
        } else {
            self.store.probe_page(leaf.page, p, stats)
        };
        stats.add_scan(scan_start.elapsed());
        if found {
            stats.results += 1;
        }
        found
    }

    fn insert(&mut self, p: Point) -> Result<(), IndexError> {
        if !p.is_finite() {
            return Err(IndexError::InvalidInput(format!(
                "cannot index non-finite point {p}"
            )));
        }
        if self.leaves.is_empty() {
            // An index built over an empty dataset starts with no leaves;
            // bootstrap a single all-covering leaf.
            let page = self.store.allocate(Vec::new());
            self.leaves.push(Leaf::new(Rect::UNIT, Rect::EMPTY, page, 0));
            self.root = NodeRef::Leaf(0);
            if self.config.skipping {
                self.rebuild_lookahead();
            }
        }
        let (leaf_index, path) = self.locate_leaf_with_path(&p);
        for (node, _) in &path {
            self.nodes[*node as usize].count += 1;
        }
        let leaf = &mut self.leaves[leaf_index as usize];
        if !leaf.region.contains(&p) {
            // The point falls outside the leaf's cell region (it lies outside
            // the original data space), so the region-based skip geometry no
            // longer bounds the leaf's contents.
            self.lookahead_stale = true;
        }
        self.store.append(leaf.page, p);
        leaf.count += 1;
        leaf.bbox.expand(&p);
        self.len += 1;
        self.data_space.expand(&p);

        if self.store.is_overflowing(self.leaves[leaf_index as usize].page) {
            let parent = path.last().copied();
            self.split_leaf(leaf_index, parent);
        }
        Ok(())
    }

    fn delete(&mut self, p: &Point) -> Result<bool, IndexError> {
        if self.leaves.is_empty() {
            return Ok(false);
        }
        let (leaf_index, path) = self.locate_leaf_with_path(p);
        let page_id = self.leaves[leaf_index as usize].page;
        let removed = self.store.page_mut(page_id).remove(p);
        if removed {
            let bbox = self.store.page(page_id).bbox();
            let leaf = &mut self.leaves[leaf_index as usize];
            leaf.count -= 1;
            leaf.bbox = bbox;
            for (node, _) in &path {
                self.nodes[*node as usize].count -= 1;
            }
            self.len -= 1;
        }
        Ok(removed)
    }

    fn maintain(&mut self) {
        self.rebuild_lookahead();
    }

    fn size_bytes(&self) -> usize {
        // Table 5 reports the size of the index structure (tree nodes, leaf
        // metadata, look-ahead pointers); the clustered data pages themselves
        // are common to every index and are not counted.
        std::mem::size_of::<Self>()
            + self.nodes.len() * std::mem::size_of::<InternalNode>()
            + self.leaves.len() * std::mem::size_of::<Leaf>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DensityMode;
    use crate::ZIndexBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn skewed_queries(n: usize, seed: u64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let cx = 0.2 + rng.gen::<f64>() * 0.2;
                let cy = 0.6 + rng.gen::<f64>() * 0.2;
                Rect::query_box(&Rect::UNIT, Point::new(cx, cy), 0.001, 1.0)
            })
            .collect()
    }

    fn brute_force(points: &[Point], query: &Rect) -> Vec<Point> {
        let mut r: Vec<Point> = points.iter().copied().filter(|p| query.contains(p)).collect();
        r.sort_by(|a, b| a.lex_cmp(b));
        r
    }

    fn small_config() -> ZIndexConfig {
        ZIndexConfig::wazi().with_leaf_capacity(32).with_kappa(8)
    }

    #[test]
    fn base_index_answers_range_queries_exactly() {
        let points = uniform_points(3_000, 1);
        let index = ZIndexBuilder::base()
            .with_config(ZIndexConfig::base().with_leaf_capacity(64))
            .build(points.clone(), &[]);
        assert_eq!(index.len(), points.len());
        let mut stats = ExecStats::default();
        for query in [
            Rect::from_coords(0.1, 0.1, 0.3, 0.3),
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            Rect::from_coords(0.45, 0.45, 0.55, 0.55),
            Rect::from_coords(0.9, 0.0, 1.0, 0.1),
        ] {
            let mut got = index.range_query(&query, &mut stats);
            got.sort_by(|a, b| a.lex_cmp(b));
            assert_eq!(got, brute_force(&points, &query));
        }
    }

    #[test]
    fn wazi_index_answers_range_queries_exactly() {
        let points = uniform_points(3_000, 2);
        let queries = skewed_queries(200, 3);
        let index = ZIndexBuilder::wazi()
            .with_config(small_config())
            .build(points.clone(), &queries);
        index.verify_lookahead_invariant().expect("skip pointers");
        let mut stats = ExecStats::default();
        for query in queries.iter().take(50) {
            let mut got = index.range_query(query, &mut stats);
            got.sort_by(|a, b| a.lex_cmp(b));
            assert_eq!(got, brute_force(&points, query));
        }
        // Also exact on queries far away from the training workload.
        for query in [
            Rect::from_coords(0.8, 0.05, 0.95, 0.2),
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
        ] {
            let mut got = index.range_query(&query, &mut stats);
            got.sort_by(|a, b| a.lex_cmp(b));
            assert_eq!(got, brute_force(&points, &query));
        }
    }

    #[test]
    fn point_queries_find_every_indexed_point() {
        let points = uniform_points(2_000, 4);
        let queries = skewed_queries(100, 5);
        let index = ZIndexBuilder::wazi()
            .with_config(small_config())
            .build(points.clone(), &queries);
        let mut stats = ExecStats::default();
        for p in points.iter().step_by(13) {
            assert!(index.point_query(p, &mut stats), "missing point {p}");
        }
        assert!(!index.point_query(&Point::new(2.0, 2.0), &mut stats));
        assert!(!index.point_query(&Point::new(0.123456, 0.654321), &mut stats));
    }

    #[test]
    fn exact_density_mode_builds_equivalent_results() {
        let points = uniform_points(1_500, 6);
        let queries = skewed_queries(100, 7);
        let index = ZIndexBuilder::wazi()
            .with_config(small_config().with_density(DensityMode::Exact))
            .build(points.clone(), &queries);
        let mut stats = ExecStats::default();
        for query in queries.iter().take(20) {
            let mut got = index.range_query(query, &mut stats);
            got.sort_by(|a, b| a.lex_cmp(b));
            assert_eq!(got, brute_force(&points, query));
        }
    }

    #[test]
    fn skipping_reduces_bounding_box_checks() {
        let points = uniform_points(8_000, 8);
        let queries = skewed_queries(200, 9);
        let config = small_config();
        let with_skip = ZIndexBuilder::wazi().with_config(config).build(points.clone(), &queries);
        let without_skip = ZIndexBuilder::wazi()
            .with_config(ZIndexConfig::wazi_without_skipping().with_leaf_capacity(32).with_kappa(8))
            .build(points.clone(), &queries);
        let mut skip_stats = ExecStats::default();
        let mut plain_stats = ExecStats::default();
        for q in &queries {
            with_skip.range_query(q, &mut skip_stats);
            without_skip.range_query(q, &mut plain_stats);
        }
        assert_eq!(skip_stats.results, plain_stats.results);
        assert!(
            skip_stats.bbs_checked < plain_stats.bbs_checked,
            "skipping should check fewer bounding boxes ({} vs {})",
            skip_stats.bbs_checked,
            plain_stats.bbs_checked
        );
    }

    #[test]
    fn wazi_does_less_total_work_than_base_on_a_skewed_workload() {
        let points = uniform_points(10_000, 10);
        let queries = skewed_queries(300, 11);
        let base = ZIndexBuilder::base()
            .with_config(ZIndexConfig::base().with_leaf_capacity(32))
            .build(points.clone(), &[]);
        let wazi = ZIndexBuilder::wazi()
            .with_config(small_config())
            .build(points.clone(), &queries);
        let mut base_stats = ExecStats::default();
        let mut wazi_stats = ExecStats::default();
        for q in &queries {
            base.range_query(q, &mut base_stats);
            wazi.range_query(q, &mut wazi_stats);
        }
        assert_eq!(base_stats.results, wazi_stats.results);
        // Total scanning-phase work: points compared plus bounding boxes
        // checked. The skipping mechanism removes the bulk of the bounding
        // box comparisons, which dominates on this workload.
        let base_work = base_stats.points_scanned + base_stats.bbs_checked;
        let wazi_work = wazi_stats.points_scanned + wazi_stats.bbs_checked;
        assert!(
            wazi_work < base_work,
            "WaZI total work ({wazi_work}) should be below Base ({base_work})"
        );
        assert!(
            wazi_stats.bbs_checked * 2 < base_stats.bbs_checked,
            "skipping should cut bounding-box checks at least in half ({} vs {})",
            wazi_stats.bbs_checked,
            base_stats.bbs_checked
        );
    }

    /// Mirrors the paper's evaluation regime: clustered (OSM-like) data with
    /// a query workload concentrated on a sub-region (Gowalla-like
    /// check-ins). Adaptive partitioning should reduce the points scanned
    /// relative to the base median layout in this setting.
    #[test]
    fn wazi_scans_fewer_points_on_clustered_data() {
        let mut rng = StdRng::seed_from_u64(20);
        let mut points = Vec::new();
        // Three dense clusters plus a sparse uniform background.
        let clusters = [(0.25, 0.7, 0.04), (0.7, 0.3, 0.06), (0.55, 0.75, 0.03)];
        for &(cx, cy, spread) in &clusters {
            for _ in 0..2_500 {
                let x = (cx + (rng.gen::<f64>() - 0.5) * spread * 4.0).clamp(0.0, 1.0);
                let y = (cy + (rng.gen::<f64>() - 0.5) * spread * 4.0).clamp(0.0, 1.0);
                points.push(Point::new(x, y));
            }
        }
        for _ in 0..2_500 {
            points.push(Point::new(rng.gen::<f64>(), rng.gen::<f64>()));
        }
        // Queries concentrate on the first cluster but are offset from its
        // centre, so the query distribution differs from the data
        // distribution (the paper's central experimental premise).
        let queries: Vec<Rect> = (0..300)
            .map(|_| {
                let cx = 0.28 + (rng.gen::<f64>() - 0.5) * 0.1;
                let cy = 0.65 + (rng.gen::<f64>() - 0.5) * 0.1;
                Rect::query_box(&Rect::UNIT, Point::new(cx, cy), 0.0005, 1.0)
            })
            .collect();

        let base = ZIndexBuilder::base()
            .with_config(ZIndexConfig::base().with_leaf_capacity(32))
            .build(points.clone(), &[]);
        let wazi = ZIndexBuilder::wazi()
            .with_config(small_config().with_kappa(16))
            .build(points.clone(), &queries);
        let mut base_stats = ExecStats::default();
        let mut wazi_stats = ExecStats::default();
        for q in &queries {
            base.range_query(q, &mut base_stats);
            wazi.range_query(q, &mut wazi_stats);
        }
        assert_eq!(base_stats.results, wazi_stats.results);
        let base_work = base_stats.points_scanned + base_stats.bbs_checked;
        let wazi_work = wazi_stats.points_scanned + wazi_stats.bbs_checked;
        assert!(
            wazi_work < base_work,
            "WaZI total work ({wazi_work}) should be below Base ({base_work}) on clustered data"
        );
    }

    #[test]
    fn inserts_preserve_query_correctness_and_structure() {
        let points = uniform_points(1_000, 12);
        let queries = skewed_queries(50, 13);
        let mut index = ZIndexBuilder::wazi()
            .with_config(small_config())
            .build(points.clone(), &queries);
        let inserts = uniform_points(600, 14);
        for p in &inserts {
            index.insert(*p).expect("insert");
        }
        assert_eq!(index.len(), points.len() + inserts.len());
        index.verify_structure().expect("structure after inserts");
        index.verify_lookahead_invariant().expect("pointers stay safe");

        let mut all = points.clone();
        all.extend_from_slice(&inserts);
        let mut stats = ExecStats::default();
        for query in queries.iter().take(20) {
            let mut got = index.range_query(query, &mut stats);
            got.sort_by(|a, b| a.lex_cmp(b));
            assert_eq!(got, brute_force(&all, query));
        }

        // Rebuilding the pointers restores maximal skipping and stays safe.
        index.rebuild_lookahead();
        index.verify_lookahead_invariant().expect("rebuilt pointers");
        for query in queries.iter().take(20) {
            let mut got = index.range_query(query, &mut stats);
            got.sort_by(|a, b| a.lex_cmp(b));
            assert_eq!(got, brute_force(&all, query));
        }
    }

    #[test]
    fn deletes_remove_points_and_keep_queries_exact() {
        let points = uniform_points(1_200, 15);
        let mut index = ZIndexBuilder::base()
            .with_config(ZIndexConfig::base().with_leaf_capacity(32))
            .build(points.clone(), &[]);
        let mut remaining = points.clone();
        for p in points.iter().step_by(3) {
            assert_eq!(index.delete(p), Ok(true));
            let pos = remaining.iter().position(|q| q == p).unwrap();
            remaining.swap_remove(pos);
        }
        assert_eq!(index.delete(&Point::new(5.0, 5.0)), Ok(false));
        assert_eq!(index.len(), remaining.len());
        index.verify_structure().expect("structure after deletes");
        let mut stats = ExecStats::default();
        let query = Rect::from_coords(0.2, 0.2, 0.8, 0.8);
        let mut got = index.range_query(&query, &mut stats);
        got.sort_by(|a, b| a.lex_cmp(b));
        assert_eq!(got, brute_force(&remaining, &query));
    }

    #[test]
    fn insert_into_empty_index_bootstraps_a_leaf() {
        let mut index = ZIndexBuilder::wazi().build(Vec::new(), &[]);
        assert!(index.is_empty());
        index.insert(Point::new(0.5, 0.5)).expect("insert");
        index.insert(Point::new(0.25, 0.75)).expect("insert");
        assert_eq!(index.len(), 2);
        let mut stats = ExecStats::default();
        assert!(index.point_query(&Point::new(0.5, 0.5), &mut stats));
        assert_eq!(
            index.range_query(&Rect::UNIT, &mut stats).len(),
            2
        );
    }

    #[test]
    fn non_finite_inserts_are_rejected() {
        let mut index = ZIndexBuilder::base().build(uniform_points(100, 16), &[]);
        assert!(matches!(
            index.insert(Point::new(f64::NAN, 0.5)),
            Err(IndexError::InvalidInput(_))
        ));
        assert_eq!(index.len(), 100);
    }

    #[test]
    fn metadata_accessors_are_consistent() {
        let points = uniform_points(2_000, 17);
        let queries = skewed_queries(100, 18);
        let index = ZIndexBuilder::wazi()
            .with_config(small_config())
            .build(points, &queries);
        assert_eq!(index.name(), "WaZI");
        assert!(index.leaf_count() > 1);
        assert!(index.internal_count() >= 1);
        assert!(index.height() >= 2);
        assert!(index.size_bytes() > 0);
        assert!(index.build_report().build_ns > 0);
        assert!(index.build_report().candidates_evaluated > 0);
        assert!((0.0..=1.0).contains(&index.acbd_fraction()));
        assert!(Rect::UNIT.contains_rect(&index.data_space()));
        assert!(index.skipping_enabled());
    }

    #[test]
    fn knn_on_zindex_matches_brute_force() {
        let points = uniform_points(2_000, 19);
        let index = ZIndexBuilder::base()
            .with_config(ZIndexConfig::base().with_leaf_capacity(64))
            .build(points.clone(), &[]);
        let mut stats = ExecStats::default();
        let q = Point::new(0.33, 0.71);
        let got = index.knn(&q, 10, &mut stats);
        let mut expected = points.clone();
        expected.sort_by(|a, b| a.distance_squared(&q).total_cmp(&b.distance_squared(&q)));
        expected.truncate(10);
        assert_eq!(got, expected);
    }
}
