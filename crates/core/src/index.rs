//! The `SpatialIndex` trait implemented by every index in the evaluation.

use crate::engine::{PointBatchKernel, RangeBatchKernel};
use wazi_geom::{Point, Rect};
use wazi_storage::ExecStats;

/// Errors returned by index operations.
///
/// The enum is `#[non_exhaustive]`: downstream crates must keep a wildcard
/// arm when matching, so adding error variants is not a breaking change.
/// [`crate::engine::EngineError`] wraps it via `From` for engine callers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IndexError {
    /// The index does not support the requested operation (e.g. inserts into
    /// a statically packed index such as STR).
    Unsupported(&'static str),
    /// The operation's input was invalid (e.g. a non-finite point).
    InvalidInput(String),
    /// The index's structure cannot apply the requested incremental update;
    /// callers that must make progress anyway (e.g. the versioned writer's
    /// rebuild fallback) match on this variant specifically.
    UpdateUnsupported {
        /// Display name of the rejecting index ([`SpatialIndex::name`]).
        index: &'static str,
        /// The rejected update operation (`"insert"` or `"delete"`).
        op: &'static str,
    },
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::Unsupported(op) => write!(f, "operation not supported: {op}"),
            IndexError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            IndexError::UpdateUnsupported { index, op } => {
                write!(f, "{index} does not support incremental {op}")
            }
        }
    }
}

impl std::error::Error for IndexError {}

/// Common interface of the spatial indexes compared in the paper's
/// evaluation (WaZI, Base, STR, CUR, Flood, QUASII, rank-space Z-order).
///
/// All query methods receive an [`ExecStats`] sink so the benchmark harness
/// can report the counters of Figures 9 and 13 uniformly, independent of
/// wall-clock measurement.
///
/// Range queries come in three execution modes sharing one semantics:
///
/// * [`SpatialIndex::range_query`] materializes the result set;
/// * [`SpatialIndex::range_count`] returns only its size;
/// * [`SpatialIndex::range_for_each`] streams every result to a closure.
///
/// The latter two have materializing default implementations; every index in
/// this workspace overrides them with non-materializing fast paths so the
/// work measured by the benchmark harness matches the paper's cost model
/// (points compared, not vectors allocated).
///
/// The trait requires `Send + Sync`: all query methods take `&self`, and the
/// concurrent query service (`wazi-service`) shares one index across its
/// worker pool and client threads behind an `Arc<dyn SpatialIndex>`. Every
/// index in this workspace is a plain owned data structure with no interior
/// mutability, so the bound costs implementors nothing.
///
/// # Panic safety
///
/// Every query entry point — the three range modes, [`SpatialIndex::point_query`],
/// [`SpatialIndex::knn`], and both batch kernels — executes over `&self` and
/// must not mutate index state (updates go through the exclusive `&mut self`
/// methods). Under that contract a panic unwinding out of a kernel leaves
/// the index exactly as it was: all sweep cursors, active sets and counters
/// are call-owned and dropped with the frame. This is what lets
/// [`crate::catch_execution_panic`] (and `wazi-service`'s degraded batch
/// path on top of it) catch a kernel panic, fail the one poisoning query,
/// and keep serving the same index — implementors adding caches or other
/// interior mutability to the read path would break that recovery story and
/// must not.
pub trait SpatialIndex: Send + Sync {
    /// Short display name used in experiment tables ("WaZI", "Base", ...).
    fn name(&self) -> &'static str;

    /// Number of points currently indexed.
    fn len(&self) -> usize;

    /// Returns `true` when the index holds no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tight-enough bounding rectangle of the indexed data: every indexed
    /// point lies inside it. Used to bound the final sweep of the kNN
    /// fallback; may be [`Rect::EMPTY`] only for an empty index.
    fn data_bounds(&self) -> Rect;

    /// Returns every indexed point that falls inside `query`.
    fn range_query(&self, query: &Rect, stats: &mut ExecStats) -> Vec<Point>;

    /// Returns the number of indexed points inside `query`.
    ///
    /// The default materializes through [`SpatialIndex::range_query`];
    /// indexes override it with a counting scan that allocates nothing.
    fn range_count(&self, query: &Rect, stats: &mut ExecStats) -> u64 {
        self.range_query(query, stats).len() as u64
    }

    /// Invokes `visit` for every indexed point inside `query`.
    ///
    /// The default materializes through [`SpatialIndex::range_query`];
    /// indexes override it with a streaming scan that allocates nothing.
    /// Visit order is unspecified (it follows the index's layout).
    fn range_for_each(&self, query: &Rect, stats: &mut ExecStats, visit: &mut dyn FnMut(&Point)) {
        for p in self.range_query(query, stats) {
            visit(&p);
        }
    }

    /// Returns `true` when a point equal to `p` is indexed.
    fn point_query(&self, p: &Point, stats: &mut ExecStats) -> bool;

    /// Inserts a point. Indexes that only support bulk loading return
    /// [`IndexError::UpdateUnsupported`] naming themselves, so callers can
    /// distinguish "this index never ingests" from other failures and fall
    /// back to a rebuild.
    fn insert(&mut self, _p: Point) -> Result<(), IndexError> {
        Err(IndexError::UpdateUnsupported {
            index: self.name(),
            op: "insert",
        })
    }

    /// Deletes a point (the first indexed point equal to `p`). Returns
    /// `Ok(true)` when a point was removed. Indexes that only support bulk
    /// loading return [`IndexError::UpdateUnsupported`] naming themselves.
    fn delete(&mut self, _p: &Point) -> Result<bool, IndexError> {
        Err(IndexError::UpdateUnsupported {
            index: self.name(),
            op: "delete",
        })
    }

    /// Post-batch maintenance hook: indexes that defer bookkeeping during
    /// updates (e.g. WaZI's look-ahead pointers) restore their optimal state
    /// here. The default does nothing.
    fn maintain(&mut self) {}

    /// Approximate in-memory size of the index structure in bytes,
    /// including learned components but excluding nothing: this is the
    /// quantity reported in Table 5.
    fn size_bytes(&self) -> usize;

    /// The `k` nearest neighbours of `q`, ordered by increasing distance.
    ///
    /// The default implementation decomposes kNN into a sequence of growing
    /// range queries, the strategy the paper describes for indexes without a
    /// specialised kNN algorithm (Section 6.3, "Remark on kNN and
    /// Spatial-Join Queries").
    fn knn(&self, q: &Point, k: usize, stats: &mut ExecStats) -> Vec<Point> {
        knn_by_range_queries(self, q, k, stats)
    }

    /// Fused batch-range capability hook for the query engine.
    ///
    /// Indexes that can execute many range queries in one pass (sharing
    /// page visits between overlapping queries) return themselves here;
    /// the default advertises nothing, and
    /// [`crate::QueryEngine::execute_batch`] under
    /// [`crate::BatchStrategy::Fused`] falls back to the sequential loop.
    fn range_batch_kernel(&self) -> Option<&dyn RangeBatchKernel> {
        None
    }

    /// Fused batch-point-probe capability hook for the query engine.
    ///
    /// Indexes that can answer many exact-match probes in one leaf-grouped
    /// pass (probes grouped by owning page, each page fetched once per
    /// batch) return themselves here; the default advertises nothing, and
    /// the engine's fused strategies fall back to per-probe execution.
    fn point_batch_kernel(&self) -> Option<&dyn PointBatchKernel> {
        None
    }
}

/// kNN by repeated range queries with a doubling search radius.
///
/// A candidate set found within radius `r` is only final once the k-th
/// nearest candidate lies within `r` — or once the search box covers the
/// index's [`SpatialIndex::data_bounds`], in which case no point can hide
/// outside it (the sweep is then clamped to the bounds themselves, keeping
/// the coordinates finite and inside the range every index's coordinate
/// mapping was built for). The initial radius assumes a roughly uniform
/// density over the data bounds, so the first box is expected to hold about
/// `k` points whatever the dataset's extent.
///
/// The per-round geometry and termination tests live in
/// [`crate::engine::KnnSweepState`], which the engine's fused kNN batch path
/// shares verbatim — the two paths answer bit-identically by construction.
pub(crate) fn knn_by_range_queries<I: SpatialIndex + ?Sized>(
    index: &I,
    q: &Point,
    k: usize,
    stats: &mut ExecStats,
) -> Vec<Point> {
    let Some(mut state) =
        crate::engine::KnnSweepState::new(*q, k, index.len(), index.data_bounds())
    else {
        return Vec::new();
    };
    loop {
        let (sweep, covers_everything) = state.sweep();
        let candidates = index.range_query(&sweep, stats);
        if let Some(neighbors) = state.absorb(covers_everything, candidates) {
            return neighbors;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivially correct index used to exercise the trait's default
    /// methods.
    struct ScanIndex {
        points: Vec<Point>,
    }

    impl SpatialIndex for ScanIndex {
        fn name(&self) -> &'static str {
            "Scan"
        }
        fn len(&self) -> usize {
            self.points.len()
        }
        fn data_bounds(&self) -> Rect {
            Rect::bounding(&self.points)
        }
        fn range_query(&self, query: &Rect, stats: &mut ExecStats) -> Vec<Point> {
            stats.points_scanned += self.points.len() as u64;
            let out: Vec<Point> = self
                .points
                .iter()
                .copied()
                .filter(|p| query.contains(p))
                .collect();
            stats.results += out.len() as u64;
            out
        }
        fn point_query(&self, p: &Point, stats: &mut ExecStats) -> bool {
            stats.points_scanned += self.points.len() as u64;
            self.points.contains(p)
        }
        fn size_bytes(&self) -> usize {
            self.points.len() * std::mem::size_of::<Point>()
        }
    }

    fn grid_index() -> ScanIndex {
        let mut points = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                points.push(Point::new(i as f64 / 10.0, j as f64 / 10.0));
            }
        }
        ScanIndex { points }
    }

    #[test]
    fn default_insert_and_delete_are_typed_update_unsupported() {
        let mut idx = grid_index();
        assert_eq!(
            idx.insert(Point::new(0.5, 0.5)),
            Err(IndexError::UpdateUnsupported {
                index: "Scan",
                op: "insert"
            })
        );
        assert_eq!(
            idx.delete(&Point::new(0.5, 0.5)),
            Err(IndexError::UpdateUnsupported {
                index: "Scan",
                op: "delete"
            })
        );
        assert!(!idx.is_empty());
    }

    #[test]
    fn default_count_and_for_each_agree_with_range_query() {
        let idx = grid_index();
        let query = Rect::from_coords(0.15, 0.15, 0.75, 0.55);
        let mut stats = ExecStats::default();
        let materialized = idx.range_query(&query, &mut stats);
        assert_eq!(
            idx.range_count(&query, &mut stats),
            materialized.len() as u64
        );
        let mut streamed = Vec::new();
        idx.range_for_each(&query, &mut stats, &mut |p| streamed.push(*p));
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn knn_returns_k_closest_points_in_order() {
        let idx = grid_index();
        let mut stats = ExecStats::default();
        let q = Point::new(0.42, 0.42);
        let result = idx.knn(&q, 4, &mut stats);
        assert_eq!(result.len(), 4);
        // Closest grid point is (0.4, 0.4).
        assert_eq!(result[0], Point::new(0.4, 0.4));
        // Distances must be non-decreasing.
        for w in result.windows(2) {
            assert!(w[0].distance(&q) <= w[1].distance(&q) + 1e-12);
        }
    }

    #[test]
    fn knn_handles_edge_cases() {
        let idx = grid_index();
        let mut stats = ExecStats::default();
        assert!(idx.knn(&Point::new(0.5, 0.5), 0, &mut stats).is_empty());
        let all = idx.knn(&Point::new(0.5, 0.5), 1_000, &mut stats);
        assert_eq!(all.len(), 100, "k larger than the index clamps to len");
        let empty = ScanIndex { points: vec![] };
        assert!(empty.knn(&Point::new(0.5, 0.5), 3, &mut stats).is_empty());
    }

    #[test]
    fn knn_from_far_outside_the_data_terminates_via_the_clamped_sweep() {
        let idx = grid_index();
        let mut stats = ExecStats::default();
        let q = Point::new(1.0e9, 1.0e9);
        let result = idx.knn(&q, 3, &mut stats);
        assert_eq!(result.len(), 3);
        // The closest grid point to a far top-right query is (0.9, 0.9).
        assert_eq!(result[0], Point::new(0.9, 0.9));
    }

    /// The initial-radius guess scales with the data bounds: on a non-unit
    /// dataset the first box already has the right order of magnitude, so
    /// the doubling loop finishes within a couple of sweeps instead of
    /// warming up from a unit-square-sized box.
    #[test]
    fn knn_initial_radius_scales_with_data_bounds() {
        let mut points = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                points.push(Point::new(i as f64 * 100.0, j as f64 * 100.0));
            }
        }
        let idx = ScanIndex { points };
        let mut stats = ExecStats::default();
        let q = Point::new(420.0, 420.0);
        let result = idx.knn(&q, 4, &mut stats);
        assert_eq!(result.len(), 4);
        assert_eq!(result[0], Point::new(400.0, 400.0));
        // Every range-query sweep of this brute-force index compares all 100
        // points; a well-sized initial box needs at most a few sweeps. The
        // old unit-square guess started at radius 0.2 and needed ~13
        // doublings (> 1000 points scanned) before reaching the data.
        assert!(
            stats.points_scanned <= 500,
            "too many doubling rounds: {} points scanned",
            stats.points_scanned
        );
    }

    /// Degenerate data bounds (all points collinear: zero area) fall back to
    /// the floor radius and still terminate with the right answer.
    #[test]
    fn knn_handles_zero_area_data_bounds() {
        let points: Vec<Point> = (0..50).map(|i| Point::new(i as f64, 5.0)).collect();
        let idx = ScanIndex { points };
        let mut stats = ExecStats::default();
        let result = idx.knn(&Point::new(10.2, 5.0), 3, &mut stats);
        assert_eq!(
            result,
            vec![
                Point::new(10.0, 5.0),
                Point::new(11.0, 5.0),
                Point::new(9.0, 5.0)
            ]
        );
    }

    #[test]
    fn index_error_display() {
        assert_eq!(
            IndexError::Unsupported("insert").to_string(),
            "operation not supported: insert"
        );
        assert!(IndexError::InvalidInput("nan".into())
            .to_string()
            .contains("nan"));
        let typed = IndexError::UpdateUnsupported {
            index: "QUASII",
            op: "insert",
        };
        assert_eq!(
            typed.to_string(),
            "QUASII does not support incremental insert"
        );
    }
}
