//! Index construction: the base (median / `abcd`) builder and the greedy
//! workload-aware builder of Algorithm 3.

use crate::config::{DensityMode, ZIndexConfig};
use crate::cost::{best_ordering, QuadrantCounts};
use crate::lookahead::build_lookahead;
use crate::node::{InternalNode, Leaf, NodeRef};
use crate::zindex::ZIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use wazi_density::Rfde;
use wazi_geom::{CellOrdering, Point, Quadrant, Rect};
use wazi_storage::PageStore;

/// Which construction algorithm a [`ZIndexBuilder`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildStrategy {
    /// Median splits and fixed `abcd` ordering (the base Z-index of
    /// Section 3).
    Base,
    /// Greedy cost-minimising splits and orderings (WaZI, Algorithm 3).
    Adaptive,
}

/// Summary of one index construction, reported in Table 3 and used by the
/// cost-redemption analysis (Table 4).
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildReport {
    /// Wall-clock construction time in nanoseconds.
    pub build_ns: u64,
    /// Time spent fitting density-estimation models, included in `build_ns`.
    pub density_fit_ns: u64,
    /// Number of candidate splits evaluated by the greedy optimiser.
    pub candidates_evaluated: u64,
    /// Number of cells for which the `acbd` ordering was selected.
    pub acbd_cells: u64,
    /// Number of cells for which the `abcd` ordering was selected.
    pub abcd_cells: u64,
}

/// Builder producing [`ZIndex`] instances (both the base variant and WaZI).
#[derive(Debug, Clone)]
pub struct ZIndexBuilder {
    config: ZIndexConfig,
    strategy: BuildStrategy,
}

impl ZIndexBuilder {
    /// Creates a builder with the given configuration and strategy.
    pub fn new(config: ZIndexConfig, strategy: BuildStrategy) -> Self {
        Self { config, strategy }
    }

    /// Builder for the paper's WaZI index.
    pub fn wazi() -> Self {
        Self::new(ZIndexConfig::wazi(), BuildStrategy::Adaptive)
    }

    /// Builder for the base Z-index.
    pub fn base() -> Self {
        Self::new(ZIndexConfig::base(), BuildStrategy::Base)
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: ZIndexConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds the index over `points`, optimising for the workload `queries`
    /// when the strategy is adaptive. The base strategy ignores the workload.
    pub fn build(&self, points: Vec<Point>, queries: &[Rect]) -> ZIndex {
        self.config
            .validate()
            .expect("invalid Z-index configuration");
        let start = Instant::now();
        let mut report = BuildReport::default();

        let data_space = if points.is_empty() {
            Rect::UNIT
        } else {
            Rect::bounding(&points)
        };

        let rfde = match (self.strategy, self.config.density) {
            (BuildStrategy::Adaptive, DensityMode::Rfde(cfg)) if !points.is_empty() => {
                let fit_start = Instant::now();
                let model = Rfde::fit(&points, cfg);
                report.density_fit_ns = fit_start.elapsed().as_nanos() as u64;
                Some(model)
            }
            _ => None,
        };

        let mut ctx = BuildContext {
            config: self.config,
            strategy: self.strategy,
            rfde,
            rng: StdRng::seed_from_u64(self.config.seed),
            nodes: Vec::new(),
            leaves: Vec::new(),
            store: PageStore::new(self.config.leaf_capacity),
            report,
        };

        let len = points.len();
        let mut points = points;
        let root = ctx.build_cell(&mut points, data_space, queries, 0);

        if self.config.skipping {
            build_lookahead(&mut ctx.leaves);
        }

        ctx.report.build_ns = start.elapsed().as_nanos() as u64;
        let variant = match (self.strategy, self.config.skipping) {
            (BuildStrategy::Adaptive, true) => "WaZI",
            (BuildStrategy::Adaptive, false) => "WaZI-SK",
            (BuildStrategy::Base, true) => "Base+SK",
            (BuildStrategy::Base, false) => "Base",
        };

        ZIndex::from_parts(
            variant,
            self.config,
            ctx.nodes,
            ctx.leaves,
            root,
            ctx.store,
            len,
            data_space,
            ctx.report,
        )
    }
}

/// Cells holding at most this many points evaluate quadrant cardinalities
/// exactly instead of through the RFDE model. Near the leaves the RFDE's
/// resolution (its leaf weight) is coarser than the cells being optimised, so
/// exact counting — which is cheap at this size — avoids noisy split choices;
/// the learned estimator is what makes the *upper* levels affordable.
const EXACT_COUNT_THRESHOLD: usize = 4_096;

/// Mutable state threaded through the recursive construction.
struct BuildContext {
    config: ZIndexConfig,
    strategy: BuildStrategy,
    rfde: Option<Rfde>,
    rng: StdRng,
    nodes: Vec<InternalNode>,
    leaves: Vec<Leaf>,
    store: PageStore,
    report: BuildReport,
}

impl BuildContext {
    /// Recursively builds the cell covering `region` holding `points`,
    /// optimised for the (already clipped) `queries`. Children are visited in
    /// curve order so leaves and their pages are laid out consecutively.
    fn build_cell(
        &mut self,
        points: &mut [Point],
        region: Rect,
        queries: &[Rect],
        depth: usize,
    ) -> NodeRef {
        if points.len() < self.config.leaf_capacity.max(1)
            || depth >= self.config.max_depth
            || points.is_empty()
        {
            return self.make_leaf(points, region);
        }
        let bbox = Rect::bounding(points);
        if bbox.width() == 0.0 && bbox.height() == 0.0 {
            // Every point is identical: no split can separate them.
            return self.make_leaf(points, region);
        }

        let (split, ordering) = match self.strategy {
            BuildStrategy::Base => (median_split(points), CellOrdering::Abcd),
            BuildStrategy::Adaptive => self.choose_adaptive(points, &bbox, queries),
        };
        match ordering {
            CellOrdering::Abcd => self.report.abcd_cells += 1,
            CellOrdering::Acbd => self.report.acbd_cells += 1,
        }

        // Partition points by quadrant (spatial label order A, B, C, D).
        let mut buckets: [Vec<Point>; 4] = Default::default();
        for p in points.iter() {
            buckets[Quadrant::of(p, &split).label_index()].push(*p);
        }
        if buckets.iter().any(|b| b.len() == points.len()) {
            // Degenerate split: one quadrant swallowed everything (possible
            // when coordinates are heavily duplicated). Recursing would not
            // make progress, so the cell becomes an oversized leaf.
            return self.make_leaf(points, region);
        }

        let node_index = self.nodes.len() as u32;
        self.nodes.push(InternalNode {
            region,
            split,
            ordering,
            children: [NodeRef::Leaf(0); 4],
            count: points.len(),
        });

        let mut children = [NodeRef::Leaf(0); 4];
        for (position, quadrant) in ordering.curve().into_iter().enumerate() {
            let child_region = quadrant.region(&region, &split);
            let mut child_queries: Vec<Rect> = queries
                .iter()
                .filter_map(|q| q.intersection(&child_region))
                .collect();
            // Queries that degenerate to zero area after clipping carry no
            // information for deeper levels.
            child_queries.retain(|q| q.area() > 0.0);
            let child_points = &mut buckets[quadrant.label_index()];
            children[position] =
                self.build_cell(child_points, child_region, &child_queries, depth + 1);
        }
        self.nodes[node_index as usize].children = children;
        NodeRef::Internal(node_index)
    }

    /// Line 2–3 of Algorithm 3: sample `κ` candidate split points uniformly
    /// from the cell and pick the split and ordering minimising the
    /// retrieval cost (Eq. 5).
    fn choose_adaptive(
        &mut self,
        points: &[Point],
        bbox: &Rect,
        queries: &[Rect],
    ) -> (Point, CellOrdering) {
        if queries.is_empty() {
            // No workload signal for this cell: fall back to the data-driven
            // median split of the base index.
            return (median_split(points), CellOrdering::Abcd);
        }
        let mut best: Option<(Point, CellOrdering, f64)> = None;
        // The data median is always included as a candidate so WaZI can never
        // do worse than the base split on the cost model.
        let median = median_split(points);
        for k in 0..=self.config.kappa {
            let candidate = if k == 0 {
                median
            } else {
                sample_split(&mut self.rng, bbox)
            };
            let counts = match (&self.rfde, self.config.density) {
                (Some(model), DensityMode::Rfde(_)) if points.len() > EXACT_COUNT_THRESHOLD => {
                    QuadrantCounts::estimated(model, bbox, &candidate)
                }
                _ => QuadrantCounts::exact(points, &candidate),
            };
            let (ordering, cost) = best_ordering(queries, &candidate, &counts, self.config.alpha);
            self.report.candidates_evaluated += 1;
            if best.is_none_or(|(_, _, c)| cost < c) {
                best = Some((candidate, ordering, cost));
            }
        }
        let (split, ordering, _) = best.expect("at least one candidate evaluated");
        (split, ordering)
    }

    /// Creates a leaf node and its clustered page.
    fn make_leaf(&mut self, points: &[Point], region: Rect) -> NodeRef {
        let bbox = Rect::bounding(points);
        let page = self.store.allocate(points.to_vec());
        let leaf_index = self.leaves.len() as u32;
        self.leaves
            .push(Leaf::new(region, bbox, page, points.len()));
        NodeRef::Leaf(leaf_index)
    }
}

/// The median split point of the base Z-index: the medians of the `x` and
/// `y` coordinates of the cell's points.
pub(crate) fn median_split(points: &[Point]) -> Point {
    debug_assert!(!points.is_empty());
    let mut xs: Vec<f64> = points.iter().map(|p| p.x).collect();
    let mut ys: Vec<f64> = points.iter().map(|p| p.y).collect();
    let mid = points.len() / 2;
    let (_, mx, _) = xs.select_nth_unstable_by(mid, f64::total_cmp);
    let (_, my, _) = ys.select_nth_unstable_by(mid, f64::total_cmp);
    Point::new(*mx, *my)
}

/// Samples a candidate split point uniformly from the interior of the cell's
/// point bounding box. Sampling inside the bounding box (rather than the full
/// cell region) guarantees the candidate actually separates data whenever the
/// cell holds non-identical points.
fn sample_split(rng: &mut StdRng, bbox: &Rect) -> Point {
    let x = if bbox.width() > 0.0 {
        rng.gen_range(bbox.lo.x..bbox.hi.x)
    } else {
        bbox.lo.x
    };
    let y = if bbox.height() > 0.0 {
        rng.gen_range(bbox.lo.y..bbox.hi.y)
    } else {
        bbox.lo.y
    };
    Point::new(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_split_matches_sorted_median() {
        let points = vec![
            Point::new(0.9, 0.1),
            Point::new(0.1, 0.9),
            Point::new(0.5, 0.5),
            Point::new(0.3, 0.7),
            Point::new(0.7, 0.3),
        ];
        let m = median_split(&points);
        assert_eq!(m, Point::new(0.5, 0.5));
    }

    #[test]
    fn sample_split_stays_inside_bbox() {
        let mut rng = StdRng::seed_from_u64(1);
        let bbox = Rect::from_coords(0.2, 0.4, 0.6, 0.9);
        for _ in 0..100 {
            let s = sample_split(&mut rng, &bbox);
            assert!(bbox.contains(&s));
        }
        // Degenerate bounding boxes collapse to their low corner on the flat
        // axis instead of panicking.
        let flat = Rect::from_coords(0.5, 0.1, 0.5, 0.9);
        let s = sample_split(&mut rng, &flat);
        assert_eq!(s.x, 0.5);
        assert!((0.1..0.9).contains(&s.y));
    }
}
