//! Update processing (Section 6.7): inserts, deletes, leaf splits and
//! look-ahead pointer maintenance.
//!
//! Updates keep the clustered layout intact: an insert descends to the
//! owning leaf (remembering the internal path for subtree counts), appends
//! to the leaf's page and splits the page along the data medians when it
//! overflows. Split leaves receive conservative look-ahead pointers (their
//! plain successor), which preserves the skipping safety invariant until
//! [`ZIndex::rebuild_lookahead`] restores maximally skipping pointers.

use super::ZIndex;
use crate::index::IndexError;
use crate::lookahead::build_lookahead;
use crate::node::{InternalNode, Leaf, Lookahead, NodeRef, LOOKAHEAD_END};
use wazi_geom::{CellOrdering, Point, Quadrant, Rect};

impl ZIndex {
    /// Like [`ZIndex::locate_leaf`] but records the internal path so update
    /// operations can maintain subtree counts and rewire split leaves.
    fn locate_leaf_with_path(&self, p: &Point) -> (u32, Vec<(u32, usize)>) {
        let mut node = self.root;
        let mut path = Vec::new();
        loop {
            match node {
                NodeRef::Leaf(i) => return (i, path),
                NodeRef::Internal(i) => {
                    let internal = &self.nodes[i as usize];
                    let slot = internal.ordering.child_of(p, &internal.split);
                    path.push((i, slot));
                    node = internal.children[slot];
                }
            }
        }
    }

    /// Inserts a point, bootstrapping a single all-covering leaf when the
    /// index was built over an empty dataset.
    pub(crate) fn insert_point(&mut self, p: Point) -> Result<(), IndexError> {
        if !p.is_finite() {
            return Err(IndexError::InvalidInput(format!(
                "cannot index non-finite point {p}"
            )));
        }
        if self.leaves.is_empty() {
            // An index built over an empty dataset starts with no leaves;
            // bootstrap a single all-covering leaf.
            let page = self.store.allocate(Vec::new());
            self.leaves
                .push(Leaf::new(Rect::UNIT, Rect::EMPTY, page, 0));
            self.root = NodeRef::Leaf(0);
            if self.config.skipping {
                self.rebuild_lookahead();
            }
        }
        let (leaf_index, path) = self.locate_leaf_with_path(&p);
        for (node, _) in &path {
            self.nodes[*node as usize].count += 1;
        }
        let leaf = &mut self.leaves[leaf_index as usize];
        if !leaf.region.contains(&p) {
            // The point falls outside the leaf's cell region (it lies outside
            // the original data space), so the region-based skip geometry no
            // longer bounds the leaf's contents.
            self.lookahead_stale = true;
        }
        self.store.append(leaf.page, p);
        leaf.count += 1;
        leaf.bbox.expand(&p);
        self.len += 1;
        self.data_space.expand(&p);

        if self
            .store
            .is_overflowing(self.leaves[leaf_index as usize].page)
        {
            let parent = path.last().copied();
            self.split_leaf(leaf_index, parent);
        }
        Ok(())
    }

    /// Deletes the first indexed point equal to `p`, returning whether a
    /// point was removed.
    pub(crate) fn delete_point(&mut self, p: &Point) -> Result<bool, IndexError> {
        if self.leaves.is_empty() {
            return Ok(false);
        }
        let (leaf_index, path) = self.locate_leaf_with_path(p);
        let page_id = self.leaves[leaf_index as usize].page;
        let removed = self.store.page_mut(page_id).remove(p);
        if removed {
            let bbox = self.store.page(page_id).bbox();
            let leaf = &mut self.leaves[leaf_index as usize];
            leaf.count -= 1;
            leaf.bbox = bbox;
            for (node, _) in &path {
                self.nodes[*node as usize].count -= 1;
            }
            self.len -= 1;
        }
        Ok(removed)
    }

    /// Splits an overflowing leaf along its data medians into four children
    /// ("We split any overflowing pages of WaZI along the data medians"),
    /// replacing the leaf with a new internal node.
    ///
    /// New leaves inherit conservative look-ahead pointers (pointing to their
    /// successor), which preserves the skipping safety invariant; call
    /// [`ZIndex::rebuild_lookahead`] to restore maximally skipping pointers
    /// after a batch of inserts.
    fn split_leaf(&mut self, leaf_index: u32, parent: Option<(u32, usize)>) {
        let leaf_pos = leaf_index as usize;
        let region = self.leaves[leaf_pos].region;
        let page_id = self.leaves[leaf_pos].page;
        let points = self.store.page(page_id).points().to_vec();
        let split = crate::build::median_split(&points);
        let ordering = CellOrdering::Abcd;

        // A split that cannot separate the points (all duplicates) is skipped:
        // the leaf simply stays oversized.
        let first_quadrant = Quadrant::of(&points[0], &split);
        if points
            .iter()
            .all(|p| Quadrant::of(p, &split) == first_quadrant)
        {
            return;
        }

        let page_ids = self
            .store
            .split_page(page_id, 4, |p| ordering.child_of(p, &split));

        // Build the four replacement leaves in curve order.
        let mut new_leaves = Vec::with_capacity(4);
        for (position, quadrant) in ordering.curve().into_iter().enumerate() {
            let child_region = quadrant.region(&region, &split);
            let page = page_ids[position];
            let stored = self.store.page(page);
            let bbox = Rect::bounding(stored.points());
            new_leaves.push(Leaf::new(child_region, bbox, page, stored.len()));
        }

        // Splice the new leaves into the leaf list: the first replaces the
        // original position, the other three follow it.
        let total_count: usize = new_leaves.iter().map(|l| l.count).sum();
        self.leaves[leaf_pos] = new_leaves[0].clone();
        self.leaves
            .splice(leaf_pos + 1..leaf_pos + 1, new_leaves[1..].iter().cloned());

        // Leaf indices after the split position shifted by three: fix child
        // references of internal nodes and existing look-ahead pointers.
        for node in &mut self.nodes {
            for child in &mut node.children {
                if let NodeRef::Leaf(i) = child {
                    if *i > leaf_index {
                        *i += 3;
                    }
                }
            }
        }
        for leaf in &mut self.leaves {
            if let Some(lookahead) = &mut leaf.lookahead {
                for criterion in crate::node::SkipCriterion::ALL {
                    let target = lookahead.get(criterion);
                    if target != LOOKAHEAD_END && target > leaf_index {
                        lookahead.set(criterion, target + 3);
                    }
                }
            }
        }
        // Conservative pointers for the four new leaves: their plain
        // successor (always safe).
        if self.config.skipping {
            for offset in 0..4u32 {
                let idx = leaf_index + offset;
                let next = idx + 1;
                let next = if (next as usize) < self.leaves.len() {
                    next
                } else {
                    LOOKAHEAD_END
                };
                let mut lookahead = Lookahead::default();
                for criterion in crate::node::SkipCriterion::ALL {
                    lookahead.set(criterion, next);
                }
                self.leaves[idx as usize].lookahead = Some(lookahead);
            }
        }

        // Replace the leaf with a new internal node in the tree.
        let node_index = self.nodes.len() as u32;
        self.nodes.push(InternalNode {
            region,
            split,
            ordering,
            children: [
                NodeRef::Leaf(leaf_index),
                NodeRef::Leaf(leaf_index + 1),
                NodeRef::Leaf(leaf_index + 2),
                NodeRef::Leaf(leaf_index + 3),
            ],
            count: total_count,
        });
        match parent {
            Some((parent_index, slot)) => {
                self.nodes[parent_index as usize].children[slot] = NodeRef::Internal(node_index);
            }
            None => {
                self.root = NodeRef::Internal(node_index);
            }
        }
    }

    /// Rebuilds the look-ahead pointers from scratch (Algorithm 4), restoring
    /// maximal skipping after updates degraded the pointers of split leaves.
    pub fn rebuild_lookahead(&mut self) {
        if self.config.skipping {
            build_lookahead(&mut self.leaves);
            self.lookahead_stale = false;
        }
    }
}
