//! Query execution: the shared leaf-interval scan kernel.
//!
//! Every read path of the Z-index — materializing range queries, counting,
//! streaming, and the candidate collection behind kNN — funnels through one
//! kernel, [`ZIndex::scan_range`]. The kernel walks the leaf interval
//! `[leaf(BL(q)) : leaf(TR(q))]` of Algorithm 2, applies the look-ahead
//! skipping of Section 5 exactly once (no per-query-type duplication), and
//! hands each relevant page to a [`RangeVisitor`]. Visitors decide what
//! happens to matching points: collect them, count them, or stream them to a
//! caller-supplied closure. Filtering happens in place via the storage
//! layer's visitor primitives, so non-materializing paths allocate nothing.
//!
//! The paper's cost model (Eq. 5) charges queries by bounding boxes checked
//! and points compared; because all paths share this kernel, those counters
//! are identical whichever execution mode the caller picks — only the
//! per-match work differs.

use super::ZIndex;
use crate::engine::{RangeBatchKernel, RangeBatchOutput, RangeBatchRequest, RangeBatchResponse};
use crate::node::{NodeRef, LOOKAHEAD_END};
use std::time::Instant;
use wazi_geom::{Point, Rect};
use wazi_storage::{ExecStats, Page};

impl RangeBatchKernel for ZIndex {
    fn run_range_batch(&self, requests: &[RangeBatchRequest]) -> RangeBatchResponse {
        self.execute_range_batch(requests)
    }
}

/// A consumer of the scan kernel: receives every page whose leaf bounding
/// box overlaps the query, in leaf order.
pub(crate) trait RangeVisitor {
    /// Processes one relevant page. Implementations are expected to charge
    /// `stats` through the storage layer's scan primitives.
    fn visit_page(&mut self, page: &Page, query: &Rect, stats: &mut ExecStats);
}

/// Collects matching points into a result vector (the classic range query).
struct CollectVisitor {
    out: Vec<Point>,
}

impl RangeVisitor for CollectVisitor {
    fn visit_page(&mut self, page: &Page, query: &Rect, stats: &mut ExecStats) {
        page.filter_into(query, &mut self.out, stats);
    }
}

/// Counts matching points without materializing them.
struct CountVisitor {
    count: u64,
}

impl RangeVisitor for CountVisitor {
    fn visit_page(&mut self, page: &Page, query: &Rect, stats: &mut ExecStats) {
        self.count += page.count_in(query, stats);
    }
}

/// Streams matching points to a caller-supplied closure.
struct StreamVisitor<'a> {
    visit: &'a mut dyn FnMut(&Point),
    matched: u64,
}

impl RangeVisitor for StreamVisitor<'_> {
    fn visit_page(&mut self, page: &Page, query: &Rect, stats: &mut ExecStats) {
        let visit = &mut *self.visit;
        let matched = &mut self.matched;
        page.for_each_in(query, stats, |p| {
            *matched += 1;
            visit(p);
        });
    }
}

impl ZIndex {
    /// Algorithm 1: descends from the root to the leaf whose cell contains
    /// `p`, returning its index in the leaf list.
    pub(crate) fn locate_leaf(&self, p: &Point, stats: &mut ExecStats) -> u32 {
        let mut node = self.root;
        loop {
            match node {
                NodeRef::Leaf(i) => return i,
                NodeRef::Internal(i) => {
                    stats.nodes_visited += 1;
                    node = self.nodes[i as usize].child_for(p);
                }
            }
        }
    }

    /// The scan kernel (Algorithm 2 + Section 5 skipping): walks the leaf
    /// interval spanned by the query corners, follows look-ahead pointers
    /// over irrelevant runs when skipping is enabled, and hands every
    /// overlapping leaf's page to `visitor` — no intermediate list of
    /// relevant leaves is materialized.
    ///
    /// Timing: page visits are accumulated as scan-phase time, everything
    /// else (corner location, bounding-box checks, pointer hops) as
    /// projection-phase time, matching the split of Figure 9.
    fn scan_range<V: RangeVisitor>(&self, query: &Rect, stats: &mut ExecStats, visitor: &mut V) {
        let kernel_start = Instant::now();
        let mut scan_ns = 0u64;
        if !self.leaves.is_empty() {
            let low = self.locate_leaf(&query.bl(), stats);
            let high = self.locate_leaf(&query.tr(), stats);
            debug_assert!(low <= high, "monotone orderings visit BL before TR");
            let skipping = self.skipping_enabled();
            let mut i = low;
            while i <= high {
                let leaf = &self.leaves[i as usize];
                stats.bbs_checked += 1;
                if !leaf.bbox.is_empty() && leaf.bbox.overlaps(query) {
                    let scan_start = Instant::now();
                    visitor.visit_page(self.store.page(leaf.page), query, stats);
                    scan_ns += scan_start.elapsed().as_nanos() as u64;
                    i += 1;
                    continue;
                }
                let mut next = i + 1;
                if skipping {
                    if let Some(lookahead) = leaf.lookahead {
                        for criterion in leaf.irrelevancy_criteria(query) {
                            let target = lookahead.get(criterion);
                            let target = if target == LOOKAHEAD_END {
                                high + 1
                            } else {
                                target
                            };
                            next = next.max(target);
                        }
                    }
                }
                stats.leaves_skipped += u64::from(next - (i + 1));
                i = next;
            }
        }
        stats.charge_kernel(kernel_start.elapsed().as_nanos() as u64, scan_ns);
    }

    /// Materializing range query: returns every indexed point inside
    /// `query`.
    pub(crate) fn execute_range_query(&self, query: &Rect, stats: &mut ExecStats) -> Vec<Point> {
        let mut visitor = CollectVisitor { out: Vec::new() };
        self.scan_range(query, stats, &mut visitor);
        stats.results += visitor.out.len() as u64;
        visitor.out
    }

    /// Counting range query: the size of the result set, computed without
    /// materializing it.
    pub(crate) fn execute_range_count(&self, query: &Rect, stats: &mut ExecStats) -> u64 {
        let mut visitor = CountVisitor { count: 0 };
        self.scan_range(query, stats, &mut visitor);
        stats.results += visitor.count;
        visitor.count
    }

    /// Streaming range query: invokes `visit` for every indexed point inside
    /// `query` without building an intermediate vector.
    pub(crate) fn execute_range_for_each(
        &self,
        query: &Rect,
        stats: &mut ExecStats,
        visit: &mut dyn FnMut(&Point),
    ) {
        let mut visitor = StreamVisitor { visit, matched: 0 };
        self.scan_range(query, stats, &mut visitor);
        stats.results += visitor.matched;
    }

    /// The fused batch kernel: executes every range request of a batch in
    /// one pass over the leaf interval their Z-address intervals span.
    ///
    /// Algorithm: project every request's corners once (Algorithm 1 per
    /// request, charged to its own stats), sort the resulting leaf
    /// intervals by start address, then sweep the leaf list once with an
    /// active set. At each leaf every active request pays its own
    /// bounding-box check; when at least one request overlaps the leaf, the
    /// page is scanned **once** and each stored point is compared against
    /// every overlapping request — so a page relevant to `m` overlapping
    /// queries is visited once instead of `m` times. When no active request
    /// overlaps, the sweep follows the look-ahead pointers (Section 5) as
    /// far as *all* active requests allow: the jump target is the minimum
    /// of the per-request skip targets, clamped to the next interval start.
    ///
    /// Work accounting: corner projections, bounding-box checks, point
    /// comparisons and results are charged per request (their totals match
    /// the sequential path's totals for comparisons and results); shared
    /// page visits, batch-level skips and the kernel's phase timings are
    /// charged to the response's `shared` stats, since they are not
    /// attributable to any single request.
    pub(crate) fn execute_range_batch(&self, requests: &[RangeBatchRequest]) -> RangeBatchResponse {
        let mut outputs: Vec<RangeBatchOutput> = requests
            .iter()
            .map(|r| {
                if r.collect {
                    RangeBatchOutput::Points(Vec::new())
                } else {
                    RangeBatchOutput::Count(0)
                }
            })
            .collect();
        let mut per_query = vec![ExecStats::default(); requests.len()];
        let mut shared = ExecStats::default();
        if requests.is_empty() || self.leaves.is_empty() {
            return RangeBatchResponse {
                outputs,
                per_query,
                shared,
            };
        }
        let kernel_start = Instant::now();
        let mut scan_ns = 0u64;

        // Project every request's corners once (charged per request, exactly
        // as the sequential kernel would), then sort the Z-address intervals.
        let mut intervals: Vec<(u32, u32, usize)> = Vec::with_capacity(requests.len());
        for (qi, request) in requests.iter().enumerate() {
            let low = self.locate_leaf(&request.rect.bl(), &mut per_query[qi]);
            let high = self.locate_leaf(&request.rect.tr(), &mut per_query[qi]);
            debug_assert!(low <= high, "monotone orderings visit BL before TR");
            intervals.push((low, high, qi));
        }
        intervals.sort_unstable_by_key(|&(low, high, _)| (low, high));

        let skipping = self.skipping_enabled();
        let leaf_end = self.leaves.len() as u32;
        // Active set of (interval end, request index); small batches keep it
        // tiny, so linear scans beat any priority structure.
        let mut active: Vec<(u32, usize)> = Vec::new();
        let mut needing: Vec<usize> = Vec::new();
        let mut next_interval = 0usize;
        let mut i = intervals[0].0;
        loop {
            while next_interval < intervals.len() && intervals[next_interval].0 <= i {
                let (_, high, qi) = intervals[next_interval];
                active.push((high, qi));
                next_interval += 1;
            }
            active.retain(|&(high, _)| high >= i);
            if active.is_empty() {
                match intervals.get(next_interval) {
                    Some(&(low, _, _)) => {
                        i = low;
                        continue;
                    }
                    None => break,
                }
            }
            let leaf = &self.leaves[i as usize];
            needing.clear();
            for &(_, qi) in &active {
                per_query[qi].bbs_checked += 1;
                if !leaf.bbox.is_empty() && leaf.bbox.overlaps(&requests[qi].rect) {
                    needing.push(qi);
                }
            }
            if needing.is_empty() {
                // Irrelevant to every active request: jump as far as they
                // all allow, but never past the next interval's start.
                let mut jump = u32::MAX;
                for &(_, qi) in &active {
                    let mut target = i + 1;
                    if skipping {
                        if let Some(lookahead) = leaf.lookahead {
                            for criterion in leaf.irrelevancy_criteria(&requests[qi].rect) {
                                let t = lookahead.get(criterion);
                                let t = if t == LOOKAHEAD_END { leaf_end } else { t };
                                target = target.max(t);
                            }
                        }
                    }
                    jump = jump.min(target);
                }
                if let Some(&(low, _, _)) = intervals.get(next_interval) {
                    jump = jump.min(low);
                }
                shared.leaves_skipped += u64::from(jump - (i + 1));
                i = jump;
                continue;
            }
            // One pass over the page on behalf of every overlapping request.
            let scan_start = Instant::now();
            shared.pages_scanned += 1;
            let page = self.store.page(leaf.page);
            for p in page.points() {
                for &qi in &needing {
                    per_query[qi].points_scanned += 1;
                    if requests[qi].rect.contains(p) {
                        per_query[qi].results += 1;
                        match &mut outputs[qi] {
                            RangeBatchOutput::Points(out) => out.push(*p),
                            RangeBatchOutput::Count(n) => *n += 1,
                        }
                    }
                }
            }
            scan_ns += scan_start.elapsed().as_nanos() as u64;
            i += 1;
        }
        shared.charge_kernel(kernel_start.elapsed().as_nanos() as u64, scan_ns);
        RangeBatchResponse {
            outputs,
            per_query,
            shared,
        }
    }

    /// Point query: locate the owning leaf (Algorithm 1), then probe its
    /// page.
    pub(crate) fn execute_point_query(&self, p: &Point, stats: &mut ExecStats) -> bool {
        if self.leaves.is_empty() {
            return false;
        }
        let projection_start = Instant::now();
        let leaf = self.locate_leaf(p, stats);
        stats.add_projection(projection_start.elapsed());

        let scan_start = Instant::now();
        let leaf = &self.leaves[leaf as usize];
        let found = if leaf.count == 0 || !leaf.bbox.contains(p) {
            false
        } else {
            self.store.probe_page(leaf.page, p, stats)
        };
        stats.add_scan(scan_start.elapsed());
        if found {
            stats.results += 1;
        }
        found
    }
}
